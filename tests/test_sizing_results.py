"""Tests for the size accounting (§6.3) and result value objects."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.results import (
    BaseStats,
    Match,
    SeasonalGroup,
    SeasonalResult,
    ThresholdRecommendation,
)
from repro.core.sizing import SizeBreakdown, measure_rspace
from repro.data.timeseries import SubsequenceId


class TestSizeBreakdown:
    def test_totals_add_up(self):
        breakdown = SizeBreakdown(
            gti_group_ids=10,
            gti_dc_matrix=20,
            gti_sums=30,
            gti_thresholds=40,
            lsi_member_rows=50,
            lsi_representatives=60,
            lsi_envelopes=70,
            store_columns=90,
        )
        assert breakdown.gti_bytes == 100
        assert breakdown.lsi_bytes == 180
        assert breakdown.store_bytes == 90
        assert breakdown.total_bytes == 370
        assert breakdown.total_mb == pytest.approx(370 / 1024 / 1024)

    def test_measure_matches_formula(self, small_index):
        breakdown = measure_rspace(small_index.rspace)
        expected_group_ids = sum(b.n_groups * 4 for b in small_index.rspace)
        expected_dc = sum(b.n_groups**2 * 8 for b in small_index.rspace)
        assert breakdown.gti_group_ids == expected_group_ids
        assert breakdown.gti_dc_matrix == expected_dc
        # Store-backed layout: one 4-byte row index + one 8-byte ED per
        # member (no materialized (series, start) pairs per group).
        expected_rows = sum(
            g.count * (4 + 8) for b in small_index.rspace for g in b.groups
        )
        assert breakdown.lsi_member_rows == expected_rows
        expected_reps = sum(
            g.length * 8 for b in small_index.rspace for g in b.groups
        )
        assert breakdown.lsi_representatives == expected_reps
        assert breakdown.lsi_envelopes == 2 * expected_reps
        # The store's id columns are counted once per length, not per
        # group: series + start (2 ints) per enumerated row.
        expected_store = sum(
            b.store_view.n_rows * 2 * 4 for b in small_index.rspace
        )
        assert breakdown.store_columns == expected_store

    def test_thresholds_counted_per_length(self, small_index):
        breakdown = measure_rspace(small_index.rspace)
        assert breakdown.gti_thresholds == 2 * 8 * len(small_index.rspace)

    def test_pinned_breakdown_on_fixture(self):
        """Pin the §6.3 byte accounting on a deterministic tiny base.

        3 series x 10 points, lengths [4, 6], start_step 2. Enumerated
        rows: length 4 -> 4 starts/series = 12 rows; length 6 -> 3
        starts/series = 9 rows. A huge ST gives exactly one group per
        length, so every component is hand-computable.
        """
        from repro.core.onex import OnexIndex
        from repro.data.dataset import Dataset

        rng = np.random.default_rng(0)
        dataset = Dataset([rng.normal(size=10) for _ in range(3)], name="pin")
        index = OnexIndex.build(
            dataset, st=100.0, lengths=[4, 6], start_step=2, seed=0
        )
        assert [b.n_groups for b in index.rspace] == [1, 1]
        breakdown = measure_rspace(index.rspace)
        assert breakdown.gti_group_ids == 2 * 1 * 4
        assert breakdown.gti_dc_matrix == 2 * 1 * 1 * 8
        assert breakdown.gti_sums == 2 * 1 * (4 + 8)
        assert breakdown.gti_thresholds == 2 * 2 * 8
        assert breakdown.lsi_member_rows == (12 + 9) * (4 + 8)
        assert breakdown.lsi_representatives == (4 + 6) * 8
        assert breakdown.lsi_envelopes == 2 * (4 + 6) * 8
        assert breakdown.store_columns == (12 + 9) * 2 * 4
        assert breakdown.total_bytes == (
            breakdown.gti_bytes + breakdown.lsi_bytes + breakdown.store_bytes
        )


class TestMatch:
    def _match(self, norm):
        return Match(
            ssid=SubsequenceId(0, 0, 4),
            values=np.zeros(4),
            dtw=norm * 8,
            dtw_normalized=norm,
            group=(4, 0),
        )

    def test_ordering_by_normalized_dtw(self):
        assert self._match(0.1) < self._match(0.2)
        assert sorted([self._match(0.3), self._match(0.1)])[0].dtw_normalized == 0.1


class TestSeasonal:
    def test_group_len(self):
        group = SeasonalGroup(
            length=4,
            group_index=0,
            members=(SubsequenceId(0, 0, 4), SubsequenceId(0, 2, 4)),
        )
        assert len(group) == 2

    def test_result_aggregation(self):
        groups = (
            SeasonalGroup(4, 0, (SubsequenceId(0, 0, 4), SubsequenceId(0, 1, 4))),
            SeasonalGroup(4, 1, (SubsequenceId(1, 0, 4),) * 3),
        )
        result = SeasonalResult(length=4, series=None, groups=groups)
        assert len(result) == 2
        assert result.n_subsequences == 5
        assert list(result) == list(groups)


class TestThresholdRecommendation:
    def test_contains_half_open(self):
        rec = ThresholdRecommendation(degree="S", low=0.0, high=0.5)
        assert rec.contains(0.0)
        assert rec.contains(0.49)
        assert not rec.contains(0.5)

    def test_contains_unbounded(self):
        rec = ThresholdRecommendation(degree="L", low=0.5, high=math.inf)
        assert rec.contains(0.5)
        assert rec.contains(100.0)
        assert not rec.contains(0.4)


class TestBaseStats:
    def test_as_row_rounds_size(self):
        stats = BaseStats(
            dataset="D",
            st=0.2,
            n_series=5,
            n_lengths=3,
            n_groups=10,
            n_representatives=10,
            n_subsequences=100,
            size_mb=1.23456,
            gti_mb=0.5,
            lsi_mb=0.73456,
        )
        assert stats.as_row() == ("D", 10, 100, 1.23)
