"""Import-graph smoke test: every module under ``src/repro`` imports.

A module that raises at import time (missing optional dep handled
wrong, circular import, syntax error on a rarely-exercised path) should
fail loudly here rather than the first time a user touches it. The
``__main__`` entry points are skipped — importing them would execute
their CLIs.
"""

from __future__ import annotations

from importlib import import_module
from pathlib import Path

import pytest

import repro

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def _module_names() -> list[str]:
    names = []
    for path in sorted(PACKAGE_DIR.rglob("*.py")):
        if path.name == "__main__.py":
            continue
        rel = path.relative_to(PACKAGE_DIR.parent).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        names.append(".".join(parts))
    return names


@pytest.mark.parametrize("name", _module_names())
def test_module_imports(name):
    import_module(name)


def test_every_source_file_is_covered():
    # Guard the parametrization itself: if the rglob breaks, the suite
    # would silently pass with zero modules.
    assert len(_module_names()) > 60
