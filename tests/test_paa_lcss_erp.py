"""Tests for PAA/PDTW, LCSS and ERP distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances.dtw import dtw
from repro.distances.erp import erp
from repro.distances.euclidean import euclidean
from repro.distances.lcss import lcss, lcss_distance
from repro.distances.paa import paa_distance, paa_transform, pdtw
from repro.exceptions import DistanceError

vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=4, max_size=24
)


class TestPAATransform:
    def test_means_per_segment(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        assert paa_transform(x, 2).tolist() == [2.0, 6.0]

    def test_full_resolution_is_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        assert paa_transform(x, 3).tolist() == [1.0, 2.0, 3.0]

    def test_non_divisible_lengths(self):
        x = np.arange(7.0)
        reduced = paa_transform(x, 3)
        assert reduced.shape == (3,)
        # segment boundaries 0..2, 2..4, 4..7
        assert reduced.tolist() == [0.5, 2.5, 5.0]

    def test_single_segment_is_mean(self):
        x = np.array([2.0, 4.0, 9.0])
        assert paa_transform(x, 1).tolist() == [5.0]

    @pytest.mark.parametrize("bad", [0, 5])
    def test_bad_segment_count(self, bad):
        with pytest.raises(DistanceError):
            paa_transform(np.arange(4.0), bad)

    @given(vectors, st.integers(1, 8))
    def test_property_mean_preserved(self, values, n_segments):
        x = np.asarray(values)
        n_segments = min(n_segments, len(x))
        reduced = paa_transform(x, n_segments)
        # Equal segment sizes only when divisible; weight accordingly.
        boundaries = (np.arange(n_segments + 1) * len(x)) // n_segments
        weights = np.diff(boundaries)
        assert float(np.dot(reduced, weights) / len(x)) == pytest.approx(
            float(x.mean()), abs=1e-9
        )


class TestPAADistance:
    @given(vectors)
    @settings(max_examples=80, deadline=None)
    def test_property_lower_bounds_euclidean(self, values):
        x = np.asarray(values)
        rng = np.random.default_rng(len(values))
        y = rng.normal(size=len(x))
        for n_segments in (1, 2, max(1, len(x) // 2)):
            assert paa_distance(x, y, n_segments) <= euclidean(x, y) + 1e-7

    def test_requires_equal_lengths(self):
        with pytest.raises(DistanceError):
            paa_distance(np.arange(4.0), np.arange(6.0), 2)


class TestPDTW:
    def test_reduces_to_dtw_for_segment_one(self, rng):
        x = rng.normal(size=12)
        y = rng.normal(size=10)
        assert pdtw(x, y, segment_size=1) == pytest.approx(dtw(x, y))

    def test_approximation_tracks_dtw_ordering(self, rng):
        """PDTW is coarse in absolute value but must preserve the gross
        ordering: a near match scores far below a structural mismatch."""
        t = np.linspace(0, 6.28, 64)
        x = np.sin(t)
        near = np.sin(t + 0.2)
        far = np.cos(3 * t) + 1.5
        assert pdtw(x, near, segment_size=4) < pdtw(x, far, segment_size=4)
        assert pdtw(x, near, segment_size=4) < dtw(x, far)

    def test_short_sequence_keeps_one_segment(self):
        x = np.array([1.0, 2.0])
        y = np.array([1.5, 2.5])
        assert np.isfinite(pdtw(x, y, segment_size=8))

    def test_bad_segment_size(self):
        with pytest.raises(DistanceError):
            pdtw(np.arange(4.0), np.arange(4.0), segment_size=0)


class TestLCSS:
    def test_identical_sequences_full_match(self):
        x = np.arange(5.0)
        assert lcss(x, x, epsilon=0.0) == 5
        assert lcss_distance(x, x) == 0.0

    def test_disjoint_sequences_no_match(self):
        x = np.zeros(4)
        y = np.ones(4) * 100
        assert lcss(x, y, epsilon=0.5) == 0
        assert lcss_distance(x, y, epsilon=0.5) == 1.0

    def test_partial_match(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 9.0, 9.0])
        assert lcss(x, y, epsilon=0.01) == 2

    def test_delta_window_restricts_matches(self):
        x = np.array([1.0, 0.0, 0.0, 0.0])
        y = np.array([0.0, 0.0, 0.0, 1.0])
        assert lcss(x, y, epsilon=0.01, delta=None) >= 3
        assert lcss(x, y, epsilon=0.01, delta=1) <= 3

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_distance_in_unit_interval(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert 0.0 <= lcss_distance(x, y, epsilon=0.5) <= 1.0

    def test_bad_epsilon(self):
        with pytest.raises(DistanceError):
            lcss(np.arange(3.0), np.arange(3.0), epsilon=-1)

    def test_bad_delta(self):
        with pytest.raises(DistanceError):
            lcss(np.arange(3.0), np.arange(3.0), delta=-1)


class TestERP:
    def test_identical_sequences(self):
        x = np.arange(5.0)
        assert erp(x, x) == pytest.approx(0.0)

    def test_known_gap_cost(self):
        x = np.array([1.0, 2.0])
        y = np.array([1.0])
        # Best alignment: match 1-1, delete 2 against g=0 -> cost 2.
        assert erp(x, y, g=0.0) == pytest.approx(2.0)

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert erp(x, y) == pytest.approx(erp(y, x), abs=1e-9)

    @given(vectors, vectors, vectors)
    @settings(max_examples=40, deadline=None)
    def test_property_triangle_inequality(self, a, b, c):
        """ERP is a metric [6] - the property DTW lacks."""
        x, y, z = np.asarray(a), np.asarray(b), np.asarray(c)
        assert erp(x, z) <= erp(x, y) + erp(y, z) + 1e-7

    def test_empty_rejected(self):
        with pytest.raises(DistanceError):
            erp(np.array([]), np.array([1.0]))
