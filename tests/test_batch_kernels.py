"""Batch kernels vs scalar kernels: agreement to fp tolerance.

The contract of :mod:`repro.distances.batch` is exactness — every
vectorized kernel must agree with its scalar counterpart, and the batch
query path must return the same matches as the scalar one. These are
the property tests the ISSUE's cascade refactor leans on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.brute_force import StandardDTW
from repro.baselines.trillion import Trillion
from repro.core.query_processor import QueryProcessor
from repro.distances.batch import (
    EnvelopeStack,
    dtw_batch,
    dtw_pairs,
    envelope_matrix,
    lb_keogh_batch,
    lb_keogh_reverse_batch,
    lb_keogh_reverse_stacked,
    lb_kim_batch,
    lb_kim_stacked,
    sliding_minmax,
)
from repro.distances.dtw import dtw, resolve_window
from repro.distances.lower_bounds import CascadePruner, envelope, lb_keogh, lb_kim
from repro.exceptions import DistanceError

values_strategy = st.floats(min_value=-10, max_value=10, allow_nan=False)


def stacks(min_length=1, max_length=12, max_rows=6):
    """Strategy: a (k, n) candidate stack as a list of equal-length lists."""
    return st.integers(min_length, max_length).flatmap(
        lambda n: st.lists(
            st.lists(values_strategy, min_size=n, max_size=n),
            min_size=1,
            max_size=max_rows,
        )
    )


class TestEnvelopeKernels:
    @given(
        st.lists(values_strategy, min_size=1, max_size=20), st.integers(0, 6)
    )
    @settings(max_examples=100, deadline=None)
    def test_property_sliding_minmax_matches_scalar_envelope(self, values, radius):
        y = np.asarray(values)
        lower, upper = sliding_minmax(y, radius)
        reference = envelope(y, radius)
        np.testing.assert_allclose(lower, reference.lower)
        np.testing.assert_allclose(upper, reference.upper)

    @given(stacks(), st.integers(0, 5))
    @settings(max_examples=80, deadline=None)
    def test_property_envelope_matrix_matches_per_row(self, rows, radius):
        stack = np.asarray(rows)
        batched = envelope_matrix(stack, radius)
        assert batched.radius == radius
        for row in range(stack.shape[0]):
            reference = envelope(stack[row], radius)
            np.testing.assert_allclose(batched.lower[row], reference.lower)
            np.testing.assert_allclose(batched.upper[row], reference.upper)

    def test_rejects_bad_inputs(self):
        with pytest.raises(DistanceError):
            sliding_minmax(np.array([]), 1)
        with pytest.raises(DistanceError):
            sliding_minmax(np.arange(4.0), -1)
        with pytest.raises(DistanceError):
            envelope_matrix(np.arange(4.0), 1)  # 1-D, not a stack


class TestLowerBoundKernels:
    @given(st.lists(values_strategy, min_size=1, max_size=12), stacks())
    @settings(max_examples=100, deadline=None)
    def test_property_lb_kim_batch_matches_scalar(self, query, rows):
        q = np.asarray(query)
        stack = np.asarray(rows)
        batched = lb_kim_batch(q, stack)
        expected = [lb_kim(q, stack[i]) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, atol=1e-12)

    @given(stacks(min_length=2), st.integers(0, 4), st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_lb_keogh_batch_matches_scalar(self, rows, radius, data):
        stack = np.asarray(rows)
        n = stack.shape[1]
        query = np.asarray(
            data.draw(st.lists(values_strategy, min_size=n, max_size=n))
        )
        query_env = envelope(query, radius)
        batched = lb_keogh_batch(stack, query_env.lower, query_env.upper)
        expected = [lb_keogh(stack[i], query_env) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, atol=1e-9)

        reversed_batch = lb_keogh_reverse_batch(query, envelope_matrix(stack, radius))
        reversed_expected = [
            lb_keogh(query, envelope(stack[i], radius))
            for i in range(stack.shape[0])
        ]
        np.testing.assert_allclose(reversed_batch, reversed_expected, atol=1e-9)


class TestDtwBatch:
    @given(
        st.lists(values_strategy, min_size=1, max_size=12),
        stacks(),
        st.integers(0, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_matches_scalar_dtw(self, query, rows, window):
        q = np.asarray(query)
        stack = np.asarray(rows)
        radius = resolve_window(q.shape[0], stack.shape[1], window)
        batched = dtw_batch(q, stack, radius)
        expected = [dtw(q, stack[i], window=window) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, atol=1e-9)

    @given(
        st.lists(values_strategy, min_size=2, max_size=12),
        stacks(min_length=2),
        st.integers(1, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_shared_abandon_is_consistent(self, query, rows, window):
        """With a shared bound, surviving distances are exact and every
        abandoned candidate is provably above the bound."""
        q = np.asarray(query)
        stack = np.asarray(rows)
        radius = resolve_window(q.shape[0], stack.shape[1], window)
        exact = np.asarray(
            [dtw(q, stack[i], window=window) for i in range(stack.shape[0])]
        )
        finite = exact[np.isfinite(exact)]
        bound = float(np.median(finite)) if finite.size else 1.0
        bounded = dtw_batch(q, stack, radius, abandon_above=bound)
        for got, reference in zip(bounded, exact, strict=True):
            if math.isfinite(got):
                assert got == pytest.approx(reference, abs=1e-9)
            else:
                assert reference >= bound - 1e-9

    def test_empty_stack_rejected(self):
        with pytest.raises(DistanceError):
            dtw_batch(np.arange(3.0), np.empty((2, 0)), 1)


class TestCascadePrunerBatch:
    @given(stacks(min_length=2, max_length=10, max_rows=8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_batch_cascade_exact_under_bound(self, rows, data):
        stack = np.asarray(rows)
        n = stack.shape[1]
        query = np.asarray(
            data.draw(st.lists(values_strategy, min_size=n, max_size=n))
        )
        exact = np.asarray([dtw(query, stack[i], window=1) for i in range(len(stack))])
        bound = float(np.max(exact[np.isfinite(exact)], initial=1.0)) + 0.5
        pruner = CascadePruner(query, window=1)
        batched = pruner.distance_batch(
            stack, bound, candidate_envelopes=envelope_matrix(stack, pruner._radius)
        )
        np.testing.assert_allclose(batched, exact, atol=1e-9)
        assert pruner.stats.examined == len(stack)


class TestQueryPathParity:
    def _processors(self, small_index, **kwargs):
        shared = dict(st=small_index.st, window=small_index.window, **kwargs)
        scalar = QueryProcessor(
            small_index.rspace, small_index.dataset, use_batch_kernels=False, **shared
        )
        batch = QueryProcessor(
            small_index.rspace, small_index.dataset, use_batch_kernels=True, **shared
        )
        return scalar, batch

    def test_best_match_parity_exact_length(self, small_index):
        scalar, batch = self._processors(small_index)
        for series in range(6):
            query = small_index.dataset[series].values[2:14]
            a = scalar.best_match(query, length=12, k=3)
            b = batch.best_match(query, length=12, k=3)
            assert [m.ssid for m in a] == [m.ssid for m in b]
            for am, bm in zip(a, b, strict=True):
                assert am.dtw == pytest.approx(bm.dtw, abs=1e-9)

    def test_best_match_parity_any_length(self, small_index):
        scalar, batch = self._processors(small_index)
        for series in range(4):
            query = small_index.dataset[series].values[1:13]
            a = scalar.best_match(query, stop_at_half_st=False)
            b = batch.best_match(query, stop_at_half_st=False)
            assert [m.ssid for m in a] == [m.ssid for m in b]
            assert a[0].dtw_normalized == pytest.approx(
                b[0].dtw_normalized, abs=1e-9
            )

    def test_best_match_parity_n_probe(self, small_index):
        scalar, batch = self._processors(small_index, n_probe=3)
        query = small_index.dataset[7].values[4:16]
        a = scalar.best_match(query, length=12, k=4)
        b = batch.best_match(query, length=12, k=4)
        assert [m.ssid for m in a] == [m.ssid for m in b]

    def test_query_batch_matches_per_query(self, small_index):
        queries = [
            small_index.dataset[series].values[0:12] for series in range(5)
        ]
        batched = small_index.query_batch(queries, length=12, k=2)
        assert len(batched) == len(queries)
        for query, matches in zip(queries, batched, strict=True):
            singles = small_index.query(query, length=12, k=2)
            assert [m.ssid for m in matches] == [m.ssid for m in singles]
            for bm, sm in zip(matches, singles, strict=True):
                assert bm.dtw == pytest.approx(sm.dtw, abs=1e-9)

    def test_search_group_uses_scan_distance(self, small_index, monkeypatch):
        """Bugfix regression: the in-group search must not recompute the
        query→representative DTW the scan already produced."""
        processor = QueryProcessor(
            small_index.rspace,
            small_index.dataset,
            st=small_index.st,
            window=small_index.window,
            use_batch_kernels=False,
        )
        query = small_index.dataset[2].values[3:15]
        bucket = small_index.rspace.bucket(12)
        representatives = [
            group.representative.tobytes() for group in bucket.groups
        ]

        import repro.core.query_processor as qp

        rep_dtw_calls = 0
        original_dtw = qp.dtw

        def counting_dtw(x, y, *args, **kwargs):
            nonlocal rep_dtw_calls
            if np.asarray(y).tobytes() in representatives:
                rep_dtw_calls += 1
            return original_dtw(x, y, *args, **kwargs)

        monkeypatch.setattr(qp, "dtw", counting_dtw)
        processor.best_match(query, length=12)
        # The scan DTWs each (unpruned) representative at most once; the
        # group search must not add a second computation for the probed
        # group's representative.
        assert rep_dtw_calls <= len(bucket.groups)

    def test_baseline_parity(self, small_dataset):
        lengths = [12, 24]
        scalar_brute = StandardDTW(use_batch_kernels=False)
        batch_brute = StandardDTW(use_batch_kernels=True)
        scalar_trillion = Trillion(use_batch_kernels=False)
        batch_trillion = Trillion(use_batch_kernels=True)
        for method in (scalar_brute, batch_brute, scalar_trillion, batch_trillion):
            method.prepare(small_dataset, lengths)
        for series in range(4):
            query = small_dataset[series].values[6:18]
            a = scalar_brute.best_match(query, length=12)
            b = batch_brute.best_match(query, length=12)
            assert a.ssid == b.ssid
            assert a.dtw == pytest.approx(b.dtw, abs=1e-9)
            c = scalar_trillion.best_match(query, length=12)
            d = batch_trillion.best_match(query, length=12)
            assert c.ssid == d.ssid
            assert c.dtw == pytest.approx(d.dtw, abs=1e-9)


class TestStackedKernels:
    """The serving layer's multi-query kernels vs their per-query twins."""

    @given(stacks(min_length=2), stacks(min_length=2))
    @settings(max_examples=60, deadline=None)
    def test_property_lb_kim_stacked_rows_match_batch(self, queries, candidates):
        q_matrix = np.asarray(queries)
        matrix = np.asarray(candidates)
        stacked = lb_kim_stacked(q_matrix, matrix)
        assert stacked.shape == (q_matrix.shape[0], matrix.shape[0])
        for row, query in enumerate(q_matrix):
            np.testing.assert_array_equal(stacked[row], lb_kim_batch(query, matrix))

    @given(stacks(min_length=2, max_length=10), st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_property_lb_keogh_reverse_stacked_rows_match_batch(
        self, rows, radius
    ):
        matrix = np.asarray(rows)
        stack = envelope_matrix(matrix, radius)
        stacked = lb_keogh_reverse_stacked(matrix, stack)
        for row, query in enumerate(matrix):
            np.testing.assert_array_equal(
                stacked[row], lb_keogh_reverse_batch(query, stack)
            )

    @given(stacks(min_length=2, max_length=10), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_property_dtw_pairs_matches_scalar_dtw(self, rows, radius):
        matrix = np.asarray(rows)
        rng = np.random.default_rng(matrix.shape[0])
        candidates = rng.uniform(-10, 10, size=matrix.shape)
        distances = dtw_pairs(matrix, candidates, radius)
        for pair in range(matrix.shape[0]):
            expected = dtw(matrix[pair], candidates[pair], window=radius)
            if math.isinf(expected):
                assert math.isinf(distances[pair])
            else:
                assert distances[pair] == pytest.approx(expected, abs=1e-9)

    @given(stacks(min_length=2, max_length=10), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_property_dtw_pairs_per_lane_abandon_is_admissible(
        self, rows, radius
    ):
        matrix = np.asarray(rows)
        rng = np.random.default_rng(matrix.shape[0] + 1)
        candidates = rng.uniform(-10, 10, size=matrix.shape)
        exact = dtw_pairs(matrix, candidates, radius)
        bounds = rng.uniform(0.0, 15.0, size=matrix.shape[0])
        bounded = dtw_pairs(matrix, candidates, radius, abandon_above=bounds)
        for pair in range(matrix.shape[0]):
            if math.isinf(exact[pair]) or exact[pair] > bounds[pair]:
                # At or below the bound the lane must survive; above it
                # the lane may be abandoned (inf) but never misreported.
                assert math.isinf(bounded[pair]) or bounded[pair] == exact[pair]
            else:
                assert bounded[pair] == exact[pair]

    def test_dtw_pairs_scalar_bound_matches_dtw_batch(self):
        rng = np.random.default_rng(5)
        query = rng.uniform(-1, 1, size=16)
        candidates = rng.uniform(-1, 1, size=(12, 16))
        batch = dtw_batch(query, candidates, 3, abandon_above=2.0)
        pairs = dtw_pairs(
            np.broadcast_to(query, candidates.shape),
            candidates,
            3,
            abandon_above=2.0,
        )
        np.testing.assert_array_equal(batch, pairs)

    def test_dtw_pairs_rejects_misaligned_stacks(self):
        with pytest.raises(DistanceError, match="aligned"):
            dtw_pairs(np.zeros((2, 4)), np.zeros((3, 4)), 1)

    def test_stacked_kernels_reject_1d_queries(self):
        with pytest.raises(DistanceError, match="2-D"):
            lb_kim_stacked(np.zeros(4), np.zeros((2, 4)))

    def test_lb_keogh_reverse_stacked_chunks_identically(self, monkeypatch):
        import repro.distances.batch as batch_module

        rng = np.random.default_rng(11)
        queries = rng.uniform(-5, 5, size=(17, 24))
        stack = envelope_matrix(rng.uniform(-5, 5, size=(9, 24)), 3)
        whole = lb_keogh_reverse_stacked(queries, stack)
        monkeypatch.setattr(batch_module, "STACKED_LB_TEMP_BYTES", 1)
        chunked = lb_keogh_reverse_stacked(queries, stack)  # one row at a time
        np.testing.assert_array_equal(whole, chunked)
