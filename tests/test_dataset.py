"""Tests for the Dataset container and subsequence enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import DataError


class TestConstruction:
    def test_wraps_raw_arrays(self):
        dataset = Dataset([[1.0, 2.0], [3.0, 4.0]], name="raw")
        assert len(dataset) == 2
        assert isinstance(dataset[0], TimeSeries)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            Dataset([])

    def test_repr(self, tiny_dataset):
        assert "tiny" in repr(tiny_dataset)


class TestShapeStats:
    def test_min_max_length(self):
        dataset = Dataset([[1.0] * 4, [1.0] * 7])
        assert dataset.min_length == 4
        assert dataset.max_length == 7

    def test_value_range(self, tiny_dataset):
        low, high = tiny_dataset.value_range
        assert low == 0.0
        assert high == 0.7

    def test_total_points(self, tiny_dataset):
        assert tiny_dataset.total_points() == 32


class TestSubsequences:
    def test_enumeration_count_matches_formula(self, tiny_dataset):
        entries = list(tiny_dataset.subsequences(3))
        assert len(entries) == 4 * (8 - 3 + 1)
        assert tiny_dataset.n_subsequences(3) == len(entries)

    def test_values_match_ids(self, tiny_dataset):
        for ssid, values in tiny_dataset.subsequences(4):
            expected = tiny_dataset[ssid.series].values[ssid.start : ssid.stop]
            assert np.array_equal(values, expected)
            assert ssid.length == 4

    def test_start_step_strides(self, tiny_dataset):
        strided = list(tiny_dataset.subsequences(3, start_step=2))
        starts = {ssid.start for ssid, _ in strided}
        assert starts == {0, 2, 4}

    def test_too_short_length_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            list(tiny_dataset.subsequences(1))

    def test_bad_step_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            list(tiny_dataset.subsequences(3, start_step=0))

    def test_materialize_by_id(self, tiny_dataset):
        ssid = SubsequenceId(series=1, start=2, length=3)
        assert tiny_dataset.subsequence(ssid).tolist() == [0.0, 0.5, 0.0]

    def test_total_subsequences_all_lengths(self):
        dataset = Dataset([[1.0] * 5, [2.0] * 5])
        # lengths 2..5: per series 4+3+2+1 = 10 -> paper's N*n*(n-1)/2.
        assert dataset.total_subsequences() == 2 * 5 * 4 / 2

    def test_default_lengths_includes_top(self):
        dataset = Dataset([[1.0] * 10])
        lengths = dataset.default_lengths(length_step=3)
        assert lengths[-1] == 10
        assert lengths[0] == 2

    def test_default_lengths_min_above_top_rejected(self):
        dataset = Dataset([[1.0] * 4])
        with pytest.raises(DataError):
            dataset.default_lengths(min_length=5)


class TestDerivation:
    def test_map_applies_transform(self, tiny_dataset):
        doubled = tiny_dataset.map(lambda values: values * 2)
        assert doubled[0].values[1] == pytest.approx(0.2)
        assert doubled[0].name == tiny_dataset[0].name
        assert doubled.name == tiny_dataset.name

    def test_without_series(self, tiny_dataset):
        reduced = tiny_dataset.without_series(1)
        assert len(reduced) == 3
        assert [series.name for series in reduced] == ["ramp", "fall", "flat"]

    def test_without_series_bad_index(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.without_series(4)

    def test_without_only_series_rejected(self):
        dataset = Dataset([[1.0, 2.0]])
        with pytest.raises(DataError):
            dataset.without_series(0)

    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset([0, 2], name="pair")
        assert [series.name for series in subset] == ["ramp", "fall"]
        assert subset.name == "pair"

    def test_to_matrix(self, tiny_dataset):
        matrix = tiny_dataset.to_matrix()
        assert matrix.shape == (4, 8)

    def test_to_matrix_requires_equal_lengths(self):
        dataset = Dataset([[1.0] * 3, [1.0] * 4])
        with pytest.raises(DataError):
            dataset.to_matrix()
