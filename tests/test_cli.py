"""Tests for the ``onex`` command line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "index.npz"
    code = main(
        [
            "build",
            "--dataset",
            "ItalyPower",
            "--n-series",
            "12",
            "--st",
            "0.2",
            "--all-lengths",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return str(path)


class TestDatasets:
    def test_lists_generators(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("ItalyPower", "ECG", "StarLightCurves"):
            assert name in out


class TestBuild:
    def test_build_reports_stats(self, index_path, capsys):
        assert main(["info", index_path]) == 0
        out = capsys.readouterr().out
        assert "representatives" in out
        assert "ItalyPower" in out

    def test_build_requires_source(self, tmp_path, capsys):
        code = main(["build", "--out", str(tmp_path / "x.npz")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_build_from_ucr_file(self, tmp_path, capsys):
        ucr = tmp_path / "tiny.txt"
        rows = []
        for i in range(6):
            values = ",".join(str(0.1 * ((i + j) % 7)) for j in range(12))
            rows.append(f"1,{values}")
        ucr.write_text("\n".join(rows) + "\n")
        out_path = tmp_path / "ucr.npz"
        code = main(
            ["build", "--ucr-file", str(ucr), "--out", str(out_path), "--st", "0.3"]
        )
        assert code == 0
        assert out_path.exists()

    def test_build_reports_progress(self, index_path, capsys, tmp_path):
        path = tmp_path / "progress.npz"
        code = main(
            [
                "build",
                "--dataset",
                "ItalyPower",
                "--n-series",
                "6",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "subsequences in" in out  # per-length throughput line
        assert "/s)" in out

    def test_build_minibatch_mode(self, tmp_path, capsys):
        path = tmp_path / "minibatch.npz"
        code = main(
            [
                "build",
                "--dataset",
                "ItalyPower",
                "--n-series",
                "6",
                "--assign-mode",
                "minibatch",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "assign mode:     minibatch" in out
        assert "build profile:" in out

    def test_info_shows_build_profile(self, index_path, capsys):
        assert main(["info", index_path]) == 0
        out = capsys.readouterr().out
        assert "assign mode:     sequential" in out
        assert "build profile:" in out
        assert "store" in out  # size line includes the store component


class TestQuery:
    def test_query_by_series_reference(self, index_path, capsys):
        code = main(
            [
                "query",
                index_path,
                "--series",
                "2",
                "--start",
                "3",
                "--length",
                "12",
                "--k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "(X" in out

    def test_query_from_csv(self, index_path, tmp_path, capsys):
        csv = tmp_path / "seq.csv"
        csv.write_text("\n".join(str(0.3 + 0.02 * i) for i in range(12)))
        code = main(["query", index_path, "--csv", str(csv)])
        assert code == 0
        assert "rank" in capsys.readouterr().out

    def test_query_within(self, index_path, capsys):
        code = main(
            [
                "query",
                index_path,
                "--series",
                "0",
                "--length",
                "12",
                "--within",
                "0.4",
                "--exact",
                "12",
            ]
        )
        assert code == 0

    def test_query_requires_input(self, index_path, capsys):
        assert main(["query", index_path]) == 1
        assert "error" in capsys.readouterr().err


class TestSeasonalAndRecommend:
    def test_seasonal(self, index_path, capsys):
        code = main(["seasonal", index_path, "--length", "12", "--series", "1"])
        assert code == 0
        assert "seasonal similarity" in capsys.readouterr().out

    def test_recommend_all(self, index_path, capsys):
        code = main(["recommend", index_path])
        assert code == 0
        out = capsys.readouterr().out
        for word in ("Strict", "Medium", "Loose"):
            assert word in out

    def test_recommend_single_degree(self, index_path, capsys):
        code = main(["recommend", index_path, "--degree", "S", "--length", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Strict" in out
        assert "length 12" in out


class TestQueryLanguageCommand:
    def test_ql_similarity(self, index_path, capsys):
        code = main(
            ["ql", index_path, "OUTPUT X FROM D WHERE seq = X0, k = 2 MATCH = Any"]
        )
        assert code == 0
        assert "rank" in capsys.readouterr().out

    def test_ql_threshold(self, index_path, capsys):
        code = main(["ql", index_path, "OUTPUT ST FROM D WHERE simDegree = NULL"])
        assert code == 0
        assert "Strict" in capsys.readouterr().out

    def test_ql_registered_sequence(self, index_path, tmp_path, capsys):
        csv = tmp_path / "probe.csv"
        csv.write_text(",".join(str(0.2 + 0.03 * i) for i in range(12)))
        code = main(
            [
                "ql",
                index_path,
                "OUTPUT X FROM D WHERE seq = probe MATCH = Exact(12)",
                "--seq",
                f"probe={csv}",
            ]
        )
        assert code == 0

    def test_ql_bad_seq_spec(self, index_path, capsys):
        code = main(["ql", index_path, "OUTPUT X FROM D WHERE seq = p", "--seq", "nofile"])
        assert code == 1

    def test_ql_parse_error_reported(self, index_path, capsys):
        code = main(["ql", index_path, "FETCH things"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServe:
    def _serve(self, index_path, requests, monkeypatch, capsys, extra=()):
        import io
        import json
        import sys

        lines = "\n".join(json.dumps(request) for request in requests) + "\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(lines))
        code = main(["serve", index_path, "--workers", "2", *extra])
        assert code == 0
        out = capsys.readouterr().out
        return [json.loads(line) for line in out.splitlines() if line.strip()]

    def test_serve_answers_requests(self, index_path, monkeypatch, capsys):
        values = [0.3 + 0.02 * i for i in range(12)]
        responses = self._serve(
            index_path,
            [
                {"op": "query", "values": values, "length": 12, "id": 1},
                {"op": "info", "id": 2},
            ],
            monkeypatch,
            capsys,
        )
        assert [r["id"] for r in responses] == [1, 2]
        assert responses[0]["ok"] and responses[0]["matches"]
        assert responses[1]["ok"]
        cache = responses[1]["info"]["cache"]
        assert cache["misses"] == 1  # the query op above missed once

    def test_serve_survives_bad_requests(self, index_path, monkeypatch, capsys):
        responses = self._serve(
            index_path,
            [{"op": "unknown"}, {"op": "recommend"}],
            monkeypatch,
            capsys,
        )
        assert [r["ok"] for r in responses] == [False, True]
