"""Tests for SimilarityGroup (paper Defs. 7 and 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group import SimilarityGroup
from repro.data.timeseries import SubsequenceId
from repro.exceptions import IndexConstructionError


def _ssid(p, j, i=4):
    return SubsequenceId(p, j, i)


@pytest.fixture
def building_group():
    group = SimilarityGroup(4, _ssid(0, 0), np.array([0.0, 1.0, 2.0, 3.0]))
    group.add(_ssid(0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
    group.add(_ssid(1, 0), np.array([2.0, 3.0, 4.0, 5.0]))
    return group


class TestConstructionPhase:
    def test_seed_is_first_member(self):
        group = SimilarityGroup(3, _ssid(0, 0, 3), np.array([1.0, 2.0, 3.0]))
        assert group.count == 1
        assert group.representative.tolist() == [1.0, 2.0, 3.0]

    def test_wrong_seed_length_rejected(self):
        with pytest.raises(IndexConstructionError):
            SimilarityGroup(5, _ssid(0, 0, 5), np.array([1.0, 2.0]))

    def test_running_mean(self, building_group):
        assert building_group.count == 3
        assert building_group.representative.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_len(self, building_group):
        assert len(building_group) == 3

    def test_repr_reflects_state(self, building_group):
        assert "building" in repr(building_group)


class TestFinalize:
    def _finalize(self, group):
        values = [
            np.array([0.0, 1.0, 2.0, 3.0]),
            np.array([1.0, 2.0, 3.0, 4.0]),
            np.array([2.0, 3.0, 4.0, 5.0]),
        ]
        group.finalize(values, envelope_radius=1)
        return values

    def test_members_sorted_by_ed(self, building_group):
        self._finalize(building_group)
        eds = building_group.ed_to_rep
        assert all(eds[i] <= eds[i + 1] for i in range(len(eds) - 1))
        # middle member coincides with the mean -> distance 0 first.
        assert building_group.member_ids[0] == _ssid(0, 1)
        assert eds[0] == pytest.approx(0.0)

    def test_finalize_freezes_representative(self, building_group):
        self._finalize(building_group)
        with pytest.raises(ValueError):
            building_group.representative[0] = 9.0

    def test_cannot_add_after_finalize(self, building_group):
        self._finalize(building_group)
        with pytest.raises(IndexConstructionError):
            building_group.add(_ssid(2, 0), np.zeros(4))

    def test_cannot_finalize_twice(self, building_group):
        self._finalize(building_group)
        with pytest.raises(IndexConstructionError):
            building_group.finalize([np.zeros(4)] * 3, envelope_radius=1)

    def test_member_count_mismatch_rejected(self, building_group):
        with pytest.raises(IndexConstructionError):
            building_group.finalize([np.zeros(4)], envelope_radius=1)

    def test_envelope_available_after_finalize(self, building_group):
        self._finalize(building_group)
        env = building_group.rep_envelope
        assert env.radius == 1
        assert np.all(env.lower <= building_group.representative)

    def test_envelope_before_finalize_rejected(self, building_group):
        with pytest.raises(IndexConstructionError):
            _ = building_group.rep_envelope

    def test_normalized_ed_scaling(self, building_group):
        self._finalize(building_group)
        normalized = building_group.normalized_ed_to_rep()
        assert np.allclose(normalized, building_group.ed_to_rep / 2.0)

    def test_members_of_series(self, building_group):
        self._finalize(building_group)
        assert building_group.members_of_series(0) == (_ssid(0, 1), _ssid(0, 0))
        assert building_group.members_of_series(5) == ()


class TestRestore:
    def test_round_trip_matches_finalized_group(self, building_group):
        values = [
            np.array([0.0, 1.0, 2.0, 3.0]),
            np.array([1.0, 2.0, 3.0, 4.0]),
            np.array([2.0, 3.0, 4.0, 5.0]),
        ]
        building_group.finalize(values, envelope_radius=1)
        restored = SimilarityGroup.restore(
            length=4,
            member_ids=building_group.member_ids,
            ed_to_rep=building_group.ed_to_rep,
            representative=building_group.representative,
            envelope_radius=1,
        )
        assert restored.is_finalized
        assert restored.member_ids == building_group.member_ids
        assert np.allclose(restored.ed_to_rep, building_group.ed_to_rep)
        assert np.allclose(restored.representative, building_group.representative)
        assert np.allclose(
            restored.rep_envelope.lower, building_group.rep_envelope.lower
        )

    def test_restore_rejects_empty(self):
        with pytest.raises(IndexConstructionError):
            SimilarityGroup.restore(4, [], np.array([]), np.zeros(4), 1)

    def test_restore_rejects_mismatched_arrays(self):
        with pytest.raises(IndexConstructionError):
            SimilarityGroup.restore(
                4, [_ssid(0, 0)], np.array([0.0, 1.0]), np.zeros(4), 1
            )
