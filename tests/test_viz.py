"""Tests for the terminal visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.viz.ascii import line_plot, overlay_plot, sparkline
from repro.viz.explain import render_group, render_match, render_warping_path


class TestSparkline:
    def test_length_capped_at_width(self):
        out = sparkline(np.arange(200.0), width=50)
        assert len(out) == 50

    def test_short_input_kept_whole(self):
        out = sparkline(np.arange(5.0), width=50)
        assert len(out) == 5

    def test_monotone_input_monotone_blocks(self):
        out = sparkline(np.arange(8.0))
        assert list(out) == sorted(out)

    def test_flat_input(self):
        out = sparkline(np.full(6, 3.0))
        assert out == out[0] * 6

    def test_extremes_use_extreme_blocks(self):
        out = sparkline(np.array([0.0, 1.0]))
        assert out[0] == "▁"
        assert out[-1] == "█"

    def test_bad_width(self):
        with pytest.raises(DataError):
            sparkline(np.arange(3.0), width=0)


class TestLinePlot:
    def test_dimensions(self):
        out = line_plot(np.sin(np.linspace(0, 6, 30)), width=30, height=8)
        lines = out.splitlines()
        assert len(lines) == 9  # height rows + axis
        assert all("|" in line for line in lines[:-1])

    def test_one_star_per_column(self):
        out = line_plot(np.arange(10.0), width=10, height=5)
        grid = [line.split("|", 1)[1] for line in out.splitlines()[:-1]]
        for column in range(10):
            assert sum(1 for row in grid if row[column] == "*") == 1

    def test_label_prepended(self):
        out = line_plot(np.arange(4.0), label="demo")
        assert out.splitlines()[0] == "demo"

    def test_margins_carry_extremes(self):
        out = line_plot(np.array([2.0, 8.0]))
        assert "8.000" in out
        assert "2.000" in out

    def test_bad_height(self):
        with pytest.raises(DataError):
            line_plot(np.arange(4.0), height=1)


class TestOverlayPlot:
    def test_contains_both_glyph_kinds(self):
        a = np.zeros(20)
        b = np.ones(20)
        out = overlay_plot(a, b, width=20, height=6)
        assert "*" in out
        assert "o" in out

    def test_overlap_marked(self):
        a = np.arange(10.0)
        out = overlay_plot(a, a, width=10, height=5)
        assert "@" in out
        assert "*" not in out.splitlines()[1]  # fully overlapped

    def test_legend_line(self):
        out = overlay_plot(np.arange(4.0), np.arange(4.0), labels=("q", "m"))
        assert out.splitlines()[0] == "*=q  o=m  @=both"


class TestExplainRenderers:
    def test_render_match(self, small_index):
        query = small_index.dataset[0].values[0:12]
        match = small_index.query(query, length=12)[0]
        out = render_match(query, match)
        assert str(match.ssid) in out
        assert "DTW=" in out

    def test_render_group(self, small_index):
        out = render_group(small_index, 12, 0)
        assert "group G12.0" in out
        assert "rep" in out

    def test_render_group_truncates(self, small_index):
        bucket = small_index.rspace.bucket(12)
        big = max(range(bucket.n_groups), key=lambda i: bucket.groups[i].count)
        if bucket.groups[big].count > 8:
            out = render_group(small_index, 12, big)
            assert "more member(s)" in out

    def test_render_warping_path(self):
        x = np.array([0.0, 0.0, 1.0, 0.0])
        y = np.array([0.0, 1.0, 0.0, 0.0])
        out = render_warping_path(x, y)
        lines = out.splitlines()[1:]
        assert len(lines) == 4
        assert lines[0][0] == "#"  # path starts at (0, 0)
        assert lines[-1][-1] == "#"  # ... and ends at (n-1, m-1)

    def test_render_warping_path_rejects_long_input(self):
        with pytest.raises(ValueError):
            render_warping_path(np.zeros(100), np.zeros(100))
