"""Tests for index save/load (npz + JSON manifest, no pickle)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import load_index, save_index
from repro.exceptions import PersistenceError


@pytest.fixture
def saved_path(small_index, tmp_path):
    path = tmp_path / "index.npz"
    save_index(small_index, path)
    return path


class TestRoundTrip:
    def test_dataset_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert len(loaded.dataset) == len(small_index.dataset)
        assert loaded.dataset.name == small_index.dataset.name
        for before, after in zip(small_index.dataset, loaded.dataset):
            assert np.allclose(before.values, after.values)
            assert before.name == after.name
            assert before.label == after.label

    def test_structure_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.rspace.lengths == small_index.rspace.lengths
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        assert loaded.rspace.n_subsequences == small_index.rspace.n_subsequences
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            assert np.allclose(before.rep_matrix, after.rep_matrix)
            assert np.allclose(before.dc, after.dc)
            for group_before, group_after in zip(before.groups, after.groups):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_parameters_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.st == small_index.st
        assert loaded.window == small_index.window
        assert loaded.start_step == small_index.start_step
        assert loaded.value_range == small_index.value_range

    def test_spspace_recomputed_identically(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.spspace.st_half == pytest.approx(small_index.spspace.st_half)
        assert loaded.spspace.st_final == pytest.approx(small_index.spspace.st_final)

    def test_queries_identical_after_reload(self, small_index, saved_path):
        loaded = load_index(saved_path)
        for series in range(3):
            query = small_index.dataset[series].values[2:14]
            before = small_index.query(query, length=12)[0]
            after = loaded.query(query, length=12)[0]
            assert before.ssid == after.ssid
            assert before.dtw_normalized == pytest.approx(after.dtw_normalized)

    def test_facade_save_load(self, small_index, tmp_path):
        path = tmp_path / "facade.npz"
        small_index.save(str(path))
        loaded = OnexIndex.load(str(path))
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_extension_appended_when_missing(self, small_index, tmp_path):
        bare = tmp_path / "noext"
        save_index(small_index, bare)  # numpy appends .npz on save
        loaded = load_index(bare)  # loader finds the .npz variant
        assert loaded.rspace.n_groups == small_index.rspace.n_groups


class TestStoreBackedFormat:
    def test_v2_groups_reattach_to_store(self, saved_path):
        loaded = load_index(saved_path)
        for bucket in loaded.rspace:
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None
                assert bucket.store_view.ids(group.member_rows) == list(
                    group.member_ids
                )

    def test_v2_archives_are_columnar(self, saved_path):
        archive = np.load(saved_path)
        manifest = json.loads(bytes(archive["manifest"]).decode())
        assert manifest["format_version"] == 2
        assert manifest["assign_mode"] == "sequential"
        for entry in manifest["lengths"]:
            assert entry["member_encoding"] == "rows"
            prefix = f"L{entry['length']}_"
            assert prefix + "member_rows" in archive
            assert prefix + "member_series" not in archive

    def test_build_profile_round_trips(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.build_profile == small_index.build_profile
        assert loaded.assign_mode == small_index.assign_mode

    def _write_v1(self, index, path):
        """Re-create the legacy format 1 archive layout."""
        arrays = {}
        arrays["series_values"] = np.concatenate(
            [s.values for s in index.dataset]
        )
        arrays["series_offsets"] = np.cumsum(
            [0] + [len(s) for s in index.dataset]
        ).astype(np.int64)
        lengths_meta = []
        for bucket in index.rspace:
            prefix = f"L{bucket.length}_"
            arrays[prefix + "reps"] = bucket.rep_matrix
            member_series, member_starts, member_eds = [], [], []
            group_offsets = [0]
            for group in bucket.groups:
                for ssid in group.member_ids:
                    member_series.append(ssid.series)
                    member_starts.append(ssid.start)
                member_eds.extend(group.ed_to_rep.tolist())
                group_offsets.append(len(member_series))
            arrays[prefix + "member_series"] = np.asarray(
                member_series, dtype=np.int64
            )
            arrays[prefix + "member_starts"] = np.asarray(
                member_starts, dtype=np.int64
            )
            arrays[prefix + "member_eds"] = np.asarray(
                member_eds, dtype=np.float64
            )
            arrays[prefix + "group_offsets"] = np.asarray(
                group_offsets, dtype=np.int64
            )
            lengths_meta.append(
                {
                    "length": bucket.length,
                    "envelope_radius": bucket.groups[0].envelope_radius,
                }
            )
        manifest = {
            "format_version": 1,
            "dataset_name": index.dataset.name,
            "st": index.st,
            "window": {"kind": "fraction", "value": index.window},
            "start_step": index.start_step,
            "value_range": list(index.value_range),
            "build_seconds": index.build_seconds,
            "group_search_width": None,
            "use_batch_kernels": True,
            "series_names": [s.name for s in index.dataset],
            "series_labels": [s.label for s in index.dataset],
            "lengths": lengths_meta,
        }
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    def test_v1_archives_still_load(self, small_index, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(small_index, path)
        loaded = load_index(path)
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            for group_before, group_after in zip(before.groups, after.groups):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_v1_groups_reattach_to_store(self, small_index, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(small_index, path)
        loaded = load_index(path)
        for bucket in loaded.rspace:
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None

    def test_v1_queries_match_v2(self, small_index, tmp_path, saved_path):
        legacy = tmp_path / "legacy.npz"
        self._write_v1(small_index, legacy)
        from_v1 = load_index(legacy)
        from_v2 = load_index(saved_path)
        query = small_index.dataset[1].values[4:16]
        a = from_v1.query(query, length=12)[0]
        b = from_v2.query(query, length=12)[0]
        assert a.ssid == b.ssid
        assert a.dtw == pytest.approx(b.dtw, abs=1e-12)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "absent.npz")

    def test_not_an_index_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(PersistenceError, match="not an ONEX index"):
            load_index(path)

    def test_wrong_format_version(self, small_index, tmp_path, saved_path):
        archive = dict(np.load(saved_path))
        manifest = json.loads(bytes(archive["manifest"]).decode())
        manifest["format_version"] = 99
        archive["manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        bad = tmp_path / "bad.npz"
        np.savez(bad, **archive)
        with pytest.raises(PersistenceError, match="version"):
            load_index(bad)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(PersistenceError):
            load_index(path)
