"""Tests for index save/load (npz + JSON manifest, no pickle)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import load_index, save_index
from repro.exceptions import PersistenceError


@pytest.fixture
def saved_path(small_index, tmp_path):
    path = tmp_path / "index.npz"
    save_index(small_index, path)
    return path


class TestRoundTrip:
    def test_dataset_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert len(loaded.dataset) == len(small_index.dataset)
        assert loaded.dataset.name == small_index.dataset.name
        for before, after in zip(small_index.dataset, loaded.dataset):
            assert np.allclose(before.values, after.values)
            assert before.name == after.name
            assert before.label == after.label

    def test_structure_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.rspace.lengths == small_index.rspace.lengths
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        assert loaded.rspace.n_subsequences == small_index.rspace.n_subsequences
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            assert np.allclose(before.rep_matrix, after.rep_matrix)
            assert np.allclose(before.dc, after.dc)
            for group_before, group_after in zip(before.groups, after.groups):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_parameters_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.st == small_index.st
        assert loaded.window == small_index.window
        assert loaded.start_step == small_index.start_step
        assert loaded.value_range == small_index.value_range

    def test_spspace_recomputed_identically(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.spspace.st_half == pytest.approx(small_index.spspace.st_half)
        assert loaded.spspace.st_final == pytest.approx(small_index.spspace.st_final)

    def test_queries_identical_after_reload(self, small_index, saved_path):
        loaded = load_index(saved_path)
        for series in range(3):
            query = small_index.dataset[series].values[2:14]
            before = small_index.query(query, length=12)[0]
            after = loaded.query(query, length=12)[0]
            assert before.ssid == after.ssid
            assert before.dtw_normalized == pytest.approx(after.dtw_normalized)

    def test_facade_save_load(self, small_index, tmp_path):
        path = tmp_path / "facade.npz"
        small_index.save(str(path))
        loaded = OnexIndex.load(str(path))
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_extension_appended_when_missing(self, small_index, tmp_path):
        bare = tmp_path / "noext"
        save_index(small_index, bare)  # numpy appends .npz on save
        loaded = load_index(bare)  # loader finds the .npz variant
        assert loaded.rspace.n_groups == small_index.rspace.n_groups


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "absent.npz")

    def test_not_an_index_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(PersistenceError, match="not an ONEX index"):
            load_index(path)

    def test_wrong_format_version(self, small_index, tmp_path, saved_path):
        archive = dict(np.load(saved_path))
        manifest = json.loads(bytes(archive["manifest"]).decode())
        manifest["format_version"] = 99
        archive["manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        bad = tmp_path / "bad.npz"
        np.savez(bad, **archive)
        with pytest.raises(PersistenceError, match="version"):
            load_index(bad)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(PersistenceError):
            load_index(path)
