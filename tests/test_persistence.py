"""Tests for index save/load (npz archives + v3 mmap directories)."""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import load_index, save_index
from repro.exceptions import PersistenceError


@pytest.fixture
def saved_path(small_index, tmp_path):
    path = tmp_path / "index.npz"
    save_index(small_index, path)
    return path


class TestRoundTrip:
    def test_dataset_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert len(loaded.dataset) == len(small_index.dataset)
        assert loaded.dataset.name == small_index.dataset.name
        for before, after in zip(small_index.dataset, loaded.dataset, strict=True):
            assert np.allclose(before.values, after.values)
            assert before.name == after.name
            assert before.label == after.label

    def test_structure_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.rspace.lengths == small_index.rspace.lengths
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        assert loaded.rspace.n_subsequences == small_index.rspace.n_subsequences
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            assert np.allclose(before.rep_matrix, after.rep_matrix)
            assert np.allclose(before.dc, after.dc)
            for group_before, group_after in zip(
                before.groups, after.groups, strict=True
            ):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_parameters_restored(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.st == small_index.st
        assert loaded.window == small_index.window
        assert loaded.start_step == small_index.start_step
        assert loaded.value_range == small_index.value_range

    def test_spspace_recomputed_identically(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.spspace.st_half == pytest.approx(small_index.spspace.st_half)
        assert loaded.spspace.st_final == pytest.approx(small_index.spspace.st_final)

    def test_queries_identical_after_reload(self, small_index, saved_path):
        loaded = load_index(saved_path)
        for series in range(3):
            query = small_index.dataset[series].values[2:14]
            before = small_index.query(query, length=12)[0]
            after = loaded.query(query, length=12)[0]
            assert before.ssid == after.ssid
            assert before.dtw_normalized == pytest.approx(after.dtw_normalized)

    def test_facade_save_load(self, small_index, tmp_path):
        path = tmp_path / "facade.npz"
        small_index.save(str(path))
        loaded = OnexIndex.load(str(path))
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_bare_path_writes_v3_directory(self, small_index, tmp_path):
        bare = tmp_path / "noext"
        save_index(small_index, bare)  # no .npz suffix -> v3 directory
        assert bare.is_dir() and (bare / "manifest.json").exists()
        loaded = load_index(bare)
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_extension_appended_for_explicit_v2(self, small_index, tmp_path):
        bare = tmp_path / "noext"
        save_index(small_index, bare, version=2)  # legacy: .npz appended
        assert (tmp_path / "noext.npz").exists()
        loaded = load_index(bare)  # loader finds the .npz variant
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_pathlike_round_trips_end_to_end(self, small_index, tmp_path):
        path = Path(tmp_path) / "pathlike.npz"
        small_index.save(path)  # a Path, not a str
        loaded = OnexIndex.load(path)
        assert loaded.rspace.n_groups == small_index.rspace.n_groups

    def test_npz_save_is_atomic(self, small_index, tmp_path):
        path = tmp_path / "atomic.npz"
        save_index(small_index, path)
        save_index(small_index, path)  # overwrite via temp + os.replace
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
        assert leftovers == []
        assert load_index(path).rspace.n_groups == small_index.rspace.n_groups


class TestStoreBackedFormat:
    def test_v2_groups_reattach_to_store(self, saved_path):
        loaded = load_index(saved_path)
        for bucket in loaded.rspace:
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None
                assert bucket.store_view.ids(group.member_rows) == list(
                    group.member_ids
                )

    def test_v2_archives_are_columnar(self, saved_path):
        archive = np.load(saved_path)
        manifest = json.loads(bytes(archive["manifest"]).decode())
        assert manifest["format_version"] == 2
        assert manifest["assign_mode"] == "sequential"
        for entry in manifest["lengths"]:
            assert entry["member_encoding"] == "rows"
            prefix = f"L{entry['length']}_"
            assert prefix + "member_rows" in archive
            assert prefix + "member_series" not in archive

    def test_build_profile_round_trips(self, small_index, saved_path):
        loaded = load_index(saved_path)
        assert loaded.build_profile == small_index.build_profile
        assert loaded.assign_mode == small_index.assign_mode

    def _write_v1(self, index, path):
        """Re-create the legacy format 1 archive layout."""
        arrays = {}
        arrays["series_values"] = np.concatenate(
            [s.values for s in index.dataset]
        )
        arrays["series_offsets"] = np.cumsum(
            [0] + [len(s) for s in index.dataset]
        ).astype(np.int64)
        lengths_meta = []
        for bucket in index.rspace:
            prefix = f"L{bucket.length}_"
            arrays[prefix + "reps"] = bucket.rep_matrix
            member_series, member_starts, member_eds = [], [], []
            group_offsets = [0]
            for group in bucket.groups:
                for ssid in group.member_ids:
                    member_series.append(ssid.series)
                    member_starts.append(ssid.start)
                member_eds.extend(group.ed_to_rep.tolist())
                group_offsets.append(len(member_series))
            arrays[prefix + "member_series"] = np.asarray(
                member_series, dtype=np.int64
            )
            arrays[prefix + "member_starts"] = np.asarray(
                member_starts, dtype=np.int64
            )
            arrays[prefix + "member_eds"] = np.asarray(
                member_eds, dtype=np.float64
            )
            arrays[prefix + "group_offsets"] = np.asarray(
                group_offsets, dtype=np.int64
            )
            lengths_meta.append(
                {
                    "length": bucket.length,
                    "envelope_radius": bucket.groups[0].envelope_radius,
                }
            )
        manifest = {
            "format_version": 1,
            "dataset_name": index.dataset.name,
            "st": index.st,
            "window": {"kind": "fraction", "value": index.window},
            "start_step": index.start_step,
            "value_range": list(index.value_range),
            "build_seconds": index.build_seconds,
            "group_search_width": None,
            "use_batch_kernels": True,
            "series_names": [s.name for s in index.dataset],
            "series_labels": [s.label for s in index.dataset],
            "lengths": lengths_meta,
        }
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    def test_v1_archives_still_load(self, small_index, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(small_index, path)
        loaded = load_index(path)
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            for group_before, group_after in zip(
                before.groups, after.groups, strict=True
            ):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_v1_groups_reattach_to_store(self, small_index, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(small_index, path)
        loaded = load_index(path)
        for bucket in loaded.rspace:
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None

    def test_v1_queries_match_v2(self, small_index, tmp_path, saved_path):
        legacy = tmp_path / "legacy.npz"
        self._write_v1(small_index, legacy)
        from_v1 = load_index(legacy)
        from_v2 = load_index(saved_path)
        query = small_index.dataset[1].values[4:16]
        a = from_v1.query(query, length=12)[0]
        b = from_v2.query(query, length=12)[0]
        assert a.ssid == b.ssid
        assert a.dtw == pytest.approx(b.dtw, abs=1e-12)


@pytest.fixture
def v3_path(small_index, tmp_path):
    path = tmp_path / "index.onex"
    save_index(small_index, path, version=3)
    return path


class TestV3Format:
    def test_directory_layout(self, v3_path):
        names = set(os.listdir(v3_path))
        assert "manifest.json" in names
        assert "series_values.npy" in names and "series_offsets.npy" in names
        manifest = json.loads((v3_path / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        for entry in manifest["lengths"]:
            prefix = f"L{entry['length']}_"
            assert entry["member_encoding"] == "rows"
            assert prefix + "member_rows.npy" in names
            assert prefix + "reps.npy" in names
            # The SP-Space thresholds persist so load skips the merge sweep.
            assert "st_half" in entry and "st_final" in entry

    def test_round_trip_queries_match_v1_v2_v3(
        self, small_index, saved_path, tmp_path, v3_path
    ):
        legacy = tmp_path / "legacy.npz"
        TestStoreBackedFormat()._write_v1(small_index, legacy)
        from_v1 = load_index(legacy)
        from_v2 = load_index(saved_path)
        from_v3 = load_index(v3_path)
        for series in range(3):
            query = small_index.dataset[series].values[2:14]
            expected = small_index.query(query, length=12)[0]
            for loaded in (from_v1, from_v2, from_v3):
                match = loaded.query(query, length=12)[0]
                assert match.ssid == expected.ssid
                assert match.dtw == pytest.approx(expected.dtw, abs=1e-12)

    def test_structure_and_parameters_restored(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.st == small_index.st
        assert loaded.window == small_index.window
        assert loaded.start_step == small_index.start_step
        assert loaded.value_range == small_index.value_range
        assert loaded.build_profile == small_index.build_profile
        assert loaded.rspace.lengths == small_index.rspace.lengths
        assert loaded.rspace.n_groups == small_index.rspace.n_groups
        for length in loaded.rspace.lengths:
            before = small_index.rspace.bucket(length)
            after = loaded.rspace.bucket(length)
            assert np.allclose(before.rep_matrix, after.rep_matrix)
            for group_before, group_after in zip(
                before.groups, after.groups, strict=True
            ):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_load_is_lazy_until_first_query(self, small_index, v3_path):
        loaded = load_index(v3_path)
        # O(manifest) load: no bucket (and no member matrix) hydrates yet.
        assert loaded.rspace.hydrated_lengths == []
        query = small_index.dataset[0].values[2:14]
        loaded.query(query, length=12)
        assert loaded.rspace.hydrated_lengths == [12]
        untouched = [x for x in loaded.rspace.lengths if x != 12]
        assert all(
            length not in loaded.rspace.hydrated_lengths for length in untouched
        )

    def test_spspace_restored_without_hydration(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.spspace.st_half == pytest.approx(small_index.spspace.st_half)
        assert loaded.spspace.st_final == pytest.approx(
            small_index.spspace.st_final
        )
        for length in small_index.rspace.lengths:
            assert loaded.spspace.local(length) == pytest.approx(
                small_index.spspace.local(length)
            )
        assert loaded.rspace.hydrated_lengths == []
        # Hydration stamps the persisted local thresholds onto the bucket.
        bucket = loaded.rspace.bucket(12)
        assert bucket.st_half == pytest.approx(
            small_index.rspace.bucket(12).st_half
        )

    def test_series_values_are_memory_mapped(self, v3_path):
        loaded = load_index(v3_path)
        # The store behind every hydrated view windows over the on-disk map:
        # somewhere down the window matrix's base chain sits the memmap.
        array = loaded.rspace.bucket(12).store_view._windows
        bases = []
        while array is not None:
            bases.append(array)
            array = getattr(array, "base", None)
        assert any(isinstance(base, np.memmap) for base in bases)

    def test_groups_reattach_to_store(self, v3_path):
        loaded = load_index(v3_path)
        for bucket in loaded.rspace:
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None
                assert bucket.store_view.ids(group.member_rows) == list(
                    group.member_ids
                )

    def test_atomic_overwrite_of_existing_directory(self, small_index, v3_path):
        save_index(small_index, v3_path, version=3)  # overwrite in place
        parent = v3_path.parent
        leftovers = [
            name
            for name in os.listdir(parent)
            if ".old-" in name or name.startswith(".onex-save-")
        ]
        assert leftovers == []
        assert load_index(v3_path).rspace.n_groups == small_index.rspace.n_groups

    def test_loaded_generation_survives_atomic_resave(
        self, small_index, v3_path
    ):
        """A lazy handle pins its directory generation.

        All array mmaps open at load time, so an atomic re-save over the
        same path between load and first query cannot mix arrays from
        two different builds into one index.
        """
        loaded = load_index(v3_path)
        assert loaded.rspace.hydrated_lengths == []
        save_index(small_index.with_threshold(0.35), v3_path, version=3)
        query = small_index.dataset[0].values[2:14]
        expected = small_index.query(query, length=12)[0]
        got = loaded.query(query, length=12)[0]  # hydrates now
        assert got.ssid == expected.ssid
        assert got.dtw == pytest.approx(expected.dtw, abs=1e-12)
        # The path itself now serves the new generation.
        assert load_index(v3_path).st == pytest.approx(0.35)

    def test_v3_to_v2_conversion(self, v3_path, tmp_path, small_index):
        loaded = load_index(v3_path)
        converted = tmp_path / "converted.npz"
        save_index(loaded, converted)
        assert load_index(converted).rspace.n_groups == small_index.rspace.n_groups


class TestV3NonQueryPaths:
    """Non-query entry points must hydrate lazy buckets correctly."""

    def test_with_threshold_hydrates_and_adapts(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.rspace.hydrated_lengths == []
        adapted = loaded.with_threshold(0.35)
        expected = small_index.with_threshold(0.35)
        assert adapted.st == expected.st
        assert adapted.rspace.lengths == expected.rspace.lengths
        assert adapted.rspace.n_groups == expected.rspace.n_groups
        for length in expected.rspace.lengths:
            before = expected.rspace.bucket(length)
            after = adapted.rspace.bucket(length)
            for group_before, group_after in zip(
                before.groups, after.groups, strict=True
            ):
                assert group_before.member_ids == group_after.member_ids
                assert np.allclose(group_before.ed_to_rep, group_after.ed_to_rep)

    def test_seasonal_hydrates_only_its_length(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.rspace.hydrated_lengths == []
        result = loaded.seasonal(12)
        assert loaded.rspace.hydrated_lengths == [12]
        assert result.groups == small_index.seasonal(12).groups
        user_driven = loaded.seasonal(12, series=1)
        assert user_driven.groups == small_index.seasonal(12, series=1).groups

    def test_stats_hydrate_and_match_eager_load(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.rspace.hydrated_lengths == []
        stats = loaded.stats()
        expected = small_index.stats()
        assert loaded.rspace.hydrated_lengths == small_index.rspace.lengths
        assert stats.n_groups == expected.n_groups
        assert stats.n_representatives == expected.n_representatives
        assert stats.n_subsequences == expected.n_subsequences
        assert stats.n_lengths == expected.n_lengths

    def test_within_on_lazy_index_matches(self, small_index, v3_path):
        loaded = load_index(v3_path)
        assert loaded.rspace.hydrated_lengths == []
        query = small_index.dataset[2].values[1:13]
        got = loaded.within(query, st=0.4, length=12)
        expected = small_index.within(query, st=0.4, length=12)
        assert [m.ssid for m in got] == [m.ssid for m in expected]
        assert [m.dtw for m in got] == pytest.approx([m.dtw for m in expected])


class TestV3Errors:
    def test_missing_manifest(self, tmp_path):
        empty = tmp_path / "empty.onex"
        empty.mkdir()
        with pytest.raises(PersistenceError, match="manifest"):
            load_index(empty)

    def test_corrupted_manifest(self, v3_path):
        (v3_path / "manifest.json").write_text("{ this is not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            load_index(v3_path)

    def test_manifest_without_lengths(self, v3_path):
        (v3_path / "manifest.json").write_text(json.dumps({"format_version": 3}))
        with pytest.raises(PersistenceError, match="manifest"):
            load_index(v3_path)

    def test_manifest_missing_scalar_keys(self, v3_path):
        manifest = json.loads((v3_path / "manifest.json").read_text())
        del manifest["start_step"]
        del manifest["lengths"][0]["st_half"]
        (v3_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="missing .*start_step"):
            load_index(v3_path)

    def test_wrong_version_in_directory(self, v3_path):
        manifest = json.loads((v3_path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (v3_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="version"):
            load_index(v3_path)

    def test_truncated_directory_fails_at_load_not_first_query(self, v3_path):
        os.remove(v3_path / "L12_member_rows.npy")
        with pytest.raises(PersistenceError, match="truncated"):
            load_index(v3_path)

    def test_unwritable_save_version(self, small_index, tmp_path):
        with pytest.raises(PersistenceError, match="version"):
            save_index(small_index, tmp_path / "x.onex", version=7)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "absent.npz")

    def test_not_an_index_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(PersistenceError, match="not an ONEX index"):
            load_index(path)

    def test_wrong_format_version(self, small_index, tmp_path, saved_path):
        archive = dict(np.load(saved_path))
        manifest = json.loads(bytes(archive["manifest"]).decode())
        manifest["format_version"] = 99
        archive["manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        bad = tmp_path / "bad.npz"
        np.savez(bad, **archive)
        with pytest.raises(PersistenceError, match="version"):
            load_index(bad)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(PersistenceError):
            load_index(path)
