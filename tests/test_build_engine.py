"""Property tests for the vectorized construction engine.

The contract of ISSUE 2: the engine's sequential mode is bit-identical
to the reference Algorithm 1 loop across seeds, datasets and start
steps; the minibatch mode preserves the Lemma 1/2 invariants and
answers queries end to end; and incremental maintenance built on the
engine agrees with the scalar query path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.grouping import (
    GroupBuilder,
    build_groups_for_length,
    reference_build_groups_for_length,
)
from repro.core.onex import OnexIndex
from repro.core.query_processor import QueryProcessor
from repro.data.store import SubsequenceStore
from repro.exceptions import IndexConstructionError


def _assert_identical(engine_groups, reference_groups):
    assert len(engine_groups) == len(reference_groups)
    for engine_group, reference_group in zip(
        engine_groups, reference_groups, strict=True
    ):
        assert engine_group.member_ids == reference_group.member_ids
        assert np.array_equal(engine_group.ed_to_rep, reference_group.ed_to_rep)
        assert np.array_equal(
            engine_group.representative, reference_group.representative
        )


class TestSequentialBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("start_step", [1, 2, 3])
    def test_small_dataset(self, small_dataset, seed, start_step):
        engine = build_groups_for_length(
            small_dataset, 12, 0.2, np.random.default_rng(seed), start_step=start_step
        )
        reference = reference_build_groups_for_length(
            small_dataset, 12, 0.2, np.random.default_rng(seed), start_step=start_step
        )
        _assert_identical(engine, reference)

    @pytest.mark.parametrize("st", [0.05, 0.2, 0.8])
    def test_thresholds(self, small_dataset, st):
        engine = build_groups_for_length(
            small_dataset, 18, st, np.random.default_rng(3)
        )
        reference = reference_build_groups_for_length(
            small_dataset, 18, st, np.random.default_rng(3)
        )
        _assert_identical(engine, reference)

    @pytest.mark.parametrize("length", [16, 48])
    def test_ecg_dataset(self, ecg_dataset, length):
        engine = build_groups_for_length(
            ecg_dataset, length, 0.1, np.random.default_rng(11)
        )
        reference = reference_build_groups_for_length(
            ecg_dataset, length, 0.1, np.random.default_rng(11)
        )
        _assert_identical(engine, reference)

    def test_groups_are_store_backed(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        view = store.view(12)
        groups = GroupBuilder(12, 0.2).build(view, np.random.default_rng(0))
        for group in groups:
            assert group.member_rows is not None
            # Rows are stored in LSI order, aligned with member_ids.
            assert view.ids(group.member_rows) == list(group.member_ids)


class TestMinibatchInvariants:
    @pytest.fixture(scope="class")
    def minibatch_groups(self, small_dataset):
        builder = GroupBuilder(12, 0.2, assign_mode="minibatch", chunk_size=64)
        view = SubsequenceStore(small_dataset).view(12)
        return builder.build(view, np.random.default_rng(0))

    def test_every_subsequence_in_exactly_one_group(
        self, small_dataset, minibatch_groups
    ):
        seen = set()
        for group in minibatch_groups:
            for ssid in group.member_ids:
                assert ssid not in seen
                seen.add(ssid)
        expected = {ssid for ssid, _ in small_dataset.subsequences(12)}
        assert seen == expected

    def test_lemma2_members_near_representative(self, minibatch_groups):
        """Members were admitted within sqrt(L)*ST/2 of a then-current
        representative; with the documented running-mean drift slack the
        final spread stays within twice the admission radius (the same
        bound the sequential reference satisfies)."""
        threshold = math.sqrt(12) * 0.2 / 2.0
        for group in minibatch_groups:
            assert group.ed_to_rep.max() <= threshold * 2.0

    def test_lemma1_pairwise_similarity(self, small_dataset, minibatch_groups):
        st = 0.2
        for group in minibatch_groups:
            values = [small_dataset.subsequence(s) for s in group.member_ids]
            for i in range(len(values)):
                for j in range(i + 1, len(values)):
                    ned = float(
                        np.linalg.norm(values[i] - values[j])
                    ) / math.sqrt(12)
                    assert ned <= st * 2.0 + 1e-9

    def test_bad_mode_rejected(self):
        with pytest.raises(IndexConstructionError):
            GroupBuilder(12, 0.2, assign_mode="turbo")

    def test_chunk_size_invariance_of_coverage(self, small_dataset):
        view = SubsequenceStore(small_dataset).view(12)
        for chunk_size in (16, 1024):
            groups = GroupBuilder(
                12, 0.2, assign_mode="minibatch", chunk_size=chunk_size
            ).build(view, np.random.default_rng(5))
            assert sum(g.count for g in groups) == view.n_rows


class TestMinibatchEndToEnd:
    @pytest.fixture(scope="class")
    def minibatch_index(self, small_dataset):
        return OnexIndex.build(
            small_dataset,
            st=0.2,
            lengths=[6, 12, 18, 24],
            normalize=False,
            seed=0,
            assign_mode="minibatch",
        )

    def test_query_finds_close_match(self, small_dataset, minibatch_index):
        for series in range(4):
            query = small_dataset[series].values[3:15]
            matches = minibatch_index.query(query, length=12)
            assert matches
            best = matches[0]
            # The query is itself an indexed subsequence, so the guided
            # search must land within the similarity threshold.
            assert best.dtw_normalized <= minibatch_index.st
            assert best.ssid.length == 12

    def test_batch_and_scalar_paths_agree(self, small_dataset, minibatch_index):
        queries = [small_dataset[s].values[0:12] for s in range(3)]
        batch_results = minibatch_index.query_batch(queries, length=12)
        scalar = QueryProcessor(
            minibatch_index.rspace,
            minibatch_index.dataset,
            st=minibatch_index.st,
            window=minibatch_index.window,
            use_batch_kernels=False,
        )
        for query, matches in zip(queries, batch_results, strict=True):
            reference = scalar.best_match(query, length=12, k=1)
            assert matches[0].ssid == reference[0].ssid
            assert abs(matches[0].dtw - reference[0].dtw) <= 1e-9

    def test_mode_recorded(self, minibatch_index):
        assert minibatch_index.assign_mode == "minibatch"
        assert [entry["length"] for entry in minibatch_index.build_profile] == [
            6,
            12,
            18,
            24,
        ]


class TestMaintenanceProperty:
    def test_append_then_query_batch_matches_scalar(self, small_dataset):
        from repro.extensions.maintenance import append_series

        index = OnexIndex.build(
            small_dataset, st=0.2, lengths=[6, 12], normalize=False, seed=0
        )
        rng = np.random.default_rng(23)
        novel = np.clip(
            small_dataset[0].values + rng.normal(0, 0.05, len(small_dataset[0])),
            0.0,
            1.0,
        )
        extended = append_series(index, novel, name="novel", normalized=True)
        assert len(extended.dataset) == len(small_dataset) + 1
        assert extended.rspace.n_subsequences > index.rspace.n_subsequences

        queries = [extended.dataset[s].values[2:14] for s in range(4)] + [
            novel[1:13]
        ]
        batch_results = extended.query_batch(queries, length=12)
        scalar = QueryProcessor(
            extended.rspace,
            extended.dataset,
            st=extended.st,
            window=extended.window,
            use_batch_kernels=False,
        )
        for query, matches in zip(queries, batch_results, strict=True):
            reference = scalar.best_match(query, length=12, k=1)
            assert matches[0].ssid == reference[0].ssid
            assert abs(matches[0].dtw - reference[0].dtw) <= 1e-9

    def test_extended_bucket_is_store_backed(self, small_dataset):
        from repro.extensions.maintenance import append_series

        index = OnexIndex.build(
            small_dataset, st=0.2, lengths=[12], normalize=False, seed=0
        )
        extended = append_series(
            index, small_dataset[1].values.copy(), normalized=True
        )
        bucket = extended.rspace.bucket(12)
        assert bucket.store_view is not None
        for group_index, group in enumerate(bucket.groups):
            matrix = bucket.member_matrix(group_index, extended.dataset)
            expected = np.stack(
                [extended.dataset.subsequence(s) for s in group.member_ids]
            )
            assert np.array_equal(matrix, expected)


class TestThresholdAdaptationStoreBacked:
    def test_split_and_merge_keep_rows(self, small_dataset):
        index = OnexIndex.build(
            small_dataset, st=0.2, lengths=[12], normalize=False, seed=0
        )
        for st_new in (0.1, 0.4):  # split and merge paths
            adapted = index.with_threshold(st_new)
            bucket = adapted.rspace.bucket(12)
            assert bucket.store_view is not None
            for group in bucket.groups:
                assert group.member_rows is not None
                assert bucket.store_view.ids(group.member_rows) == list(
                    group.member_ids
                )
