"""Tests for TimeSeries and SubsequenceId."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import DataError


class TestSubsequenceId:
    def test_str_follows_paper_notation(self):
        assert str(SubsequenceId(series=3, start=5, length=10)) == "(X3)^10_5"

    def test_stop(self):
        assert SubsequenceId(0, 5, 10).stop == 15

    def test_ordering_and_equality(self):
        a = SubsequenceId(0, 1, 4)
        b = SubsequenceId(0, 1, 4)
        c = SubsequenceId(1, 0, 4)
        assert a == b
        assert a < c
        assert len({a, b, c}) == 2


class TestTimeSeries:
    def test_basic_construction(self):
        series = TimeSeries([1.0, 2.0, 3.0], name="abc", label=2)
        assert len(series) == 3
        assert series.name == "abc"
        assert series.label == 2

    def test_values_are_read_only(self):
        series = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            series.values[0] = 9.0

    def test_iteration_and_indexing(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        assert list(series) == [1.0, 2.0, 3.0]
        assert series[1] == 2.0
        assert series[1:].tolist() == [2.0, 3.0]

    def test_equality_includes_metadata(self):
        a = TimeSeries([1.0, 2.0], name="x", label=1)
        b = TimeSeries([1.0, 2.0], name="x", label=1)
        c = TimeSeries([1.0, 2.0], name="y", label=1)
        assert a == b
        assert a != c
        assert a != "not a series"
        assert hash(a) == hash(b)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            TimeSeries([])

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            TimeSeries([1.0, float("nan")])

    def test_repr_mentions_name_and_length(self):
        series = TimeSeries([1.0] * 5, name="demo", label=3)
        text = repr(series)
        assert "demo" in text
        assert "n=5" in text

    def test_subsequence_extraction(self):
        series = TimeSeries([0.0, 1.0, 2.0, 3.0, 4.0])
        assert series.subsequence(1, 3).tolist() == [1.0, 2.0, 3.0]

    def test_subsequence_out_of_bounds(self):
        series = TimeSeries([0.0, 1.0, 2.0])
        with pytest.raises(DataError):
            series.subsequence(2, 2)
        with pytest.raises(DataError):
            series.subsequence(-1, 2)
        with pytest.raises(DataError):
            series.subsequence(0, 0)

    @pytest.mark.parametrize(
        "length,step,expected",
        [(2, 1, 4), (5, 1, 1), (6, 1, 0), (2, 2, 2), (3, 2, 2)],
    )
    def test_n_subsequences(self, length, step, expected):
        series = TimeSeries([0.0, 1.0, 2.0, 3.0, 4.0])
        assert series.n_subsequences(length, start_step=step) == expected

    def test_with_values_preserves_metadata(self):
        series = TimeSeries([1.0, 2.0], name="keep", label=7)
        replaced = series.with_values([3.0, 4.0, 5.0])
        assert replaced.name == "keep"
        assert replaced.label == 7
        assert replaced.values.tolist() == [3.0, 4.0, 5.0]

    def test_values_copied_on_construction(self):
        source = np.array([1.0, 2.0])
        series = TimeSeries(source)
        source[0] = 99.0  # mutating the caller's array must not leak in
        assert series.values.tolist() == [1.0, 2.0]
        assert series.values.flags.writeable is False
        assert source.flags.writeable is True  # caller's array untouched

    def test_readonly_view_of_writable_base_still_copied(self):
        source = np.array([1.0, 2.0, 3.0])
        view = source[:]
        view.setflags(write=False)  # read-only alias, writable base
        series = TimeSeries(view)
        source[0] = 99.0  # the base is still the caller's to mutate
        assert series.values.tolist() == [1.0, 2.0, 3.0]

    def test_readonly_owner_array_still_copied(self):
        source = np.array([1.0, 2.0, 3.0])
        source.setflags(write=False)
        series = TimeSeries(source)
        source.setflags(write=True)  # the owner may re-enable writes
        source[0] = 99.0
        assert series.values.tolist() == [1.0, 2.0, 3.0]

    def test_writable_memmap_view_still_copied(self, tmp_path):
        path = tmp_path / "rw.npy"
        np.save(path, np.arange(6.0))
        mapped = np.load(path, mmap_mode="r+")
        view = mapped[1:5]
        view.setflags(write=False)  # frozen view, writable mapping
        series = TimeSeries(view)
        mapped[1] = -1.0
        assert series.values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_deeply_readonly_buffer_aliased_without_copy(self, tmp_path):
        path = tmp_path / "frozen.npy"
        np.save(path, np.arange(8.0))
        mapped = np.load(path, mmap_mode="r")
        series = TimeSeries(mapped[2:6])
        # Aliased, not copied: the O(manifest) v3 load depends on this.
        assert series.values.base is not None
        assert series.values.flags.writeable is False
        assert series.values.tolist() == [2.0, 3.0, 4.0, 5.0]
