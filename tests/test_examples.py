"""Smoke tests: every shipped example must run end to end."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "economic_indicators.py",
    "stock_explorer.py",
    "ecg_patterns.py",
    "motif_discovery.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    path = os.path.join(_EXAMPLES_DIR, script)
    assert os.path.exists(path), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_list_is_exhaustive():
    on_disk = sorted(
        name for name in os.listdir(_EXAMPLES_DIR) if name.endswith(".py")
    )
    assert on_disk == sorted(EXAMPLES)
