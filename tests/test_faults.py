"""Fault-injection harness: unit gating + chaos drills through the router.

The end-to-end tests arm worker-side faults (die / delay / drop /
corrupt) through the test-only ``inject_fault`` op and assert the
router's failure model absorbs each one: failover hides a death or a
slow replica, deadline budgets recover stranded frames, breakers open
on repeated failure and close after a successful half-open probe.
Everything here runs with ``ONEX_FAULTS=1``; the first test class pins
that the harness is inert without it.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import save_index
from repro.serve.cluster.faults import ENV_FLAG, FaultInjector
from repro.serve.cluster.router import ClusterRouter
from repro.serve.server import respond
from repro.serve.service import OnexService


@pytest.fixture(scope="module")
def v3_path(small_index, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("faults") / "index_v3"
    save_index(small_index, path)
    return str(path)


@pytest.fixture(scope="module")
def single_service(v3_path) -> OnexService:
    service = OnexService(
        OnexIndex.load(v3_path), max_workers=2, cache_size=256
    )
    yield service
    service.close()


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# The injector itself (no processes)
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_disabled_by_default_and_gated_by_env(self):
        assert FaultInjector().enabled is False
        assert FaultInjector.from_env({}).enabled is False
        assert FaultInjector.from_env({ENV_FLAG: "0"}).enabled is False
        assert FaultInjector.from_env({ENV_FLAG: "1"}).enabled is True

    def test_arm_requires_enabled(self):
        with pytest.raises(RuntimeError, match="disabled"):
            FaultInjector().arm("die")

    def test_arm_validates_inputs(self):
        injector = FaultInjector(enabled=True)
        with pytest.raises(ValueError, match="unknown fault kind"):
            injector.arm("explode")
        with pytest.raises(ValueError, match="count"):
            injector.arm("die", count=0)
        with pytest.raises(ValueError, match="delay_ms"):
            injector.arm("delay", delay_ms=0)

    def test_match_consumes_charges_and_disarms(self):
        injector = FaultInjector(enabled=True)
        injector.arm("drop", ops=["scan"], count=2)
        assert injector.match("refine") is None  # op filter
        assert injector.match("scan").kind == "drop"
        assert injector.match("scan").kind == "drop"
        assert injector.match("scan") is None  # charges spent
        assert injector.list_faults() == []

    def test_control_channel_never_matches(self):
        injector = FaultInjector(enabled=True)
        injector.arm("die")  # ops=None matches everything else
        assert injector.match("inject_fault") is None
        assert injector.match("query").kind == "die"

    def test_disabled_match_is_inert(self):
        injector = FaultInjector()
        assert injector.match("query") is None


# ----------------------------------------------------------------------
# Chaos drills: armed faults through real workers
# ----------------------------------------------------------------------
def _probe(lengths) -> dict:
    rng = np.random.default_rng(9)
    values = [float(v) for v in rng.random(lengths[0] + 1) * 0.8 + 0.1]
    return {"op": "query", "values": values, "id": "probe"}


async def _arm(router, shard, replica, **kwargs):
    response = await router.process_request(
        {"op": "inject_fault", "shard": shard, "replica": replica, **kwargs}
    )
    assert response["ok"], response
    return response


class TestChaosDrills:
    @pytest.fixture(autouse=True)
    def _enable_faults(self, monkeypatch):
        # Workers inherit the router's environment, so setting the flag
        # here arms both sides of the double gate.
        monkeypatch.setenv(ENV_FLAG, "1")

    def _expected(self, single_service, request) -> str:
        return json.dumps(respond(single_service, dict(request)), sort_keys=True)

    def test_inject_fault_rejected_without_env(
        self, v3_path, monkeypatch
    ):
        monkeypatch.delenv(ENV_FLAG, raising=False)

        async def run():
            router = ClusterRouter(v3_path, n_shards=2, ping_interval=30)
            await router.start()
            try:
                return await router.process_request(
                    {"op": "inject_fault", "kind": "die", "id": "no"}
                )
            finally:
                await router.drain()

        response = _run(run())
        assert response["ok"] is False
        assert "disabled" in response["error"]

    def test_die_fault_fails_over_bit_identically(
        self, v3_path, single_service
    ):
        probe = _probe(single_service.index.rspace.lengths)
        expected = self._expected(single_service, probe)

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                respawn_backoff=30.0,
            )
            await router.start()
            try:
                await _arm(router, 0, 0, kind="die", ops=["scan"])
                answered = await router.process_request(dict(probe))
                failovers = router.metrics.failovers
                retries = router.metrics.retries
            finally:
                await router.drain()
            return answered, failovers, retries

        answered, failovers, retries = _run(run())
        assert json.dumps(answered, sort_keys=True) == expected
        assert failovers >= 1
        assert retries >= 1

    def test_delay_fault_trips_replica_timeout(
        self, v3_path, single_service
    ):
        probe = _probe(single_service.index.rspace.lengths)
        expected = self._expected(single_service, probe)

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                replica_timeout_ms=400.0,
                respawn_backoff=30.0,
            )
            await router.start()
            try:
                await _arm(
                    router, 0, 0, kind="delay", ops=["scan"], delay_ms=3_000
                )
                answered = await router.process_request(dict(probe))
                timeouts = router.metrics.to_dict()["replica_timeouts"]
            finally:
                await router.drain()
            return answered, timeouts

        answered, timeouts = _run(run())
        assert json.dumps(answered, sort_keys=True) == expected
        assert timeouts >= 1

    @pytest.mark.parametrize("kind", ["drop", "corrupt"])
    def test_stranded_reply_recovered_by_timeout(
        self, v3_path, single_service, kind
    ):
        """A dropped or corrupt frame strands the RPC future; the
        per-replica timeout fails it over and the client still gets the
        single-process answer."""
        probe = _probe(single_service.index.rspace.lengths)
        expected = self._expected(single_service, probe)

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                replica_timeout_ms=400.0,
                respawn_backoff=30.0,
            )
            await router.start()
            try:
                await _arm(router, 0, 0, kind=kind, ops=["scan"])
                answered = await router.process_request(
                    {**probe, "timeout_ms": 30_000}
                )
                timeouts = router.metrics.to_dict()["replica_timeouts"]
            finally:
                await router.drain()
            return answered, timeouts

        answered, timeouts = _run(run())
        answered.pop("id", None)
        expected_obj = json.loads(expected)
        expected_obj.pop("id", None)
        assert json.dumps(answered, sort_keys=True) == json.dumps(
            expected_obj, sort_keys=True
        )
        assert timeouts >= 1

    def test_breaker_opens_then_half_open_probe_closes(self, v3_path):
        """Three consecutive die faults open replica (0,0)'s breaker;
        traffic routes to replica 1 without failures while it is open;
        after the reset window a half-open probe closes it again."""

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                breaker_failure_threshold=3,
                breaker_reset_seconds=1.0,
                respawn_backoff=0.05,
            )
            await router.start()
            victim = router.shards[0].replicas[0]
            probe = {"op": "query", "values": [0.5] * 7}
            try:
                for _ in range(3):
                    await _arm(router, 0, 0, kind="die", ops=["scan"])
                    answered = await router.process_request(dict(probe))
                    assert answered["ok"], answered
                    # Wait for the respawn so the next round hits the
                    # primary again (breaker still closed).
                    for _ in range(400):
                        if victim.alive and victim.breaker.state != "open":
                            try:
                                await victim.ping()
                                break
                            except Exception:
                                pass
                        if victim.breaker.state == "open":
                            break
                        await asyncio.sleep(0.02)
                    if victim.breaker.state == "open":
                        break
                state_after_failures = victim.breaker.state
                # While open, requests succeed without touching replica 0.
                answered = await router.process_request(dict(probe))
                assert answered["ok"], answered
                # After the reset window, the next request probes
                # replica 0 (half-open) and a success closes it.
                await asyncio.sleep(1.1)
                for _ in range(400):
                    if victim.alive:
                        break
                    await asyncio.sleep(0.02)
                answered = await router.process_request(dict(probe))
                assert answered["ok"], answered
                closed_again = victim.breaker.state
                transitions = router.metrics.to_dict()[
                    "breaker_transitions"
                ]
            finally:
                await router.drain()
            return state_after_failures, closed_again, transitions

        state_after_failures, closed_again, transitions = _run(run())
        assert state_after_failures == "open"
        assert closed_again == "closed"
        assert transitions["open"] >= 1
        assert transitions["half_open"] >= 1
        assert transitions["closed"] >= 1

    def test_health_reports_crash_looping_replica(self, v3_path):
        """A worker that dies on every request trips the crash-loop
        detector: consecutive fast deaths surface in ``health``."""

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                breaker_failure_threshold=100,  # keep the breaker out
                respawn_backoff=0.05,
                crash_loop_threshold=3,
            )
            await router.start()
            victim = router.shards[0].replicas[0]
            probe = {"op": "query", "values": [0.5] * 7}
            try:
                for _ in range(3):
                    await _arm(router, 0, 0, kind="die", ops=["scan"])
                    answered = await router.process_request(dict(probe))
                    assert answered["ok"], answered
                    for _ in range(400):
                        if victim.alive:
                            try:
                                await victim.ping()
                                break
                            except Exception:
                                pass
                        await asyncio.sleep(0.02)
                health = await router.process_request({"op": "health"})
                crash_loops = router.metrics.to_dict()["crash_loops"]
            finally:
                await router.drain()
            return health, crash_loops

        health, crash_loops = _run(run())
        snapshot = health["health"]
        assert {"shard": 0, "replica": 0} in snapshot["crash_looping"]
        assert snapshot["status"] in ("degraded", "ok")
        assert crash_loops >= 1
