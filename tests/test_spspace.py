"""Tests for the SP-Space (paper §4.2): merge heights, ST_half/ST_final,
similarity degrees and recommendations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.grouping import build_groups_for_length
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import (
    SimilarityDegree,
    SPSpace,
    local_thresholds,
    merge_heights,
)
from repro.exceptions import QueryError
from repro.utils.unionfind import UnionFind


class TestMergeHeights:
    def test_single_group_no_heights(self):
        assert merge_heights(np.zeros((1, 1)), st=0.2) == []

    def test_two_groups_one_height(self):
        dc = np.array([[0.0, 0.3], [0.3, 0.0]])
        assert merge_heights(dc, st=0.2) == [pytest.approx(0.5)]

    def test_heights_monotone_nondecreasing(self, small_index):
        for bucket in small_index.rspace:
            heights = merge_heights(bucket.dc, st=small_index.st)
            assert heights == sorted(heights)
            assert len(heights) == bucket.n_groups - 1

    def test_heights_reflect_single_linkage(self):
        # Chain 0-1 (0.1), 1-2 (0.2); direct 0-2 is far (0.9): single
        # linkage merges through the chain, never paying 0.9.
        dc = np.array(
            [[0.0, 0.1, 0.9], [0.1, 0.0, 0.2], [0.9, 0.2, 0.0]]
        )
        heights = merge_heights(dc, st=0.0)
        assert heights == [pytest.approx(0.1), pytest.approx(0.2)]


class TestLocalThresholds:
    def test_half_at_most_final(self, small_index):
        for bucket in small_index.rspace:
            st_half, st_final = local_thresholds(bucket, small_index.st)
            assert small_index.st <= st_half <= st_final

    def test_single_group_bucket(self, small_dataset):
        groups = build_groups_for_length(
            small_dataset, 12, 100.0, np.random.default_rng(0)
        )
        bucket = LengthBucket(length=12, groups=groups)
        assert bucket.n_groups == 1
        st_half, st_final = local_thresholds(bucket, 100.0)
        assert st_half == st_final == 100.0

    def test_final_merges_everything(self, small_index):
        """At ST' = ST_final every pair must be connected through edges
        with Dc <= ST_final - ST (the definition of 'all groups merge')."""
        st = small_index.st
        for bucket in small_index.rspace:
            _, st_final = local_thresholds(bucket, st)
            margin = st_final - st
            g = bucket.n_groups
            uf = UnionFind(g)
            for i in range(g):
                for j in range(i + 1, g):
                    if bucket.dc[i, j] <= margin + 1e-12:
                        uf.union(i, j)
            assert uf.n_components == 1

    def test_half_leaves_at_most_half(self, small_index):
        st = small_index.st
        for bucket in small_index.rspace:
            st_half, _ = local_thresholds(bucket, st)
            margin = st_half - st
            g = bucket.n_groups
            uf = UnionFind(g)
            for i in range(g):
                for j in range(i + 1, g):
                    if bucket.dc[i, j] <= margin + 1e-12:
                        uf.union(i, j)
            assert uf.n_components <= math.ceil(g / 2)


class TestSPSpace:
    def test_globals_are_maxima_of_locals(self, small_index):
        sp = small_index.spspace
        halves = [sp.local(length)[0] for length in sp.lengths]
        finals = [sp.local(length)[1] for length in sp.lengths]
        assert sp.st_half == pytest.approx(max(halves))
        assert sp.st_final == pytest.approx(max(finals))

    def test_local_written_back_to_buckets(self, small_index):
        for bucket in small_index.rspace:
            assert bucket.st_half is not None
            assert bucket.st_final is not None

    def test_unknown_length(self, small_index):
        with pytest.raises(QueryError):
            small_index.spspace.local(555)

    def test_degree_classification_boundaries(self, small_index):
        sp = small_index.spspace
        assert sp.degree_of(sp.st_half * 0.5) is SimilarityDegree.STRICT
        assert sp.degree_of(sp.st_half) is SimilarityDegree.STRICT
        between = (sp.st_half + sp.st_final) / 2
        if sp.st_half < sp.st_final:
            assert sp.degree_of(between) is SimilarityDegree.MEDIUM
        assert sp.degree_of(sp.st_final * 1.5) is SimilarityDegree.LOOSE

    def test_recommend_ranges_partition_the_axis(self, small_index):
        sp = small_index.spspace
        strict = sp.recommend("S")
        medium = sp.recommend("M")
        loose = sp.recommend("L")
        assert strict.low == 0.0
        assert strict.high == pytest.approx(medium.low)
        assert medium.high == pytest.approx(loose.low)
        assert math.isinf(loose.high)

    def test_recommend_contains_consistent_with_degree(self, small_index):
        sp = small_index.spspace
        for degree in SimilarityDegree:
            rec = sp.recommend(degree)
            if rec.high <= rec.low:  # degenerate (st_half == st_final)
                continue
            probe = rec.low + (min(rec.high, rec.low + 1.0) - rec.low) / 2
            assert rec.contains(probe)

    def test_recommend_all_returns_three(self, small_index):
        recs = small_index.spspace.recommend_all()
        assert [rec.degree for rec in recs] == ["S", "M", "L"]

    def test_recommend_per_length(self, small_index):
        length = small_index.rspace.lengths[0]
        rec = small_index.spspace.recommend("S", length=length)
        assert rec.length == length
        assert rec.high == pytest.approx(small_index.spspace.local(length)[0])


class TestSimilarityDegreeParse:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("S", SimilarityDegree.STRICT),
            ("m", SimilarityDegree.MEDIUM),
            (" L ", SimilarityDegree.LOOSE),
            ("strict", SimilarityDegree.STRICT),
        ],
    )
    def test_accepted_tokens(self, token, expected):
        assert SimilarityDegree.parse(token) is expected

    def test_unknown_token(self):
        with pytest.raises(QueryError):
            SimilarityDegree.parse("X")
