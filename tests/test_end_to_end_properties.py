"""Hypothesis properties over the whole pipeline on random datasets.

These are the strongest checks in the suite: for arbitrary random
datasets and thresholds, a built index must cover every subsequence,
answer near-exactly for indexed queries, and never return anything the
brute-force oracle would place more than the approximation bound away.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.brute_force import StandardDTW
from repro.core.onex import OnexIndex
from repro.data.dataset import Dataset


def _random_dataset(seed: int, n_series: int, length: int) -> Dataset:
    """A smooth-ish random dataset in [0, 1] (normalized by construction)."""
    rng = np.random.default_rng(seed)
    series = []
    for _ in range(n_series):
        walk = np.cumsum(rng.normal(0.0, 1.0, length))
        low, high = walk.min(), walk.max()
        span = (high - low) or 1.0
        series.append((walk - low) / span)
    return Dataset(series, name=f"random-{seed}")


dataset_params = st.tuples(
    st.integers(0, 1_000),  # seed
    st.integers(3, 6),  # n_series
    st.integers(10, 20),  # series length
)


@given(params=dataset_params, st_value=st.sampled_from([0.1, 0.2, 0.4]))
@settings(max_examples=25, deadline=None)
def test_property_index_covers_every_subsequence(params, st_value):
    seed, n_series, length = params
    dataset = _random_dataset(seed, n_series, length)
    lengths = sorted({length // 2, length})
    index = OnexIndex.build(
        dataset, st=st_value, lengths=lengths, normalize=False, seed=seed
    )
    for sub_length in lengths:
        expected = {ssid for ssid, _ in dataset.subsequences(sub_length)}
        indexed = {
            ssid
            for group in index.rspace.bucket(sub_length).groups
            for ssid in group.member_ids
        }
        assert indexed == expected


@given(params=dataset_params)
@settings(max_examples=15, deadline=None)
def test_property_indexed_query_found_with_small_error(params):
    seed, n_series, length = params
    dataset = _random_dataset(seed, n_series, length)
    sub_length = max(4, length // 2)
    index = OnexIndex.build(
        dataset, st=0.2, lengths=[sub_length], normalize=False, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    series = int(rng.integers(0, n_series))
    start = int(rng.integers(0, length - sub_length + 1))
    query = dataset[series].values[start : start + sub_length]
    match = index.query(query, length=sub_length)[0]
    # ONEX may land in a neighbouring group, but an identical window
    # exists, so the error is bounded by the group diameter ~ ST.
    assert match.dtw_normalized <= 0.2


@given(params=dataset_params)
@settings(max_examples=10, deadline=None)
def test_property_onex_error_bounded_vs_oracle(params):
    seed, n_series, length = params
    dataset = _random_dataset(seed, n_series, length)
    sub_length = max(4, length // 2)
    lengths = [sub_length, length]
    st_value = 0.2
    index = OnexIndex.build(
        dataset, st=st_value, lengths=lengths, normalize=False, seed=seed
    )
    oracle = StandardDTW(window=index.window)
    oracle.prepare(dataset, lengths)
    rng = np.random.default_rng(seed + 2)
    query = np.clip(rng.normal(0.5, 0.25, sub_length), 0.0, 1.0)
    got = index.query(query, stop_at_half_st=False)[0]
    exact = oracle.best_match(query)
    assert got.dtw_normalized >= exact.dtw_normalized - 1e-9
    # Approximation bound: the query's group-selection error is bounded
    # by the threshold scale (loose but must always hold).
    assert got.dtw_normalized <= exact.dtw_normalized + st_value


@given(params=dataset_params, new_st=st.sampled_from([0.05, 0.3, 0.6]))
@settings(max_examples=15, deadline=None)
def test_property_threshold_adaptation_preserves_coverage(params, new_st):
    seed, n_series, length = params
    dataset = _random_dataset(seed, n_series, length)
    sub_length = max(4, length // 2)
    index = OnexIndex.build(
        dataset, st=0.2, lengths=[sub_length], normalize=False, seed=seed
    )
    adapted = index.with_threshold(new_st)
    assert adapted.rspace.n_subsequences == index.rspace.n_subsequences
    before = {
        ssid
        for group in index.rspace.bucket(sub_length).groups
        for ssid in group.member_ids
    }
    after = {
        ssid
        for group in adapted.rspace.bucket(sub_length).groups
        for ssid in group.member_ids
    }
    assert before == after
