"""Tests for the timing helpers."""

from __future__ import annotations

import contextlib
import time

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_starts_at_zero(self):
        timer = Timer()
        assert timer.elapsed == 0.0
        assert timer.n_spans == 0
        assert timer.mean == 0.0

    def test_span_accumulates(self):
        timer = Timer()
        with timer.span():
            time.sleep(0.002)
        assert timer.elapsed >= 0.002
        assert timer.n_spans == 1

    def test_multiple_spans_sum(self):
        timer = Timer()
        for _ in range(3):
            with timer.span():
                time.sleep(0.001)
        assert timer.n_spans == 3
        assert timer.elapsed >= 0.003
        assert timer.mean >= 0.001

    def test_span_records_on_exception(self):
        timer = Timer()
        with contextlib.suppress(RuntimeError), timer.span():
            raise RuntimeError("boom")
        assert timer.n_spans == 1
        assert timer.elapsed >= 0.0

    def test_reset(self):
        timer = Timer()
        with timer.span():
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.n_spans == 0


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_duration_scales(self):
        _, fast = timed(lambda: None)
        _, slow = timed(lambda: time.sleep(0.005))
        assert slow > fast
