"""Tests for the serving layer: thread safety, caching, batch execution.

The concurrency tests hammer a *freshly loaded* v3 index — the worst
case, where every lazy payload (bucket hydration, envelope stacks,
member matrices) is built under contention — and assert the results are
bit-identical to serial execution, and that each lazy payload was
constructed exactly once.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.core.rspace as rspace_module
from repro.core.persistence import load_index, save_index
from repro.exceptions import QueryError
from repro.serve import (
    OnexService,
    ResultCache,
    execute_batch,
    serve_lines,
)

N_THREADS = 8


@pytest.fixture(scope="module")
def v3_path(small_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "index.onex"
    save_index(small_index, path, version=3)
    return path


@pytest.fixture(scope="module")
def workload(small_index):
    """A deterministic mix of queries across every indexed length."""
    rng = np.random.default_rng(42)
    dataset = small_index.dataset
    queries = []
    for length in small_index.rspace.lengths:
        for _ in range(4):
            series = int(rng.integers(0, len(dataset)))
            start = int(rng.integers(0, len(dataset[series]) - length + 1))
            queries.append(dataset[series].values[start : start + length])
    return queries


def _serial_answers(index, queries):
    return [index.query(query) for query in queries]


def _identical(batch_a, batch_b):
    assert len(batch_a) == len(batch_b)
    for matches_a, matches_b in zip(batch_a, batch_b, strict=True):
        assert [m.ssid for m in matches_a] == [m.ssid for m in matches_b]
        assert [m.dtw for m in matches_a] == [m.dtw for m in matches_b]
        assert [m.dtw_normalized for m in matches_a] == [
            m.dtw_normalized for m in matches_b
        ]


class TestConcurrentQueries:
    def test_threads_match_serial_on_fresh_v3_index(self, v3_path, workload):
        expected = _serial_answers(load_index(v3_path), workload)
        hammered = load_index(v3_path)
        assert hammered.rspace.hydrated_lengths == []  # everything lazy
        barrier = threading.Barrier(N_THREADS)

        def run(thread_index: int):
            barrier.wait()  # maximize hydration contention
            # Each thread walks the workload from its own offset so
            # different threads hit different lengths simultaneously.
            order = list(range(len(workload)))
            shifted = order[thread_index:] + order[:thread_index]
            return {i: hammered.query(workload[i]) for i in shifted}

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            outcomes = list(pool.map(run, range(N_THREADS)))
        for outcome in outcomes:
            _identical(
                [outcome[i] for i in range(len(workload))], expected
            )

    def test_buckets_hydrate_exactly_once_under_contention(self, v3_path):
        loaded = load_index(v3_path)
        calls: dict[int, int] = {}
        lock = threading.Lock()

        def wrap(length, loader):
            def counted():
                with lock:
                    calls[length] = calls.get(length, 0) + 1
                time.sleep(0.02)  # widen the race window
                return loader()

            return counted

        loaded.rspace._loaders = {
            length: wrap(length, loader)
            for length, loader in loaded.rspace._loaders.items()
        }
        lengths = loaded.rspace.lengths
        barrier = threading.Barrier(N_THREADS)

        def hammer(_):
            barrier.wait()
            return [loaded.rspace.bucket(length) for length in lengths]

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            outcomes = list(pool.map(hammer, range(N_THREADS)))
        assert calls == {length: 1 for length in lengths}
        # Every thread observed the very same bucket objects.
        for outcome in outcomes[1:]:
            for mine, first in zip(outcome, outcomes[0], strict=True):
                assert mine is first

    def test_envelope_stacks_built_exactly_once(
        self, v3_path, workload, monkeypatch
    ):
        loaded = load_index(v3_path)
        counts: dict[tuple[int, int], int] = {}
        lock = threading.Lock()
        real = rspace_module.envelope_matrix

        def counted(matrix, radius):
            with lock:
                key = (matrix.shape[1], int(radius))
                counts[key] = counts.get(key, 0) + 1
            time.sleep(0.01)
            return real(matrix, radius)

        monkeypatch.setattr(rspace_module, "envelope_matrix", counted)
        barrier = threading.Barrier(N_THREADS)

        def hammer(thread_index):
            barrier.wait()
            return [loaded.query(query) for query in workload]

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(hammer, range(N_THREADS)))
        assert counts  # the batch path did build envelope stacks
        assert all(count == 1 for count in counts.values()), counts

    def test_member_matrices_cached_and_readonly(self, small_index):
        bucket = small_index.rspace.bucket(12)
        first = bucket.member_matrix(0, small_index.dataset)
        again = bucket.member_matrix(0, small_index.dataset)
        assert first is again
        assert not first.flags.writeable

    def test_member_matrix_cache_is_byte_bounded(self, v3_path):
        loaded = load_index(v3_path)
        bucket = loaded.rspace.bucket(12)
        assert bucket.n_groups > 2
        stack_bytes = sorted(
            group.count * bucket.length * 8 for group in bucket.groups
        )
        # Budget fits only the two largest stacks: older entries evict.
        bucket.MEMBER_MATRIX_CACHE_BYTES = stack_bytes[-1] + stack_bytes[-2]
        for g in range(bucket.n_groups):
            bucket.member_matrix(g, loaded.dataset)
        assert len(bucket._member_matrices) < bucket.n_groups
        assert bucket._member_matrix_bytes <= bucket.MEMBER_MATRIX_CACHE_BYTES
        # An evicted stack rebuilds correctly (and re-enters the LRU).
        rebuilt = bucket.member_matrix(0, loaded.dataset)
        np.testing.assert_array_equal(
            rebuilt, bucket.store_view.values(bucket.groups[0].member_rows)
        )


class TestBatchExecutor:
    def test_exact_length_identical_to_sequential(self, small_index, workload):
        queries = [q for q in workload if q.shape[0] == 12]
        sequential = small_index.query_batch(queries, length=12, grouped=False)
        grouped = small_index.query_batch(queries, length=12, grouped=True)
        _identical(grouped, sequential)

    def test_any_length_identical_to_sequential(self, small_index, workload):
        sequential = small_index.query_batch(workload, grouped=False)
        grouped = small_index.query_batch(workload, grouped=True)
        _identical(grouped, sequential)

    def test_k_and_no_stop_identical(self, small_index, workload):
        sequential = small_index.query_batch(
            workload, k=3, stop_at_half_st=False, grouped=False
        )
        grouped = small_index.query_batch(
            workload, k=3, stop_at_half_st=False, grouped=True
        )
        _identical(grouped, sequential)

    def test_single_worker_identical(self, small_index, workload):
        grouped = small_index.query_batch(workload, grouped=True, max_workers=1)
        _identical(grouped, small_index.query_batch(workload, grouped=False))

    def test_empty_batch(self, small_index):
        assert small_index.query_batch([]) == []

    def test_k_validation(self, small_index, workload):
        with pytest.raises(QueryError, match="k must be"):
            execute_batch(small_index, workload[:2], k=0)

    def test_unreachable_length_raises(self, small_index, workload):
        with pytest.raises(QueryError, match="not indexed"):
            small_index.query_batch(workload[:2], length=13)

    def test_grouped_on_fresh_v3_index(self, v3_path, workload, small_index):
        loaded = load_index(v3_path)
        grouped = loaded.query_batch(workload, grouped=True)
        _identical(grouped, small_index.query_batch(workload, grouped=False))

    def test_worker_refinement_stats_merge_into_caller(
        self, small_index, workload
    ):
        processor = small_index.processor
        small_index.query_batch(workload, grouped=True, max_workers=4)
        stats = processor.last_stats
        # The in-group search ran on pool threads; its counters must
        # still land in the calling thread's stats.
        assert stats.members_examined > 0
        assert stats.reps_examined > 0


class TestStackedScan:
    def test_matches_per_query_scan(self, small_index, workload):
        processor = small_index.processor
        bucket = small_index.rspace.bucket(12)
        queries = np.stack([q for q in workload if q.shape[0] == 12])
        stacked = processor.scan_representatives_stacked(bucket, queries)
        for query, scans in zip(queries, stacked, strict=True):
            single = processor._scan_representatives(bucket, query, np.inf)
            assert [s.group_index for s in scans] == [
                s.group_index for s in single
            ]
            assert [s.dtw_raw for s in scans] == [s.dtw_raw for s in single]

    def test_seeded_bounds_prune_like_per_query(self, small_index, workload):
        processor = small_index.processor
        bucket = small_index.rspace.bucket(12)
        queries = np.stack([q for q in workload if q.shape[0] == 12])
        bounds = np.full(queries.shape[0], 1e-9)  # nothing can beat this
        stacked = processor.scan_representatives_stacked(bucket, queries, bounds)
        assert all(scans == [] for scans in stacked)

    def test_stats_are_thread_local(self, small_index, workload):
        processor = small_index.processor
        seen = {}

        def run(name, query):
            processor.best_match(query)
            seen[name] = processor.last_stats

        a = threading.Thread(target=run, args=("a", workload[0]))
        b = threading.Thread(target=run, args=("b", workload[-1]))
        a.start(), b.start(), a.join(), b.join()
        assert seen["a"] is not seen["b"]


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=2)
        key = ResultCache.make_key(np.arange(4.0), kind="query", k=1)
        assert cache.get(key) is None
        cache.put(key, ("value",))
        assert cache.get(key) == ("value",)
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 1
        assert cache.stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        keys = [
            ResultCache.make_key(np.arange(4.0) + i, kind="query") for i in range(3)
        ]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        assert cache.get(keys[0]) == 0  # refresh 0: now 1 is least recent
        cache.put(keys[2], 2)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[2]) == 2
        assert len(cache) == 2

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        key = ResultCache.make_key(np.arange(3.0), kind="query")
        cache.put(key, 1)
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_params_change_key(self):
        values = np.arange(6.0)
        assert ResultCache.make_key(values, k=1) != ResultCache.make_key(
            values, k=2
        )
        assert ResultCache.make_key(values, k=1) == ResultCache.make_key(
            values.copy(), k=1
        )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(max_bytes=-1)

    def test_byte_budget_evicts_and_skips_oversized(self, small_index):
        matches = tuple(small_index.query(small_index.dataset[0].values[:12], k=4))
        one_result = ResultCache._result_bytes(matches)
        cache = ResultCache(capacity=100, max_bytes=2 * one_result)
        keys = [
            ResultCache.make_key(np.arange(12.0) + i, kind="query")
            for i in range(4)
        ]
        for key in keys:
            cache.put(key, matches)
        # Entry count is far under capacity, but bytes bound the cache.
        assert len(cache) == 2
        assert cache.stats["bytes"] <= cache.max_bytes
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[-1]) == matches
        # A single result bigger than the whole budget is never stored.
        tiny = ResultCache(capacity=100, max_bytes=one_result - 1)
        tiny.put(keys[0], matches)
        assert len(tiny) == 0


class TestOnexService:
    def test_query_caches(self, small_index, workload):
        with OnexService(small_index, max_workers=2, cache_size=8) as service:
            first = service.query(workload[0])
            second = service.query(workload[0])
            _identical([first], [second])
            assert service.cache.stats["hits"] == 1
            assert service.cache.stats["misses"] == 1

    def test_batch_fills_and_uses_cache(self, small_index, workload):
        queries = [q for q in workload if q.shape[0] == 12]
        with OnexService(small_index, max_workers=2, cache_size=32) as service:
            first = service.query_batch(queries, length=12)
            assert service.cache.stats["misses"] == len(queries)
            second = service.query_batch(queries, length=12)
            assert service.cache.stats["hits"] == len(queries)
            _identical(first, second)
            _identical(
                first, small_index.query_batch(queries, length=12, grouped=False)
            )

    def test_concurrent_service_queries_match_serial(self, v3_path, workload):
        expected = _serial_answers(load_index(v3_path), workload)
        with OnexService(load_index(v3_path), max_workers=4) as service:
            barrier = threading.Barrier(4)

            def run(_):
                barrier.wait()
                return [service.query(query) for query in workload]

            with ThreadPoolExecutor(max_workers=4) as pool:
                outcomes = list(pool.map(run, range(4)))
        for outcome in outcomes:
            _identical(outcome, expected)

    def test_within_seasonal_recommend_delegate(self, small_index, workload):
        with OnexService(small_index, max_workers=1) as service:
            query = workload[-1]
            assert [m.ssid for m in service.within(query, st=0.4)] == [
                m.ssid for m in small_index.within(query, st=0.4)
            ]
            assert service.seasonal(12).groups == small_index.seasonal(12).groups
            assert service.recommend() == small_index.recommend()

    def test_info_shape(self, small_index):
        with OnexService(small_index, max_workers=2, cache_size=4) as service:
            info = service.info()
        assert info["dataset"] == small_index.dataset.name
        assert info["lengths"] == small_index.rspace.lengths
        assert info["workers"] == 2
        assert set(info["cache"]) == {
            "hits",
            "misses",
            "entries",
            "capacity",
            "bytes",
            "max_bytes",
            "hit_rate",
        }

    def test_close_is_idempotent(self, small_index):
        service = OnexService(small_index, max_workers=1)
        service.close()
        service.close()

    def test_scalar_kernel_config_is_honoured(self, small_index, workload):
        from repro.core.onex import OnexIndex

        scalar = OnexIndex(
            dataset=small_index.dataset,
            rspace=small_index.rspace,
            spspace=small_index.spspace,
            st=small_index.st,
            window=small_index.window,
            start_step=small_index.start_step,
            value_range=small_index.value_range,
            use_batch_kernels=False,
        )
        queries = [q for q in workload if q.shape[0] == 12][:4]
        with OnexService(scalar, max_workers=2) as service:
            batched = service.query_batch(queries, length=12)
        _identical(
            batched, [scalar.query(query, length=12) for query in queries]
        )


class TestServeProtocol:
    @pytest.fixture
    def service(self, small_index):
        with OnexService(small_index, max_workers=2) as service:
            yield service

    def _roundtrip(self, service, request):
        (line,) = list(serve_lines(service, [json.dumps(request)]))
        return json.loads(line)

    def test_query_op(self, service, small_index, workload):
        query = workload[4]
        response = self._roundtrip(
            service, {"op": "query", "values": query.tolist(), "id": 7}
        )
        assert response["ok"] and response["id"] == 7
        expected = small_index.query(query)[0]
        got = response["matches"][0]
        assert (got["series"], got["start"], got["length"]) == (
            expected.ssid.series,
            expected.ssid.start,
            expected.ssid.length,
        )
        assert got["dtw"] == expected.dtw

    def test_batch_query_op(self, service, workload):
        queries = [q.tolist() for q in workload[:3]]
        response = self._roundtrip(service, {"op": "query", "queries": queries})
        assert response["ok"]
        assert len(response["results"]) == 3

    def test_within_seasonal_recommend_info_ops(self, service, workload):
        query = workload[-1].tolist()
        assert self._roundtrip(service, {"op": "within", "values": query})["ok"]
        seasonal = self._roundtrip(service, {"op": "seasonal", "length": 12})
        assert seasonal["ok"] and seasonal["seasonal"]["length"] == 12
        recs = self._roundtrip(service, {"op": "recommend"})
        assert recs["ok"] and {r["degree"] for r in recs["recommendations"]} == {
            "S",
            "M",
            "L",
        }
        info = self._roundtrip(service, {"op": "info"})
        assert info["ok"] and "cache" in info["info"]

    def test_errors_keep_loop_alive(self, service, workload):
        lines = [
            "this is not json",
            json.dumps({"op": "wat"}),
            json.dumps({"op": "query"}),
            # Adversarial payloads that raise outside the OnexError
            # family (OverflowError, AttributeError): the loop must
            # answer an error line, not die.
            json.dumps(
                {"op": "query", "values": workload[0].tolist(), "k": 1e400}
            ),
            json.dumps({"op": "recommend", "degree": 5}),
            json.dumps({"op": "seasonal", "length": "not-a-number"}),
            json.dumps({"op": "query", "values": workload[0].tolist()}),
        ]
        responses = [json.loads(line) for line in serve_lines(service, lines)]
        assert [r["ok"] for r in responses] == [
            False,
            False,
            False,
            False,
            False,
            False,
            True,
        ]

    def test_blank_lines_skipped(self, service):
        assert list(serve_lines(service, ["", "   ", "\n"])) == []
