"""Tests for the synthetic UCR-substitute dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import DATASET_GENERATORS, make_dataset
from repro.data.synthetic.base import (
    check_generator_args,
    gaussian_bump,
    make_rng,
    random_walk,
    smooth,
    time_warp,
)
from repro.data.synthetic.registry import PAPER_DATASETS
from repro.exceptions import DataError

ALL_NAMES = list(DATASET_GENERATORS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_generator_basic_shape(name):
    dataset = make_dataset(name, n_series=6, seed=1)
    assert dataset.name.lower().startswith(name.lower()[:4])
    assert len(dataset) == 6
    assert dataset.min_length == dataset.max_length  # UCR style: equal lengths
    for series in dataset:
        assert np.all(np.isfinite(series.values))
        assert series.label is not None


@pytest.mark.parametrize("name", ALL_NAMES)
def test_generator_deterministic_by_seed(name):
    a = make_dataset(name, n_series=4, seed=42)
    b = make_dataset(name, n_series=4, seed=42)
    for series_a, series_b in zip(a, b, strict=True):
        assert np.array_equal(series_a.values, series_b.values)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_generator_seed_changes_data(name):
    a = make_dataset(name, n_series=4, seed=1)
    b = make_dataset(name, n_series=4, seed=2)
    assert any(
        not np.array_equal(sa.values, sb.values) for sa, sb in zip(a, b, strict=True)
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_generator_respects_length(name):
    dataset = make_dataset(name, n_series=3, length=48, seed=0)
    assert dataset.min_length == 48


def test_paper_datasets_subset_of_generators():
    assert set(PAPER_DATASETS) <= set(DATASET_GENERATORS)
    assert len(PAPER_DATASETS) == 6


def test_make_dataset_case_insensitive():
    dataset = make_dataset("italypower", n_series=3)
    assert dataset.name == "ItalyPower"


def test_make_dataset_unknown_name():
    with pytest.raises(DataError, match="unknown dataset"):
        make_dataset("NotADataset")


def test_classes_are_separable_within_dataset():
    """Same-class series should be closer than cross-class, on average."""
    dataset = make_dataset("ItalyPower", n_series=20, seed=3)
    by_label: dict[int, list[np.ndarray]] = {}
    for series in dataset:
        by_label.setdefault(series.label, []).append(series.values)
    labels = sorted(by_label)
    within = np.mean(
        [
            np.linalg.norm(a - b)
            for values in by_label.values()
            for i, a in enumerate(values)
            for b in values[i + 1 :]
        ]
    )
    across = np.mean(
        [
            np.linalg.norm(a - b)
            for a in by_label[labels[0]]
            for b in by_label[labels[1]]
        ]
    )
    assert within < across


class TestBaseHelpers:
    def test_check_generator_args_rejects_bad(self):
        with pytest.raises(DataError):
            check_generator_args(0, 24)
        with pytest.raises(DataError):
            check_generator_args(5, 4)

    def test_smooth_noop_for_small_window(self):
        values = np.array([1.0, 2.0, 3.0])
        assert smooth(values, 1) is values

    def test_smooth_preserves_length_and_reduces_variance(self):
        rng = make_rng(0)
        noisy = rng.normal(size=100)
        smoothed = smooth(noisy, 5)
        assert smoothed.shape == noisy.shape
        assert smoothed.std() < noisy.std()

    def test_time_warp_preserves_length_and_range(self):
        rng = make_rng(1)
        values = np.sin(np.linspace(0, 6.28, 64))
        warped = time_warp(values, rng, strength=0.05)
        assert warped.shape == values.shape
        assert warped.min() >= values.min() - 1e-9
        assert warped.max() <= values.max() + 1e-9

    def test_time_warp_zero_strength_is_copy(self):
        rng = make_rng(2)
        values = np.arange(10.0)
        warped = time_warp(values, rng, strength=0.0)
        assert np.array_equal(warped, values)
        assert warped is not values

    def test_gaussian_bump_peak_at_center(self):
        bump = gaussian_bump(21, center=10.0, width=2.0, amplitude=3.0)
        assert np.argmax(bump) == 10
        assert bump.max() == pytest.approx(3.0)

    def test_random_walk_length(self):
        walk = random_walk(50, make_rng(3))
        assert walk.shape == (50,)
