"""Tests for the benchmark harness: workloads, accuracy, reporting, configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.accuracy import accuracy_percent, retrieval_errors
from repro.bench.datasets import (
    BENCH_CONFIGS,
    STARLIGHT_N_GRID,
    bench_dataset,
    starlight_config,
)
from repro.bench.reporting import ReportRegistry, format_table
from repro.bench.workloads import make_workload
from repro.exceptions import DataError


class TestWorkloads:
    @pytest.fixture(scope="class")
    def workload(self, request):
        dataset = bench_dataset(BENCH_CONFIGS["ItalyPower"])
        return make_workload(dataset, BENCH_CONFIGS["ItalyPower"].lengths, seed=7)

    def test_twenty_queries_split_evenly(self, workload):
        assert len(workload.queries) == 20
        assert len(workload.in_queries) == 10
        assert len(workload.out_queries) == 10

    def test_holdout_removed_from_indexed(self, workload):
        dataset = bench_dataset(BENCH_CONFIGS["ItalyPower"])
        assert len(workload.indexed) == len(dataset) - 1

    def test_out_queries_come_from_holdout(self, workload):
        for query in workload.out_queries:
            assert query.source_series == workload.holdout_series

    def test_in_queries_match_indexed_values(self, workload):
        for query in workload.in_queries:
            series = workload.indexed[query.source_series]
            expected = series.values[
                query.source_start : query.source_start + query.length
            ]
            assert np.array_equal(query.values, expected)

    def test_lengths_cover_grid_extremes(self, workload):
        lengths = {query.length for query in workload.queries}
        grid = BENCH_CONFIGS["ItalyPower"].lengths
        assert min(grid) in lengths
        assert max(grid) in lengths

    def test_deterministic_by_seed(self):
        dataset = bench_dataset(BENCH_CONFIGS["ItalyPower"])
        a = make_workload(dataset, (8, 12), seed=3)
        b = make_workload(dataset, (8, 12), seed=3)
        assert a.holdout_series == b.holdout_series
        for qa, qb in zip(a.queries, b.queries, strict=True):
            assert np.array_equal(qa.values, qb.values)

    def test_requires_two_series(self):
        from repro.data.dataset import Dataset

        with pytest.raises(DataError):
            make_workload(Dataset([[0.1] * 10]), (4,))


class TestAccuracy:
    def test_exact_system_scores_100(self):
        exact = [0.1, 0.2, 0.3]
        assert accuracy_percent(exact, exact) == 100.0

    def test_positive_error_lowers_accuracy(self):
        assert accuracy_percent([0.3], [0.1]) == pytest.approx(80.0)

    def test_negative_differences_clipped(self):
        # System can never beat the exact oracle; tiny negatives are noise.
        errors = retrieval_errors([0.1 - 1e-15], [0.1])
        assert errors[0] == 0.0

    def test_query_length_scaling(self):
        score = accuracy_percent([0.11], [0.10], query_lengths=[50])
        # error 0.01 * 2 * 50 = 1.0 -> accuracy 0.
        assert score == pytest.approx(0.0)

    def test_floor_at_zero(self):
        assert accuracy_percent([10.0], [0.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            accuracy_percent([0.1, 0.2], [0.1])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            accuracy_percent([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            accuracy_percent([0.1], [0.1], query_lengths=[1, 2])


class TestReporting:
    def test_format_table_alignment(self):
        rendered = format_table(
            "My Title", ["name", "value"], [["a", 1.0], ["bbbb", 0.5]]
        )
        lines = rendered.splitlines()
        assert lines[0] == "My Title"
        assert "name" in lines[2]
        assert "bbbb" in lines[-1]

    def test_cell_formatting(self):
        rendered = format_table("t", ["v"], [[1234.5], [0.00012], [7]])
        assert "1,234" in rendered or "1,235" in rendered
        assert "0.00012" in rendered
        assert "7" in rendered

    def test_registry_replaces_by_name(self):
        registry = ReportRegistry()
        registry.add_table("x", "Title A", ["h"], [[1]])
        registry.add_table("x", "Title B", ["h"], [[2]])
        assert len(registry) == 1
        lines: list[str] = []
        registry.render_all(lines.append)
        assert any("Title B" in line for line in lines)
        assert not any("Title A" in line for line in lines)

    def test_registry_writes_files(self, tmp_path):
        registry = ReportRegistry(output_dir=str(tmp_path))
        registry.add_table("saved", "T", ["h"], [[1]])
        assert (tmp_path / "saved.txt").exists()

    def test_empty_registry_renders_nothing(self):
        registry = ReportRegistry()
        lines: list[str] = []
        registry.render_all(lines.append)
        assert lines == []

    def test_clear(self):
        registry = ReportRegistry()
        registry.add_table("x", "T", ["h"], [[1]])
        registry.clear()
        assert len(registry) == 0


class TestConfigs:
    def test_six_paper_datasets(self):
        assert list(BENCH_CONFIGS) == [
            "ItalyPower",
            "ECG",
            "Face",
            "Wafer",
            "Symbols",
            "TwoPattern",
        ]

    @pytest.mark.parametrize("name", list(BENCH_CONFIGS))
    def test_config_lengths_fit_series(self, name):
        config = BENCH_CONFIGS[name]
        assert max(config.lengths) <= config.length
        assert min(config.lengths) >= 4

    @pytest.mark.parametrize("name", list(BENCH_CONFIGS))
    def test_bench_dataset_normalized(self, name):
        dataset = bench_dataset(BENCH_CONFIGS[name])
        low, high = dataset.value_range
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_starlight_config_scales(self):
        config = starlight_config(STARLIGHT_N_GRID[0])
        assert config.n_series == STARLIGHT_N_GRID[0]
        assert config.length == 100
