"""Tests for ED / normalized ED (paper Defs. 2 and 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.distances.euclidean import (
    euclidean,
    euclidean_to_many,
    normalized_euclidean,
    squared_euclidean,
)
from repro.exceptions import LengthMismatchError

vectors = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=32
)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_squared_is_square(self):
        x = np.array([1.0, 2.0])
        y = np.array([2.0, 0.0])
        assert squared_euclidean(x, y) == pytest.approx(euclidean(x, y) ** 2)

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            euclidean(np.array([1.0]), np.array([1.0, 2.0]))

    @given(vectors)
    def test_property_identity(self, values):
        x = np.asarray(values)
        assert euclidean(x, x) == 0.0

    @given(vectors, vectors)
    def test_property_symmetry(self, a, b):
        n = min(len(a), len(b))
        x, y = np.asarray(a[:n]), np.asarray(b[:n])
        assert euclidean(x, y) == pytest.approx(euclidean(y, x))

    @given(vectors, vectors, vectors)
    def test_property_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        x, y, z = np.asarray(a[:n]), np.asarray(b[:n]), np.asarray(c[:n])
        assert euclidean(x, z) <= euclidean(x, y) + euclidean(y, z) + 1e-7

    @given(vectors)
    def test_property_matches_numpy(self, values):
        x = np.asarray(values)
        y = x[::-1].copy()
        assert euclidean(x, y) == pytest.approx(float(np.linalg.norm(x - y)))


class TestNormalizedEuclidean:
    def test_divides_by_sqrt_n(self):
        x = np.zeros(4)
        y = np.ones(4)
        assert normalized_euclidean(x, y) == pytest.approx(euclidean(x, y) / 2.0)

    @given(vectors)
    def test_property_scale_is_rms(self, values):
        x = np.asarray(values)
        y = np.zeros_like(x)
        rms = math.sqrt(float(np.mean(x**2)))
        assert normalized_euclidean(x, y) == pytest.approx(rms, abs=1e-9)


class TestEuclideanToMany:
    def test_matches_individual_distances(self, rng):
        x = rng.normal(size=8)
        candidates = rng.normal(size=(5, 8))
        batched = euclidean_to_many(x, candidates)
        for index in range(5):
            assert batched[index] == pytest.approx(euclidean(x, candidates[index]))

    def test_single_vector_promoted(self, rng):
        x = rng.normal(size=4)
        other = rng.normal(size=4)
        assert euclidean_to_many(x, other).shape == (1,)

    def test_shape_mismatch(self, rng):
        with pytest.raises(LengthMismatchError):
            euclidean_to_many(rng.normal(size=4), rng.normal(size=(3, 5)))
