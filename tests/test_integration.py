"""End-to-end integration tests across module boundaries.

These replay the paper's whole story on small data: offline
construction -> online queries of all three classes -> accuracy vs the
exact baseline -> threshold adaptation -> persistence.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.brute_force import StandardDTW
from repro.baselines.trillion import Trillion
from repro.bench.accuracy import accuracy_percent
from repro.bench.runner import build_context
from repro.bench.datasets import BenchConfig
from repro.core.onex import OnexIndex
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.query.executor import QueryExecutor


@pytest.fixture(scope="module")
def context():
    config = BenchConfig(
        name="ItalyPower",
        n_series=16,
        length=24,
        lengths=(8, 12, 16, 24),
        seed=5,
    )
    return build_context(config)


class TestAccuracyAgainstExact:
    def test_onex_high_accuracy_on_workload(self, context):
        run = context.run_onex()
        lengths = [q.length for q in context.workload.queries]
        score = accuracy_percent(run.distances, context.exact_any, lengths)
        assert score > 90.0

    def test_onex_answers_never_beat_exact(self, context):
        run = context.run_onex()
        for got, exact in zip(run.distances, context.exact_any, strict=True):
            assert got >= exact - 1e-9

    def test_in_dataset_queries_found_nearly_exactly(self, context):
        index = context.index
        for query in context.workload.in_queries:
            match = index.query(query.values, length=query.length)[0]
            assert match.dtw_normalized <= 0.05

    def test_trillion_exact_for_in_dataset_same_length(self, context):
        for query, exact in zip(
            context.workload.queries, context.exact_same
        , strict=True):
            if query.kind != "in":
                continue
            result = context.trillion.best_match(query.values, length=query.length)
            assert result.dtw_normalized == pytest.approx(exact, abs=1e-9)


class TestLemma2Guarantee:
    def test_within_returns_only_similar_sequences(self, context):
        """The headline guarantee: groups whose representative is within
        ST/2 contain only sequences within ST (checked with the documented
        running-mean drift slack)."""
        index = context.index
        st = 0.3
        query = context.workload.queries[0]
        matches = index.within(query.values, st=st, length=query.length)
        for match in matches:
            assert match.dtw_normalized <= st * 1.5

    def test_within_finds_everything_close_to_reps(self, context):
        """Every subsequence whose group representative is within ST/2
        must be returned - no false dismissals at the group level."""
        index = context.index
        query = context.workload.queries[2]
        st = 0.4
        length = query.length
        matches = {m.ssid for m in index.within(query.values, st=st, length=length)}
        bucket = index.rspace.bucket(length)
        from repro.distances.dtw import normalized_dtw

        for group in bucket.groups:
            rep_distance = normalized_dtw(
                query.values, group.representative, window=index.window
            )
            if rep_distance <= st / 2.0:
                for ssid in group.member_ids:
                    assert ssid in matches


class TestThresholdLifecycle:
    def test_adaptation_chain_preserves_data(self, context):
        index = context.index
        total = index.rspace.n_subsequences
        for st in (0.1, 0.35, 0.2):
            index = index.with_threshold(st)
            assert index.rspace.n_subsequences == total

    def test_recommended_strict_threshold_behaves_strictly(self, context):
        index = context.index
        strict_rec = index.recommend("S")[0]
        strict_st = max(0.02, strict_rec.high / 2)
        loose_st = index.recommend("L")[0].low * 1.5
        strict_index = index.with_threshold(strict_st)
        loose_index = index.with_threshold(loose_st)
        assert strict_index.rspace.n_groups >= loose_index.rspace.n_groups


class TestFullPipelineViaQueryLanguage:
    def test_paper_session(self, context, tmp_path):
        """A full analyst session in the paper's own query syntax."""
        index = context.index
        executor = QueryExecutor(index, normalized_inputs=True)
        executor.register_sequence(
            "designed", np.clip(np.linspace(0.2, 0.9, 12), 0, 1)
        )

        best = executor.execute(
            "OUTPUT X FROM D WHERE seq = designed, k = 2 MATCH = Any"
        )
        assert best

        seasonal = executor.execute(
            "OUTPUT SeasonalSim FROM D WHERE seq = NULL MATCH = Exact(12)"
        )
        assert len(seasonal) >= 1

        recs = executor.execute("OUTPUT ST FROM D WHERE simDegree = NULL MATCH = Any")
        assert len(recs) == 3

        # Persist, reload, and ask the same question again.
        path = tmp_path / "session.npz"
        index.save(str(path))
        reloaded = OnexIndex.load(str(path))
        again = QueryExecutor(reloaded, normalized_inputs=True)
        again.register_sequence("designed", np.clip(np.linspace(0.2, 0.9, 12), 0, 1))
        best2 = again.execute("OUTPUT X FROM D WHERE seq = designed, k = 2 MATCH = Any")
        assert [m.ssid for m in best2] == [m.ssid for m in best]


class TestCrossDataset:
    @pytest.mark.parametrize("name", ["ECG", "TwoPattern"])
    def test_other_generators_end_to_end(self, name):
        dataset = min_max_normalize_dataset(
            make_dataset(name, n_series=8, length=64, seed=3)
        )
        index = OnexIndex.build(
            dataset, st=0.2, lengths=[16, 32, 64], normalize=False
        )
        brute = StandardDTW()
        brute.prepare(dataset, [16, 32, 64])
        query = dataset[1].values[10:42]
        onex_match = index.query(query)[0]
        exact = brute.best_match(query)
        assert onex_match.dtw_normalized <= exact.dtw_normalized + 0.05
