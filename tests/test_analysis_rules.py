"""Fixture-based tests for the ``onex lint`` rule families.

Each case writes a small snippet into a fake ``repro`` package tree
(so path-scoped rules see the same layout as the real one) and asserts
the exact ``(code, line)`` pairs the checker reports. The
interprocedural families (lockset propagation, async safety) get the
same treatment — the call graph is built over the fixture tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import run_lint


def lint_snippet(tmp_path: Path, relpath: str, source: str):
    """Lint one snippet placed at ``repro/<relpath>`` under ``tmp_path``."""
    target = tmp_path / "repro" / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path])


def codes_and_lines(report) -> list[tuple[str, int]]:
    return [(d.code, d.line) for d in report.diagnostics]


def codes(report) -> set[str]:
    return {d.code for d in report.diagnostics}


# ----------------------------------------------------------------------
# ONEX1xx — kernel numeric purity
# ----------------------------------------------------------------------
class TestNumericPurity:
    def test_float32_dtype_flagged_in_distances(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/badkernel.py",
            """\
            import numpy as np

            def cast(x):
                return x.astype(np.float32)

            def build(n):
                return np.zeros(n, dtype="float32")
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX101", 4),
            ("ONEX101", 7),
        ]

    def test_float32_outside_distances_is_not_this_rules_business(
        self, tmp_path
    ):
        report = lint_snippet(
            tmp_path,
            "viz/render.py",
            """\
            import numpy as np

            def to_pixels(x):
                return x.astype(np.float32)
            """,
        )
        assert "ONEX101" not in codes(report)

    def test_fastmath_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            from numba import njit

            @njit(cache=True, fastmath=True)
            def kernel(x):
                return x

            @njit(cache=True, fastmath=False)
            def careful(x):
                return x
            """,
        )
        assert codes_and_lines(report) == [("ONEX102", 3)]

    def test_disallowed_builtin_in_njit_body(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            from numba import njit

            @njit(cache=True)
            def kernel(values):
                total = 0.0
                for i in range(len(values)):
                    total += abs(values[i])
                return sorted(values)

            def plain(values):
                return sorted(values)
            """,
        )
        assert codes_and_lines(report) == [("ONEX103", 8)]

    def test_vectorized_reduction_in_njit_body(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            import numpy as np
            from numba import njit

            @njit(cache=True)
            def kernel(x, y):
                out = np.empty(x.shape[0])
                acc = np.sum(x)
                dot = x.dot(y)
                return acc + dot + sum(out)

            def reference(x):
                return np.sum(x)
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX104", 7),
            ("ONEX104", 8),
            ("ONEX104", 9),
        ]


# ----------------------------------------------------------------------
# ONEX2xx — backend-dispatch enforcement
# ----------------------------------------------------------------------
class TestBackendDispatch:
    def test_kernels_numba_imports_flagged_outside_distances(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/fastpath.py",
            """\
            import repro.distances.kernels_numba
            from repro.distances import kernels_numba
            from repro.distances.kernels_numba import dtw_squared
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX201", 1),
            ("ONEX201", 2),
            ("ONEX201", 3),
        ]

    def test_distances_package_itself_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/backend2.py",
            """\
            from repro.distances import kernels_numba
            from repro.distances.batch import _dtw_batch_numpy
            """,
        )
        assert report.diagnostics == []

    def test_private_kernel_import_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances.dtw import _dtw_squared

            def refine(x, y):
                return _dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert codes_and_lines(report) == [("ONEX202", 1)]

    def test_private_kernel_attribute_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances import dtw

            def refine(x, y):
                return dtw._dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert codes_and_lines(report) == [("ONEX202", 4)]

    def test_public_wrapper_usage_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances.backend import get_backend
            from repro.distances.dtw import dtw

            def refine(x, y):
                return get_backend().dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert report.diagnostics == []

    def test_build_kernel_deref_flagged_outside_engine(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/fastbuild.py",
            """\
            from repro.distances.backend import get_backend

            def assign(view, order, threshold):
                backend = get_backend()
                kernel = backend.build_assign
                return kernel(
                    view.flat_windows,
                    view.window_rows,
                    view.sq_norms(),
                    order,
                    threshold,
                )
            """,
        )
        assert codes_and_lines(report) == [("ONEX203", 5)]

    def test_build_kernel_deref_allowed_in_engine_and_distances(
        self, tmp_path
    ):
        snippet = """\
            from repro.distances.backend import get_backend

            def dispatch():
                return get_backend().build_assign
            """
        for relpath in ("core/grouping.py", "distances/engine_glue.py"):
            report = lint_snippet(tmp_path, relpath, snippet)
            assert report.diagnostics == []
            (tmp_path / "repro" / relpath).unlink()


# ----------------------------------------------------------------------
# ONEX3xx — the lockset race detector
# ----------------------------------------------------------------------
_LOCKED_CLASS_HEADER = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock
"""


class TestLockset:
    def test_unguarded_read_and_write_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def peek(self, key):
        return self._items.get(key)

    def reset(self):
        self._items = {}
""",
        )
        assert codes_and_lines(report) == [
            ("ONEX301", 9),
            ("ONEX301", 12),
        ]
        assert "read here without holding" in report.diagnostics[0].message
        assert "written here without holding" in report.diagnostics[1].message

    def test_with_lock_access_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def get(self, key):
        with self._lock:
            return self._items.get(key)
""",
        )
        assert report.diagnostics == []

    def test_constructor_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def __init__(self):  # a second ctor-ish path for the test
        self._items = {}
""",
        )
        assert report.diagnostics == []

    def test_helper_with_all_locked_callers_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._evict()

    def _evict(self):
        while len(self._items) > 8:
            self._items.popitem()
""",
        )
        assert report.diagnostics == []

    def test_helper_called_without_lock_flags_call_site(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._evict()

    def trim(self):
        self._evict()

    def _evict(self):
        while len(self._items) > 8:
            self._items.popitem()
""",
        )
        assert codes_and_lines(report) == [("ONEX302", 14)]
        assert "_evict" in report.diagnostics[0].message

    def test_unknown_lock_name_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            """\
            class Broken:
                def __init__(self):
                    self._items = {}  # guarded-by: _missing_lock
            """,
        )
        assert codes_and_lines(report) == [("ONEX303", 3)]

    def test_dangling_annotation_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            """\
            # guarded-by: _lock
            VALUE = 3
            """,
        )
        assert codes_and_lines(report) == [("ONEX303", 1)]

    def test_dataclass_field_annotation(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/bucketlike.py",
            """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Bucket:
                _payload_lock: threading.Lock = field(
                    default_factory=threading.Lock
                )
                _stacks: dict = field(
                    default_factory=dict  # guarded-by: _payload_lock
                )

                def stack(self, radius):
                    return self._stacks.get(radius)
            """,
        )
        assert codes_and_lines(report) == [("ONEX301", 14)]

    def test_suppression_is_counted_not_reported(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def peek(self, key):
        return self._items.get(key)  # onex: ignore[ONEX301]
""",
        )
        assert report.diagnostics == []
        assert [(d.code, d.line) for d in report.suppressed] == [
            ("ONEX301", 9)
        ]


# ----------------------------------------------------------------------
# ONEX4xx — persistence atomicity
# ----------------------------------------------------------------------
class TestPersistenceAtomicity:
    def test_raw_writes_flagged_in_scoped_packages(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/compactor.py",
            """\
            import os
            import shutil
            import numpy as np

            def fold(path, arrays):
                np.save(path + "/a.npy", arrays[0])
                with open(path + "/manifest.json", "w") as handle:
                    handle.write("{}")
                shutil.move(path + ".tmp", path)
                os.replace(path + ".new", path)
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX401", 6),
            ("ONEX401", 7),
            ("ONEX401", 9),
            ("ONEX401", 10),
        ]

    def test_blessed_persistence_module_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/persistence.py",
            """\
            import os

            def atomic_swap(tmp, target):
                os.replace(tmp, target)
            """,
        )
        assert report.diagnostics == []

    def test_reads_and_out_of_scope_modules_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/loader2.py",
            """\
            def read(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()
            """,
        )
        assert report.diagnostics == []
        report = lint_snippet(
            tmp_path,
            "bench/reporting2.py",
            """\
            def write(path, payload):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            """,
        )
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# ONEX3xx — transitive lock-context propagation (the call-graph rebase)
# ----------------------------------------------------------------------
class TestLocksetTransitive:
    def test_two_hop_lock_inheritance_is_clean(self, tmp_path):
        # put -> _h1 -> _h2: the lock is taken two frames above the
        # access. The one-level detector this replaces flagged _h2.
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._h1(key, value)

    def _h1(self, key, value):
        self._h2(key, value)

    def _h2(self, key, value):
        self._items[key] = value
""",
        )
        assert report.diagnostics == []

    def test_transitive_unlocked_chain_flags_the_call_site(self, tmp_path):
        # Same chain plus one unlocked entry (sweep -> _h2): the defect
        # is sweep's call site, which the one-level detector provably
        # missed (it neither saw put->_h1->_h2 as covered nor sweep's
        # chain as the uncovered one).
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._h1(key, value)

    def _h1(self, key, value):
        self._h2(key, value)

    def _h2(self, key, value):
        self._items[key] = value

    def sweep(self):
        self._h2("k", None)
""",
        )
        assert codes_and_lines(report) == [("ONEX302", 19)]
        assert "_h2" in report.diagnostics[0].message

    def test_mutually_recursive_helpers_terminate(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def tick(self):
        with self._lock:
            self._ping()

    def _ping(self):
        self._pong()

    def _pong(self):
        self._items.clear()
        self._ping()
""",
        )
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# ONEX5xx — async safety
# ----------------------------------------------------------------------
class TestAsyncSafety:
    def test_direct_blocking_call_in_coroutine(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/loopy.py",
            """\
            import time

            async def handle(request):
                time.sleep(0.1)
                return request
            """,
        )
        assert codes_and_lines(report) == [("ONEX501", 4)]
        assert "handle" in report.diagnostics[0].message

    def test_blocking_call_two_helpers_down(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/loopy.py",
            """\
            import subprocess

            async def handle(request):
                return prepare(request)

            def prepare(request):
                return launch(request)

            def launch(request):
                return subprocess.run(["echo", str(request)])
            """,
        )
        assert codes_and_lines(report) == [("ONEX501", 10)]
        message = report.diagnostics[0].message
        assert "handle" in message and "launch" in message

    def test_future_result_in_coroutine_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/loopy.py",
            """\
            async def gather(future):
                return future.result()
            """,
        )
        assert codes_and_lines(report) == [("ONEX501", 2)]

    def test_run_in_executor_reference_is_clean(self, tmp_path):
        # The callable is passed by reference, not called on the loop.
        report = lint_snippet(
            tmp_path,
            "serve/loopy.py",
            """\
            import asyncio
            import time

            def blocking_io():
                time.sleep(1.0)

            async def handle(request):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, blocking_io)
            """,
        )
        assert report.diagnostics == []

    def test_outside_serve_is_not_this_rules_business(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/offline.py",
            """\
            import time

            async def crunch():
                time.sleep(1.0)
            """,
        )
        assert "ONEX501" not in codes(report)

    def test_suppression_is_respected(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/loopy.py",
            """\
            import time

            async def handle(request):
                time.sleep(0.001)  # onex: ignore[ONEX501]
            """,
        )
        assert report.diagnostics == []
        assert [d.code for d in report.suppressed] == ["ONEX501"]

    def test_await_under_threading_lock_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/locky.py",
            """\
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self, worker):
                    with self._lock:
                        await worker.request({"op": "ping"})
            """,
        )
        assert codes_and_lines(report) == [("ONEX502", 9)]
        assert "_lock" in report.diagnostics[0].message

    def test_asyncio_lock_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/locky.py",
            """\
            import asyncio

            class Shared:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def update(self, worker):
                    async with self._lock:
                        await worker.request({"op": "ping"})
            """,
        )
        assert report.diagnostics == []

    def test_unbounded_shard_rpc_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cluster/rpc.py",
            """\
            async def forward(worker, payload):
                return await worker.request(payload)
            """,
        )
        assert codes_and_lines(report) == [("ONEX504", 2)]
        assert "wait_for" in report.diagnostics[0].message

    def test_wait_for_wrapped_shard_rpc_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cluster/rpc.py",
            """\
            import asyncio

            async def forward(worker, payload, budget):
                return await asyncio.wait_for(
                    worker.request(payload), timeout=budget.remaining_seconds()
                )
            """,
        )
        assert report.diagnostics == []

    def test_wait_for_around_other_work_does_not_bless_rpc(self, tmp_path):
        # The RPC must be the awaitable *inside* wait_for; a wait_for
        # elsewhere in the function bounds nothing for this call.
        report = lint_snippet(
            tmp_path,
            "serve/cluster/rpc.py",
            """\
            import asyncio

            async def forward(worker, payload):
                await asyncio.wait_for(asyncio.sleep(0), timeout=1)
                return await worker.request(payload)
            """,
        )
        assert codes_and_lines(report) == [("ONEX504", 5)]

    def test_shard_rpc_rule_scoped_to_cluster_package(self, tmp_path):
        # `.request(...)` outside serve/cluster/ (e.g. an HTTP client in
        # a script-facing helper) is not a shard RPC.
        report = lint_snippet(
            tmp_path,
            "serve/client.py",
            """\
            async def fetch(session, url):
                return await session.request(url)
            """,
        )
        assert "ONEX504" not in codes(report)


# ----------------------------------------------------------------------
# ONEX6xx — determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_set_iteration_flagged_in_core(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/merge2.py",
            """\
            def merge(ids_a, ids_b):
                out = []
                for item in set(ids_a) | set(ids_b):
                    out.append(item)
                return out
            """,
        )
        assert codes_and_lines(report) == [("ONEX601", 3)]

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/merge2.py",
            """\
            def merge(ids_a, ids_b):
                return [x for x in sorted(set(ids_a) | set(ids_b))]
            """,
        )
        assert report.diagnostics == []

    def test_set_bound_local_tracked_and_cleared_by_sorted(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/pick.py",
            """\
            def pick(rows):
                chosen = set(rows)
                for row in chosen:
                    yield row

            def pick_sorted(rows):
                chosen = set(rows)
                chosen = sorted(chosen)
                for row in chosen:
                    yield row
            """,
        )
        assert codes_and_lines(report) == [("ONEX601", 3)]

    def test_membership_test_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/member.py",
            """\
            def keep(rows, wanted):
                allowed = set(wanted)
                return [row for row in rows if row in allowed]
            """,
        )
        assert report.diagnostics == []

    def test_unseeded_rng_return_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/jitter.py",
            """\
            import random

            def pick_order(n):
                return random.sample(range(n), n)
            """,
        )
        assert codes_and_lines(report) == [("ONEX602", 4)]

    def test_seeded_generator_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/jitter.py",
            """\
            import numpy as np

            def pick_order(n, seed):
                rng = np.random.default_rng(seed)
                return rng.permutation(n)
            """,
        )
        assert report.diagnostics == []

    def test_elapsed_time_idiom_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/warm.py",
            """\
            import time

            def warmup_probe(kernel):
                started = time.perf_counter()
                kernel()
                return time.perf_counter() - started
            """,
        )
        assert report.diagnostics == []

    def test_timing_keyword_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/pack2.py",
            """\
            import time

            def pack(payload, t0):
                return dict(
                    payload=payload,
                    pack_seconds=time.perf_counter() - t0,
                )
            """,
        )
        assert report.diagnostics == []

    def test_unsorted_listdir_flagged_and_sorted_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/sweep2.py",
            """\
            import os

            def entries(path):
                return os.listdir(path)

            def entries_sorted(path):
                return sorted(os.listdir(path))
            """,
        )
        assert codes_and_lines(report) == [("ONEX603", 4)]

    def test_determinism_rules_stay_out_of_serve_helpers(self, tmp_path):
        # Only router.py is merge-critical in serve/; other serve
        # modules iterate sets for presentation and are out of scope.
        report = lint_snippet(
            tmp_path,
            "serve/present.py",
            """\
            def tags(items):
                return [t for t in set(items)]
            """,
        )
        assert "ONEX601" not in codes(report)


# ----------------------------------------------------------------------
# ONEX7xx — resource lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_shared_memory_never_closed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/shmuser.py",
            """\
            from multiprocessing import shared_memory

            def attach(name):
                shm = shared_memory.SharedMemory(name=name)
                return bytes(shm.buf)
            """,
        )
        assert codes_and_lines(report) == [("ONEX701", 4)]
        assert "never close" in report.diagnostics[0].message

    def test_close_outside_finally_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/shmuser.py",
            """\
            from multiprocessing import shared_memory

            def attach(name):
                shm = shared_memory.SharedMemory(name=name)
                data = bytes(shm.buf)
                shm.close()
                return data
            """,
        )
        assert codes_and_lines(report) == [("ONEX701", 4)]
        assert "finally" in report.diagnostics[0].message

    def test_created_block_without_unlink_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/shmuser.py",
            """\
            from multiprocessing import shared_memory

            def make(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    return shm.name
                finally:
                    shm.close()
            """,
        )
        assert codes_and_lines(report) == [("ONEX701", 4)]
        assert "unlink" in report.diagnostics[0].message

    def test_full_lifecycle_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/shmuser.py",
            """\
            from multiprocessing import shared_memory

            def roundtrip(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    shm.buf[0] = 1
                    return bytes(shm.buf)
                except BaseException:
                    shm.unlink()
                    raise
                finally:
                    shm.close()
            """,
        )
        assert report.diagnostics == []

    def test_lifecycle_rules_cover_the_tests_tree(self, tmp_path):
        # ONEX7xx runs on every tree: a leaked block in a test leaks
        # /dev/shm all the same.
        target = tmp_path / "tests" / "test_leak.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def probe(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return bytes(shm.buf)\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path])
        assert [d.code for d in report.diagnostics] == ["ONEX701"]

    def test_src_only_rules_skip_the_benchmarks_tree(self, tmp_path):
        # The same snippet inside repro/core/ trips ONEX601; under
        # benchmarks/ the determinism family is scoped out.
        snippet = (
            "def merge(ids):\n"
            "    return [x for x in set(ids)]\n"
        )
        target = tmp_path / "benchmarks" / "bench_merge.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(snippet, encoding="utf-8")
        report = run_lint([tmp_path])
        assert report.diagnostics == []

    def test_executor_without_shutdown_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/poolish.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            def fire(jobs):
                pool = ThreadPoolExecutor(max_workers=2)
                return [pool.submit(job) for job in jobs]
            """,
        )
        assert codes_and_lines(report) == [("ONEX702", 4)]

    def test_with_managed_executor_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/poolish.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            def fire(jobs):
                with ThreadPoolExecutor(max_workers=2) as pool:
                    return [f.result() for f in map(pool.submit, jobs)]
            """,
        )
        assert report.diagnostics == []

    def test_self_pool_with_class_shutdown_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/poolish.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            class Service:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)

                def close(self):
                    self._pool.shutdown(wait=True)
            """,
        )
        assert report.diagnostics == []

    def test_returning_with_handle_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/reader2.py",
            """\
            def acquire(path):
                with open(path, "rb") as handle:
                    return handle
            """,
        )
        assert codes_and_lines(report) == [("ONEX703", 3)]

    def test_reading_inside_with_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/reader2.py",
            """\
            import json

            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return json.load(handle)
            """,
        )
        assert report.diagnostics == []
