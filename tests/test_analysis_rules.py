"""Fixture-based tests for the four ``onex lint`` rule families.

Each case writes a small snippet into a fake ``repro`` package tree
(so path-scoped rules see the same layout as the real one) and asserts
the exact ``(code, line)`` pairs the checker reports.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import run_lint


def lint_snippet(tmp_path: Path, relpath: str, source: str):
    """Lint one snippet placed at ``repro/<relpath>`` under ``tmp_path``."""
    target = tmp_path / "repro" / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path])


def codes_and_lines(report) -> list[tuple[str, int]]:
    return [(d.code, d.line) for d in report.diagnostics]


def codes(report) -> set[str]:
    return {d.code for d in report.diagnostics}


# ----------------------------------------------------------------------
# ONEX1xx — kernel numeric purity
# ----------------------------------------------------------------------
class TestNumericPurity:
    def test_float32_dtype_flagged_in_distances(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/badkernel.py",
            """\
            import numpy as np

            def cast(x):
                return x.astype(np.float32)

            def build(n):
                return np.zeros(n, dtype="float32")
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX101", 4),
            ("ONEX101", 7),
        ]

    def test_float32_outside_distances_is_not_this_rules_business(
        self, tmp_path
    ):
        report = lint_snippet(
            tmp_path,
            "viz/render.py",
            """\
            import numpy as np

            def to_pixels(x):
                return x.astype(np.float32)
            """,
        )
        assert "ONEX101" not in codes(report)

    def test_fastmath_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            from numba import njit

            @njit(cache=True, fastmath=True)
            def kernel(x):
                return x

            @njit(cache=True, fastmath=False)
            def careful(x):
                return x
            """,
        )
        assert codes_and_lines(report) == [("ONEX102", 3)]

    def test_disallowed_builtin_in_njit_body(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            from numba import njit

            @njit(cache=True)
            def kernel(values):
                total = 0.0
                for i in range(len(values)):
                    total += abs(values[i])
                return sorted(values)

            def plain(values):
                return sorted(values)
            """,
        )
        assert codes_and_lines(report) == [("ONEX103", 8)]

    def test_vectorized_reduction_in_njit_body(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/jit.py",
            """\
            import numpy as np
            from numba import njit

            @njit(cache=True)
            def kernel(x, y):
                out = np.empty(x.shape[0])
                acc = np.sum(x)
                dot = x.dot(y)
                return acc + dot + sum(out)

            def reference(x):
                return np.sum(x)
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX104", 7),
            ("ONEX104", 8),
            ("ONEX104", 9),
        ]


# ----------------------------------------------------------------------
# ONEX2xx — backend-dispatch enforcement
# ----------------------------------------------------------------------
class TestBackendDispatch:
    def test_kernels_numba_imports_flagged_outside_distances(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/fastpath.py",
            """\
            import repro.distances.kernels_numba
            from repro.distances import kernels_numba
            from repro.distances.kernels_numba import dtw_squared
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX201", 1),
            ("ONEX201", 2),
            ("ONEX201", 3),
        ]

    def test_distances_package_itself_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "distances/backend2.py",
            """\
            from repro.distances import kernels_numba
            from repro.distances.batch import _dtw_batch_numpy
            """,
        )
        assert report.diagnostics == []

    def test_private_kernel_import_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances.dtw import _dtw_squared

            def refine(x, y):
                return _dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert codes_and_lines(report) == [("ONEX202", 1)]

    def test_private_kernel_attribute_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances import dtw

            def refine(x, y):
                return dtw._dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert codes_and_lines(report) == [("ONEX202", 4)]

    def test_public_wrapper_usage_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/hotloop.py",
            """\
            from repro.distances.backend import get_backend
            from repro.distances.dtw import dtw

            def refine(x, y):
                return get_backend().dtw_squared(x, y, 1, float("inf"))
            """,
        )
        assert report.diagnostics == []

    def test_build_kernel_deref_flagged_outside_engine(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/fastbuild.py",
            """\
            from repro.distances.backend import get_backend

            def assign(view, order, threshold):
                backend = get_backend()
                kernel = backend.build_assign
                return kernel(
                    view.flat_windows,
                    view.window_rows,
                    view.sq_norms(),
                    order,
                    threshold,
                )
            """,
        )
        assert codes_and_lines(report) == [("ONEX203", 5)]

    def test_build_kernel_deref_allowed_in_engine_and_distances(
        self, tmp_path
    ):
        snippet = """\
            from repro.distances.backend import get_backend

            def dispatch():
                return get_backend().build_assign
            """
        for relpath in ("core/grouping.py", "distances/engine_glue.py"):
            report = lint_snippet(tmp_path, relpath, snippet)
            assert report.diagnostics == []
            (tmp_path / "repro" / relpath).unlink()


# ----------------------------------------------------------------------
# ONEX3xx — the lockset race detector
# ----------------------------------------------------------------------
_LOCKED_CLASS_HEADER = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock
"""


class TestLockset:
    def test_unguarded_read_and_write_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def peek(self, key):
        return self._items.get(key)

    def reset(self):
        self._items = {}
""",
        )
        assert codes_and_lines(report) == [
            ("ONEX301", 9),
            ("ONEX301", 12),
        ]
        assert "read here without holding" in report.diagnostics[0].message
        assert "written here without holding" in report.diagnostics[1].message

    def test_with_lock_access_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def get(self, key):
        with self._lock:
            return self._items.get(key)
""",
        )
        assert report.diagnostics == []

    def test_constructor_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def __init__(self):  # a second ctor-ish path for the test
        self._items = {}
""",
        )
        assert report.diagnostics == []

    def test_helper_with_all_locked_callers_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._evict()

    def _evict(self):
        while len(self._items) > 8:
            self._items.popitem()
""",
        )
        assert report.diagnostics == []

    def test_helper_called_without_lock_flags_call_site(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._evict()

    def trim(self):
        self._evict()

    def _evict(self):
        while len(self._items) > 8:
            self._items.popitem()
""",
        )
        assert codes_and_lines(report) == [("ONEX302", 14)]
        assert "_evict" in report.diagnostics[0].message

    def test_unknown_lock_name_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            """\
            class Broken:
                def __init__(self):
                    self._items = {}  # guarded-by: _missing_lock
            """,
        )
        assert codes_and_lines(report) == [("ONEX303", 3)]

    def test_dangling_annotation_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            """\
            # guarded-by: _lock
            VALUE = 3
            """,
        )
        assert codes_and_lines(report) == [("ONEX303", 1)]

    def test_dataclass_field_annotation(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/bucketlike.py",
            """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Bucket:
                _payload_lock: threading.Lock = field(
                    default_factory=threading.Lock
                )
                _stacks: dict = field(
                    default_factory=dict  # guarded-by: _payload_lock
                )

                def stack(self, radius):
                    return self._stacks.get(radius)
            """,
        )
        assert codes_and_lines(report) == [("ONEX301", 14)]

    def test_suppression_is_counted_not_reported(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/cachelike.py",
            _LOCKED_CLASS_HEADER
            + """\

    def peek(self, key):
        return self._items.get(key)  # onex: ignore[ONEX301]
""",
        )
        assert report.diagnostics == []
        assert [(d.code, d.line) for d in report.suppressed] == [
            ("ONEX301", 9)
        ]


# ----------------------------------------------------------------------
# ONEX4xx — persistence atomicity
# ----------------------------------------------------------------------
class TestPersistenceAtomicity:
    def test_raw_writes_flagged_in_scoped_packages(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/compactor.py",
            """\
            import os
            import shutil
            import numpy as np

            def fold(path, arrays):
                np.save(path + "/a.npy", arrays[0])
                with open(path + "/manifest.json", "w") as handle:
                    handle.write("{}")
                shutil.move(path + ".tmp", path)
                os.replace(path + ".new", path)
            """,
        )
        assert codes_and_lines(report) == [
            ("ONEX401", 6),
            ("ONEX401", 7),
            ("ONEX401", 9),
            ("ONEX401", 10),
        ]

    def test_blessed_persistence_module_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/persistence.py",
            """\
            import os

            def atomic_swap(tmp, target):
                os.replace(tmp, target)
            """,
        )
        assert report.diagnostics == []

    def test_reads_and_out_of_scope_modules_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/loader2.py",
            """\
            def read(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()
            """,
        )
        assert report.diagnostics == []
        report = lint_snippet(
            tmp_path,
            "bench/reporting2.py",
            """\
            def write(path, payload):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            """,
        )
        assert report.diagnostics == []
