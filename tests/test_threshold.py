"""Tests for Algorithm 2.C: threshold adaptation without rebuilding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.threshold import adapt_bucket, merge_bucket, split_bucket
from repro.exceptions import ThresholdError


def _membership(bucket):
    return sorted(ssid for group in bucket.groups for ssid in group.member_ids)


@pytest.fixture
def bucket(small_index):
    return small_index.rspace.bucket(12)


class TestDispatch:
    def test_same_threshold_returns_same_object(self, small_index, bucket):
        out = adapt_bucket(
            bucket, small_index.dataset, 0.2, 0.2, np.random.default_rng(0)
        )
        assert out is bucket

    def test_smaller_threshold_splits(self, small_index, bucket):
        out = adapt_bucket(
            bucket, small_index.dataset, 0.2, 0.05, np.random.default_rng(0)
        )
        assert out.n_groups >= bucket.n_groups

    def test_larger_threshold_merges(self, small_index, bucket):
        out = adapt_bucket(
            bucket, small_index.dataset, 0.2, 0.6, np.random.default_rng(0)
        )
        assert out.n_groups <= bucket.n_groups

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_threshold(self, small_index, bucket, bad):
        with pytest.raises(ThresholdError):
            adapt_bucket(
                bucket, small_index.dataset, 0.2, bad, np.random.default_rng(0)
            )


class TestSplit:
    def test_membership_preserved(self, small_index, bucket):
        out = split_bucket(
            bucket, small_index.dataset, 0.05, np.random.default_rng(0)
        )
        assert _membership(out) == _membership(bucket)

    def test_groups_only_split_never_cross(self, small_index, bucket):
        """Every new group's members all come from one original group."""
        out = split_bucket(
            bucket, small_index.dataset, 0.05, np.random.default_rng(0)
        )
        origin = {
            ssid: index
            for index, group in enumerate(bucket.groups)
            for ssid in group.member_ids
        }
        for group in out.groups:
            origins = {origin[ssid] for ssid in group.member_ids}
            assert len(origins) == 1

    def test_length_preserved(self, small_index, bucket):
        out = split_bucket(
            bucket, small_index.dataset, 0.05, np.random.default_rng(0)
        )
        assert out.length == bucket.length


class TestMerge:
    def test_membership_preserved(self, small_index, bucket):
        out = merge_bucket(bucket, small_index.dataset, 0.2, 0.5)
        assert _membership(out) == _membership(bucket)

    def test_huge_threshold_merges_to_one(self, small_index, bucket):
        out = merge_bucket(bucket, small_index.dataset, 0.2, 50.0)
        assert out.n_groups == 1

    def test_margin_zero_merges_only_identical_reps(self, small_index, bucket):
        out = merge_bucket(bucket, small_index.dataset, 0.2, 0.2)
        # Margin 0: only groups with Dc == 0 may merge.
        assert out.n_groups <= bucket.n_groups

    def test_cascading_transitive_merges(self, small_index):
        """Groups A-B close and B-C close (after merge) must all unite even
        if A-C alone would not have qualified."""
        from repro.core.group import SimilarityGroup
        from repro.core.rspace import LengthBucket
        from repro.data.dataset import Dataset
        from repro.data.timeseries import SubsequenceId

        # Three singleton groups at positions 0, 1, 2 on a flat line.
        values = [np.full(4, 0.0), np.full(4, 1.0), np.full(4, 2.0)]
        dataset = Dataset([np.concatenate([v, v]) for v in values])
        groups = []
        for p, v in enumerate(values):
            group = SimilarityGroup(4, SubsequenceId(p, 0, 4), v)
            group.finalize([v], envelope_radius=1)
            groups.append(group)
        bucket = LengthBucket(length=4, groups=groups)
        # Dc(0,1) = Dc(1,2) = 1.0 normalized; Dc(0,2) = 2.0.
        # Margin 1.2 merges 0-1; merged rep at 0.5 is 1.5 from group 2 —
        # still > 1.2, so the cascade correctly stops at two groups.
        out = merge_bucket(bucket, dataset, st_old=0.0, st_new=1.2)
        assert out.n_groups == 2
        # Margin 1.6: after merging 0-1 (rep 0.5), group 2 at distance
        # 1.5 <= 1.6 cascades in.
        out = merge_bucket(bucket, dataset, st_old=0.0, st_new=1.6)
        assert out.n_groups == 1

    def test_merge_requires_nondecreasing_threshold(self, small_index, bucket):
        with pytest.raises(ThresholdError):
            merge_bucket(bucket, small_index.dataset, 0.2, 0.1)

    def test_merged_representative_is_weighted_mean(self, small_index, bucket):
        out = merge_bucket(bucket, small_index.dataset, 0.2, 50.0)
        merged = out.groups[0]
        values = [small_index.dataset.subsequence(s) for s in merged.member_ids]
        assert np.allclose(merged.representative, np.mean(values, axis=0))
