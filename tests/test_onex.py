"""Tests for the OnexIndex facade (build / query / adapt / stats)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.onex import OnexIndex, default_length_grid
from repro.data.dataset import Dataset
from repro.data.synthetic import make_dataset
from repro.exceptions import QueryError, ThresholdError


class TestDefaultLengthGrid:
    def test_covers_bottom_to_top(self, small_dataset):
        grid = default_length_grid(small_dataset)
        assert grid[0] >= 4
        assert grid[-1] == small_dataset.min_length
        assert grid == sorted(set(grid))

    def test_short_series_enumerates_all(self):
        dataset = Dataset([[0.1] * 8, [0.2] * 8])
        grid = default_length_grid(dataset)
        assert grid == list(range(4, 9))


class TestBuild:
    def test_build_with_default_grid(self, small_dataset):
        index = OnexIndex.build(small_dataset, st=0.2, normalize=False)
        assert index.rspace.lengths == default_length_grid(small_dataset)
        assert index.build_seconds > 0

    def test_build_all_lengths(self):
        dataset = make_dataset("ItalyPower", n_series=6, length=12, seed=0)
        index = OnexIndex.build(dataset, st=0.2, lengths="all")
        assert index.rspace.lengths == list(range(2, 13))

    def test_build_unknown_lengths_spec(self, small_dataset):
        with pytest.raises(QueryError):
            OnexIndex.build(small_dataset, lengths="everything")

    def test_build_normalizes_by_default(self):
        dataset = make_dataset("ECG", n_series=6, length=32, seed=1)
        index = OnexIndex.build(dataset, st=0.2)
        low = min(float(s.values.min()) for s in index.dataset)
        high = max(float(s.values.max()) for s in index.dataset)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high == pytest.approx(1.0, abs=1e-12)
        assert index.value_range != (0.0, 1.0)  # original range remembered

    @pytest.mark.parametrize("bad", [0.0, -0.2, float("nan")])
    def test_build_bad_threshold(self, small_dataset, bad):
        with pytest.raises(ThresholdError):
            OnexIndex.build(small_dataset, st=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.5, -1])
    def test_build_bad_window_rejected_at_build_time(self, small_dataset, bad):
        """A bad window spec must fail the build, not the first query."""
        from repro.exceptions import DistanceError

        with pytest.raises(DistanceError):
            OnexIndex.build(small_dataset, st=0.2, window=bad, normalize=False)

    def test_build_deterministic(self, small_dataset):
        a = OnexIndex.build(small_dataset, st=0.2, seed=3, normalize=False)
        b = OnexIndex.build(small_dataset, st=0.2, seed=3, normalize=False)
        assert a.rspace.n_groups == b.rspace.n_groups

    def test_repr(self, small_index):
        text = repr(small_index)
        assert "ItalyPower" in text
        assert "ST=0.2" in text


class TestQueryFacade:
    def test_query_any_and_exact(self, small_index):
        query = small_index.dataset[1].values[0:12]
        any_match = small_index.query(query)[0]
        exact_match = small_index.query(query, length=12)[0]
        assert any_match.dtw_normalized <= 0.05
        assert exact_match.ssid.length == 12

    def test_query_unnormalized_input(self):
        dataset = make_dataset("ECG", n_series=8, length=32, seed=1)
        index = OnexIndex.build(dataset, st=0.2, lengths=[8, 16, 32])
        raw_query = dataset[0].values[0:16]  # original scale
        match = index.query(raw_query, normalized=False)[0]
        assert match.dtw_normalized <= 0.05

    def test_normalize_query_uses_stored_range(self):
        dataset = Dataset([[0.0, 10.0, 5.0, 2.0, 8.0, 1.0, 9.0, 4.0]])
        dataset = Dataset([dataset[0], dataset[0].with_values(
            [1.0, 9.0, 4.0, 3.0, 7.0, 2.0, 8.0, 5.0])])
        index = OnexIndex.build(dataset, st=0.2, lengths=[4, 8])
        normalized = index.normalize_query(np.array([0.0, 10.0]))
        assert normalized.tolist() == [0.0, 1.0]

    def test_within_facade(self, small_index):
        query = small_index.dataset[0].values[0:12]
        matches = small_index.within(query, st=0.4, length=12)
        assert matches

    def test_seasonal_facade(self, small_index):
        result = small_index.seasonal(12, series=1)
        assert result.length == 12

    def test_recommend_facade(self, small_index):
        all_recs = small_index.recommend()
        assert len(all_recs) == 3
        strict = small_index.recommend("S")
        assert len(strict) == 1
        assert strict[0].degree == "S"

    def test_degree_of_facade(self, small_index):
        degree = small_index.degree_of(0.01)
        assert degree.value == "S"


class TestWithThreshold:
    def test_same_threshold_is_identity(self, small_index):
        assert small_index.with_threshold(small_index.st) is small_index

    def test_adapted_index_queries(self, small_index):
        adapted = small_index.with_threshold(0.4)
        assert adapted.st == 0.4
        query = small_index.dataset[2].values[0:12]
        assert adapted.query(query, length=12)

    def test_adapted_membership_preserved(self, small_index):
        adapted = small_index.with_threshold(0.5)
        assert adapted.rspace.n_subsequences == small_index.rspace.n_subsequences

    def test_adapted_spspace_recomputed(self, small_index):
        adapted = small_index.with_threshold(0.4)
        assert adapted.spspace.st == 0.4

    def test_split_then_merge_roundtrip_counts(self, small_index):
        split = small_index.with_threshold(0.1)
        merged = split.with_threshold(0.4)
        assert split.rspace.n_groups >= small_index.rspace.n_groups
        assert merged.rspace.n_groups <= split.rspace.n_groups


class TestStats:
    def test_stats_fields(self, small_index, small_dataset):
        stats = small_index.stats()
        assert stats.dataset == small_dataset.name
        assert stats.n_series == len(small_dataset)
        assert stats.n_lengths == len(small_index.rspace)
        assert stats.n_groups == small_index.rspace.n_groups
        assert stats.n_subsequences == small_index.rspace.n_subsequences
        assert stats.size_mb == pytest.approx(
            stats.gti_mb + stats.lsi_mb + stats.store_mb
        )

    def test_table4_row(self, small_index):
        row = small_index.stats().as_row()
        assert row[0] == small_index.dataset.name
        assert row[1] == small_index.rspace.n_representatives
