"""Unit and property tests for the union-find structure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.unionfind import UnionFind


class TestBasics:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert len(uf) == 5

    def test_empty_is_allowed(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert len(uf) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.n_components == 3

    def test_union_same_component_is_noop(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.n_components == 3

    def test_connected_reflexive(self):
        uf = UnionFind(3)
        assert uf.connected(2, 2)

    def test_connected_after_chain(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_out_of_range(self):
        uf = UnionFind(3)
        with pytest.raises(IndexError):
            uf.find(3)
        with pytest.raises(IndexError):
            uf.find(-1)

    def test_component_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(0) == 3
        assert uf.component_size(4) == 1

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(1, 4)
        components = uf.components()
        flattened = sorted(x for component in components for x in component)
        assert flattened == list(range(6))
        assert components[0][0] == 0  # ordered by smallest member

    def test_add_creates_singleton(self):
        uf = UnionFind(2)
        index = uf.add()
        assert index == 2
        assert uf.n_components == 3
        assert uf.component_size(index) == 1

    def test_union_all_counts_merges(self):
        uf = UnionFind(4)
        merges = uf.union_all([(0, 1), (1, 0), (2, 3)])
        assert merges == 2
        assert uf.n_components == 2

    def test_iteration_yields_all_elements(self):
        uf = UnionFind(4)
        assert list(uf) == [0, 1, 2, 3]


@given(
    n=st.integers(min_value=1, max_value=40),
    pairs=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80
    ),
)
def test_property_components_match_reference(n, pairs):
    """Union-find agrees with a naive reachability reference."""
    pairs = [(a % n, b % n) for a, b in pairs]
    uf = UnionFind(n)
    uf.union_all(pairs)

    # Naive reference: repeated merging of sets.
    sets = [{i} for i in range(n)]
    for a, b in pairs:
        set_a = next(s for s in sets if a in s)
        set_b = next(s for s in sets if b in s)
        if set_a is not set_b:
            set_a |= set_b
            sets.remove(set_b)
    assert uf.n_components == len(sets)
    for group in sets:
        members = sorted(group)
        for member in members[1:]:
            assert uf.connected(members[0], member)


@given(
    n=st.integers(min_value=2, max_value=30),
    pairs=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
def test_property_component_sizes_sum_to_n(n, pairs):
    uf = UnionFind(n)
    uf.union_all([(a % n, b % n) for a, b in pairs])
    roots = {uf.find(i) for i in range(n)}
    assert sum(uf.component_size(root) for root in roots) == n
