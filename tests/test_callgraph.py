"""Unit tests for the project call-graph engine (repro.analysis.callgraph).

All fixtures are parsed from strings at fake in-package paths — the
graph never touches the filesystem — so each test controls the exact
module layout, import shape, and class hierarchy it exercises.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.callgraph import build_call_graph, module_key
from repro.analysis.source import parse_module


def _module(relpath: str, source: str):
    return parse_module(Path("/fake/repro") / relpath, source=source)


def _graph(*specs: tuple[str, str]):
    return build_call_graph([_module(rel, src) for rel, src in specs])


def _edge_pairs(graph):
    return {(edge.caller, edge.callee) for edge in graph.edges}


class TestIndexing:
    def test_functions_methods_and_async_flags(self):
        graph = _graph(
            (
                "serve/app.py",
                """\
def helper():
    pass

class Handler:
    async def respond(self):
        pass

    def sync_part(self):
        pass
""",
            )
        )
        key = "repro.serve.app"
        assert f"{key}::helper" in graph.functions
        respond = graph.functions[f"{key}::Handler.respond"]
        assert respond.is_async
        assert respond.class_name == "Handler"
        assert not graph.functions[f"{key}::Handler.sync_part"].is_async

    def test_module_key_for_package_and_loose_files(self):
        packaged = _module("core/onex.py", "x = 1\n")
        assert module_key(packaged) == "repro.core.onex"
        loose = parse_module(Path("/somewhere/tool.py"), source="x = 1\n")
        assert module_key(loose) == str(Path("/somewhere/tool.py"))

    def test_decorators_recorded_by_base_name(self):
        graph = _graph(
            (
                "core/k.py",
                """\
import functools

@functools.lru_cache(maxsize=8)
def cached():
    pass
""",
            )
        )
        info = graph.functions["repro.core.k::cached"]
        assert info.decorators == ("lru_cache",)


class TestResolution:
    def test_bare_name_resolves_to_module_function(self):
        graph = _graph(
            (
                "core/a.py",
                """\
def callee():
    pass

def caller():
    callee()
""",
            )
        )
        assert (
            "repro.core.a::caller",
            "repro.core.a::callee",
        ) in _edge_pairs(graph)

    def test_self_method_resolves_through_single_base(self):
        graph = _graph(
            (
                "core/b.py",
                """\
class Base:
    def shared(self):
        pass

class Child(Base):
    def go(self):
        self.shared()
""",
            )
        )
        assert (
            "repro.core.b::Child.go",
            "repro.core.b::Base.shared",
        ) in _edge_pairs(graph)

    def test_from_import_resolves_across_modules(self):
        graph = _graph(
            ("core/util.py", "def tool():\n    pass\n"),
            (
                "serve/user.py",
                """\
from repro.core.util import tool

def run():
    tool()
""",
            ),
        )
        assert (
            "repro.serve.user::run",
            "repro.core.util::tool",
        ) in _edge_pairs(graph)

    def test_module_alias_dotted_call_resolves(self):
        graph = _graph(
            ("core/util.py", "def tool():\n    pass\n"),
            (
                "serve/user.py",
                """\
import repro.core.util as util

def run():
    util.tool()
""",
            ),
        )
        assert (
            "repro.serve.user::run",
            "repro.core.util::tool",
        ) in _edge_pairs(graph)

    def test_local_def_shadows_import(self):
        # The nested `tool` shadows the imported one, as at runtime.
        graph = _graph(
            ("core/util.py", "def tool():\n    pass\n"),
            (
                "serve/user.py",
                """\
from repro.core.util import tool

def run():
    def tool():
        pass

    tool()
""",
            ),
        )
        pairs = _edge_pairs(graph)
        assert (
            "repro.serve.user::run",
            "repro.serve.user::run.<locals>.tool",
        ) in pairs
        assert (
            "repro.serve.user::run",
            "repro.core.util::tool",
        ) not in pairs

    def test_unresolved_call_is_kept_as_external(self):
        graph = _graph(
            (
                "serve/user.py",
                """\
import time

def nap():
    time.sleep(1)
""",
            )
        )
        externals = graph.externals("repro.serve.user::nap")
        assert [external.name for external in externals] == ["time.sleep"]


class TestLockContext:
    def test_edges_carry_lexically_held_locks(self):
        graph = _graph(
            (
                "serve/c.py",
                """\
class Cache:
    def put(self):
        with self._lock:
            self._evict()
        self._stat()

    def _evict(self):
        pass

    def _stat(self):
        pass
""",
            )
        )
        by_callee = {
            edge.callee.rsplit(".", 1)[-1]: edge for edge in graph.edges
        }
        assert by_callee["_evict"].held_locks == frozenset({"_lock"})
        assert by_callee["_stat"].held_locks == frozenset()


class TestReachability:
    def test_cycles_terminate_and_are_fully_reachable(self):
        graph = _graph(
            (
                "core/cyc.py",
                """\
def a():
    b()

def b():
    a()
    c()

def c():
    pass
""",
            )
        )
        key = "repro.core.cyc"
        reached = graph.reachable_from([f"{key}::a"])
        assert reached == {f"{key}::a", f"{key}::b", f"{key}::c"}

    def test_follow_predicate_prunes_edges(self):
        graph = _graph(
            (
                "core/pr.py",
                """\
def a():
    b()

def b():
    c()

def c():
    pass
""",
            )
        )
        key = "repro.core.pr"
        reached = graph.reachable_from(
            [f"{key}::a"],
            follow=lambda edge: not edge.callee.endswith("::c"),
        )
        assert reached == {f"{key}::a", f"{key}::b"}
