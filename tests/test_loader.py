"""Tests for the UCR-format loader/saver."""

from __future__ import annotations

import pytest

from repro.data.dataset import Dataset
from repro.data.loader import load_ucr_file, save_ucr_file
from repro.data.timeseries import TimeSeries
from repro.exceptions import DataError


def test_load_comma_separated(tmp_path):
    path = tmp_path / "data.txt"
    path.write_text("1,0.1,0.2,0.3\n2,0.4,0.5,0.6\n")
    dataset = load_ucr_file(path)
    assert len(dataset) == 2
    assert dataset[0].label == 1
    assert dataset[0].values.tolist() == [0.1, 0.2, 0.3]
    assert dataset.name == "data"


def test_load_whitespace_separated(tmp_path):
    path = tmp_path / "ws.txt"
    path.write_text("1 0.1 0.2\n-1 0.3 0.4\n")
    dataset = load_ucr_file(path)
    assert dataset[1].label == -1
    assert dataset[1].values.tolist() == [0.3, 0.4]


def test_load_without_labels(tmp_path):
    path = tmp_path / "nolabel.txt"
    path.write_text("0.1,0.2,0.3\n")
    dataset = load_ucr_file(path, has_labels=False)
    assert dataset[0].label is None
    assert len(dataset[0]) == 3


def test_load_skips_blank_and_comment_lines(tmp_path):
    path = tmp_path / "sparse.txt"
    path.write_text("# header\n\n1,0.5,0.6\n\n")
    dataset = load_ucr_file(path)
    assert len(dataset) == 1


def test_load_max_series(tmp_path):
    path = tmp_path / "many.txt"
    path.write_text("".join(f"1,{i}.0,{i}.5\n" for i in range(10)))
    dataset = load_ucr_file(path, max_series=3)
    assert len(dataset) == 3


def test_load_scientific_notation_labels(tmp_path):
    # The 2018 UCR archive writes labels like "1.0000000e+00".
    path = tmp_path / "sci.txt"
    path.write_text("1.0000000e+00,0.1,0.2\n")
    dataset = load_ucr_file(path)
    assert dataset[0].label == 1


def test_load_rejects_short_line(tmp_path):
    path = tmp_path / "short.txt"
    path.write_text("1\n")
    with pytest.raises(DataError, match="expected a label"):
        load_ucr_file(path)


def test_load_rejects_bad_label(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("abc,0.1,0.2\n")
    with pytest.raises(DataError, match="label"):
        load_ucr_file(path)


def test_load_rejects_bad_value(tmp_path):
    path = tmp_path / "badval.txt"
    path.write_text("1,0.1,oops\n")
    with pytest.raises(DataError, match="non-numeric"):
        load_ucr_file(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# only comments\n")
    with pytest.raises(DataError, match="no series"):
        load_ucr_file(path)


def test_round_trip_preserves_values_and_labels(tmp_path):
    original = Dataset(
        [
            TimeSeries([0.25, 0.5, 0.75], name="a", label=1),
            TimeSeries([1.0, 2.0, 3.0], name="b", label=-1),
        ],
        name="rt",
    )
    path = tmp_path / "rt.txt"
    save_ucr_file(original, path)
    loaded = load_ucr_file(path, name="rt")
    assert len(loaded) == 2
    for before, after in zip(original, loaded, strict=True):
        assert after.values.tolist() == before.values.tolist()
        assert after.label == before.label


def test_save_without_labels(tmp_path):
    dataset = Dataset([TimeSeries([1.0, 2.0])])
    path = tmp_path / "plain.txt"
    save_ucr_file(dataset, path, with_labels=False)
    assert path.read_text().strip() == "1,2"


def test_save_defaults_missing_label_to_zero(tmp_path):
    dataset = Dataset([TimeSeries([1.0, 2.0])])
    path = tmp_path / "zero.txt"
    save_ucr_file(dataset, path)
    assert path.read_text().startswith("0,")
