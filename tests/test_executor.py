"""Tests for the query-language executor bound to an index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import Match, SeasonalResult, ThresholdRecommendation
from repro.exceptions import QueryError
from repro.query.executor import QueryExecutor


@pytest.fixture
def executor(small_index) -> QueryExecutor:
    return QueryExecutor(small_index, normalized_inputs=True)


class TestSequenceResolution:
    def test_registered_sequence(self, executor, small_index):
        executor.register_sequence("probe", small_index.dataset[0].values[0:12])
        matches = executor.execute("OUTPUT X FROM D WHERE seq = probe MATCH = Exact(12)")
        assert matches
        assert isinstance(matches[0], Match)

    def test_series_by_name(self, executor, small_index):
        name = small_index.dataset[1].name
        matches = executor.execute(f"OUTPUT X FROM D WHERE seq = {name}")
        assert matches

    def test_series_by_positional_reference(self, executor):
        matches = executor.execute("OUTPUT X FROM D WHERE seq = X2")
        assert matches

    def test_registered_wins_over_series(self, executor, small_index):
        # Register a sequence whose name collides with a series name.
        name = small_index.dataset[0].name
        executor.register_sequence(name, small_index.dataset[3].values[0:6])
        matches = executor.execute(f"OUTPUT X FROM D WHERE seq = {name}")
        # Resolved to the registered length-6 sequence, not the series.
        assert matches[0].ssid.length in small_index.rspace.lengths

    def test_unknown_sequence(self, executor):
        with pytest.raises(QueryError, match="unknown sequence"):
            executor.execute("OUTPUT X FROM D WHERE seq = nobody")

    def test_empty_name_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.register_sequence("", [1.0, 2.0])

    def test_unnormalized_inputs_are_scaled(self, small_index):
        executor = QueryExecutor(small_index, normalized_inputs=False)
        # Register a raw-scale sequence: should be normalized before search.
        executor.register_sequence("raw", np.linspace(0.0, 1.0, 12))
        matches = executor.execute("OUTPUT X FROM D WHERE seq = raw MATCH = Exact(12)")
        assert matches


class TestQueryClasses:
    def test_q1_best_match_with_k(self, executor):
        matches = executor.execute("OUTPUT X FROM D WHERE seq = X0, k = 3 MATCH = Exact(12)")
        assert 1 <= len(matches) <= 3

    def test_q1_range_form(self, executor):
        matches = executor.execute(
            "OUTPUT X FROM D WHERE Sim <= 0.4, seq = X0 MATCH = Exact(12)"
        )
        assert all(isinstance(m, Match) for m in matches)

    def test_q2_user_driven(self, executor):
        result = executor.execute(
            "OUTPUT SeasonalSim FROM D WHERE seq = X1 MATCH = Exact(12)"
        )
        assert isinstance(result, SeasonalResult)
        assert result.series == 1

    def test_q2_data_driven(self, executor):
        result = executor.execute(
            "OUTPUT SeasonalSim FROM D WHERE seq = NULL MATCH = Exact(12)"
        )
        assert result.series is None

    def test_q2_series_by_name(self, executor, small_index):
        name = small_index.dataset[2].name
        result = executor.execute(
            f"OUTPUT SeasonalSim FROM D WHERE seq = {name} MATCH = Exact(12)"
        )
        assert result.series == 2

    def test_q2_unknown_series(self, executor):
        with pytest.raises(QueryError, match="does not name a series"):
            executor.execute(
                "OUTPUT SeasonalSim FROM D WHERE seq = ghost MATCH = Exact(12)"
            )

    def test_q3_single_degree(self, executor):
        recs = executor.execute("OUTPUT ST FROM D WHERE simDegree = S MATCH = Any")
        assert len(recs) == 1
        assert isinstance(recs[0], ThresholdRecommendation)
        assert recs[0].degree == "S"

    def test_q3_all_degrees(self, executor):
        recs = executor.execute("OUTPUT ST FROM D WHERE simDegree = NULL MATCH = Any")
        assert [rec.degree for rec in recs] == ["S", "M", "L"]

    def test_q3_per_length(self, executor):
        recs = executor.execute(
            "OUTPUT ST FROM D WHERE simDegree = M MATCH = Exact(12)"
        )
        assert recs[0].length == 12

    def test_ast_node_accepted_directly(self, executor):
        from repro.query.parser import parse_query

        node = parse_query("OUTPUT ST FROM D WHERE simDegree = L")
        recs = executor.execute(node)
        assert recs[0].degree == "L"


class TestRangeFormWithK:
    """The ``Sim <= ST, k = N`` combination must honour ``k`` (bugfix)."""

    def test_threshold_without_k_returns_all(self, executor, small_index):
        matches = executor.execute(
            "OUTPUT X FROM D WHERE Sim <= 0.4, seq = X0 MATCH = Exact(12)"
        )
        expected = small_index.within(
            small_index.dataset[0].values, st=0.4, length=12
        )
        assert len(matches) == len(expected)
        assert len(matches) > 2  # the truncation test below is meaningful

    def test_threshold_with_k_truncates_to_k_best(self, executor):
        everything = executor.execute(
            "OUTPUT X FROM D WHERE Sim <= 0.4, seq = X0 MATCH = Exact(12)"
        )
        top2 = executor.execute(
            "OUTPUT X FROM D WHERE Sim <= 0.4, k = 2, seq = X0 MATCH = Exact(12)"
        )
        assert len(top2) == 2
        # The k best of the refined, DTW-sorted within results.
        assert [m.ssid for m in top2] == [m.ssid for m in everything[:2]]

    def test_k_larger_than_result_set_is_a_no_op(self, executor):
        everything = executor.execute(
            "OUTPUT X FROM D WHERE Sim <= 0.4, seq = X0 MATCH = Exact(12)"
        )
        padded = executor.execute(
            f"OUTPUT X FROM D WHERE Sim <= 0.4, k = {len(everything) + 5}, "
            "seq = X0 MATCH = Exact(12)"
        )
        assert [m.ssid for m in padded] == [m.ssid for m in everything]

    def test_best_match_k_still_defaults_to_one(self, executor):
        matches = executor.execute(
            "OUTPUT X FROM D WHERE seq = X0 MATCH = Exact(12)"
        )
        assert len(matches) == 1

    def test_hand_built_node_with_bad_k_raises_on_both_forms(self, executor):
        from repro.query.ast import MatchSpec, SimilarityQuery

        for threshold in (0.3, None):
            node = SimilarityQuery(
                dataset="D",
                seq="X0",
                threshold=threshold,
                k=0,
                match=MatchSpec(length=12),
            )
            with pytest.raises(QueryError, match="k must be"):
                executor.execute(node)


class TestSeriesNameMap:
    def test_duplicate_names_resolve_to_first(self, small_index):
        from repro.query.executor import QueryExecutor

        executor = QueryExecutor(small_index, normalized_inputs=True)
        name = small_index.dataset[0].name
        assert executor._resolve_series(name) == 0
