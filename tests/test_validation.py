"""Tests for the shared validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.utils.validation import (
    as_float_array,
    check_lengths,
    check_positive,
    check_probability,
    require,
)


class TestAsFloatArray:
    def test_list_coerced(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_ndarray_passthrough_values(self):
        original = np.array([0.5, 1.5])
        assert as_float_array(original).tolist() == [0.5, 1.5]

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="empty"):
            as_float_array([])

    def test_2d_rejected(self):
        with pytest.raises(DataError, match="1-dimensional"):
            as_float_array([[1.0, 2.0]])

    def test_nan_rejected(self):
        with pytest.raises(DataError, match="NaN"):
            as_float_array([1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(DataError):
            as_float_array([1.0, float("inf")])

    def test_non_numeric_rejected(self):
        with pytest.raises(DataError, match="not numeric"):
            as_float_array(["a", "b"])

    def test_name_appears_in_error(self):
        with pytest.raises(DataError, match="my_field"):
            as_float_array([], name="my_field")


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(DataError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(DataError):
            check_positive(bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(DataError):
            check_probability(bad)


class TestCheckLengths:
    def test_sorted_and_deduplicated(self):
        assert check_lengths([8, 4, 8, 2], max_length=10) == [2, 4, 8]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            check_lengths([], max_length=10)

    def test_too_small_rejected(self):
        with pytest.raises(DataError, match=">= 2"):
            check_lengths([1, 4], max_length=10)

    def test_too_large_rejected(self):
        with pytest.raises(DataError, match="exceeds"):
            check_lengths([4, 11], max_length=10)
