"""Tests for discord detection and the k-means grouping alternative."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.grouping_kmeans import build_groups_kmeans
from repro.core.onex import OnexIndex
from repro.data.dataset import Dataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import QueryError, ThresholdError
from repro.extensions import discover_discords


@pytest.fixture
def dataset_with_anomaly() -> Dataset:
    """Twelve near-identical sinusoid series plus one wild outlier."""
    rng = np.random.default_rng(0)
    t = np.linspace(0, 2 * np.pi, 24)
    series = [
        TimeSeries(
            0.5 + 0.3 * np.sin(t) + rng.normal(0, 0.01, 24), name=f"normal-{i}"
        )
        for i in range(12)
    ]
    spike = 0.5 + 0.3 * np.sin(t)
    spike[10:14] = 0.0  # a dropout no normal series has
    series.append(TimeSeries(spike, name="anomaly"))
    return Dataset(series, name="withAnomaly")


class TestDiscords:
    def test_anomalous_series_surfaces_first(self, dataset_with_anomaly):
        index = OnexIndex.build(
            dataset_with_anomaly, st=0.1, lengths=[8, 24], normalize=False
        )
        discords = discover_discords(index, top_k=3)
        assert discords
        top = discords[0]
        assert dataset_with_anomaly[top.ssid.series].name == "anomaly"

    def test_scores_descending_and_fields(self, small_index):
        discords = discover_discords(small_index, top_k=10)
        scores = [d.score for d in discords]
        assert scores == sorted(scores, reverse=True)
        for discord in discords:
            assert discord.group_size >= 1
            assert discord.nearest_rep_distance >= 0.0
            assert discord.values.shape == (discord.ssid.length,)

    def test_length_restriction(self, small_index):
        discords = discover_discords(small_index, length=12, top_k=5)
        assert all(d.ssid.length == 12 for d in discords)

    def test_max_group_size_filter(self, small_index):
        strict = discover_discords(small_index, top_k=50, max_group_size=1)
        assert all(d.group_size == 1 for d in strict)

    def test_bad_parameters(self, small_index):
        with pytest.raises(QueryError):
            discover_discords(small_index, top_k=0)
        with pytest.raises(QueryError):
            discover_discords(small_index, max_group_size=0)


class TestKMeansGrouping:
    def test_coverage(self, small_dataset):
        groups = build_groups_kmeans(
            small_dataset, 12, 0.2, np.random.default_rng(0)
        )
        seen = {ssid for g in groups for ssid in g.member_ids}
        expected = {ssid for ssid, _ in small_dataset.subsequences(12)}
        assert seen == expected

    def test_radius_invariant_exact(self, small_dataset):
        """Unlike Algorithm 1 (running-mean drift), the k-means builder
        enforces Definition 8's radius exactly."""
        st = 0.2
        length = 12
        threshold = math.sqrt(length) * st / 2.0
        groups = build_groups_kmeans(
            small_dataset, length, st, np.random.default_rng(0)
        )
        for group in groups:
            assert group.ed_to_rep.max() <= threshold + 1e-9

    def test_representative_is_member_mean(self, small_dataset):
        groups = build_groups_kmeans(
            small_dataset, 12, 0.3, np.random.default_rng(1)
        )
        group = max(groups, key=lambda g: g.count)
        values = [small_dataset.subsequence(s) for s in group.member_ids]
        assert np.allclose(group.representative, np.mean(values, axis=0))

    def test_bad_threshold(self, small_dataset):
        with pytest.raises(ThresholdError):
            build_groups_kmeans(small_dataset, 12, 0.0, np.random.default_rng(0))

    def test_index_build_with_kmeans(self, small_dataset):
        index = OnexIndex.build(
            small_dataset,
            st=0.2,
            lengths=[6, 12],
            normalize=False,
            grouping="kmeans",
        )
        query = small_dataset[0].values[0:12]
        match = index.query(query, length=12)[0]
        assert match.dtw_normalized <= 0.05

    def test_unknown_grouping_rejected(self, small_dataset):
        with pytest.raises(QueryError, match="grouping"):
            OnexIndex.build(small_dataset, grouping="magic")

    def test_kmeans_vs_incremental_comparable_group_counts(self, small_dataset):
        incremental = OnexIndex.build(
            small_dataset, st=0.2, lengths=[12], normalize=False
        )
        kmeans = OnexIndex.build(
            small_dataset, st=0.2, lengths=[12], normalize=False, grouping="kmeans"
        )
        a = incremental.rspace.n_groups
        b = kmeans.rspace.n_groups
        assert b <= a * 3 and a <= b * 3  # same order of magnitude
