"""Tests for the ONEX query language: tokenizer, parser and AST."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.query.ast import MatchSpec, SeasonalQuery, SimilarityQuery, ThresholdQuery
from repro.query.parser import parse_query
from repro.query.tokens import TokenKind, tokenize


class TestTokenizer:
    def test_symbols_and_numbers(self):
        tokens = tokenize("Sim <= 0.25, k = 3 (30)")
        kinds = [token.kind for token in tokens]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.NUMBER,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.EQ,
            TokenKind.NUMBER,
            TokenKind.LPAREN,
            TokenKind.NUMBER,
            TokenKind.RPAREN,
            TokenKind.END,
        ]

    def test_identifier_charset(self):
        tokens = tokenize("state-03 my_seq data.v2")
        assert [token.text for token in tokens[:-1]] == [
            "state-03",
            "my_seq",
            "data.v2",
        ]

    def test_number_forms(self):
        tokens = tokenize("1 2.5 .75")
        assert [token.text for token in tokens[:-1]] == ["1", "2.5", ".75"]

    def test_positions_recorded(self):
        tokens = tokenize("OUTPUT X")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("OUTPUT ? FROM D")

    def test_keyword_matching_case_insensitive(self):
        token = tokenize("output")[0]
        assert token.matches_keyword("OUTPUT")
        assert not token.matches_keyword("FROM")


class TestParserQ1:
    def test_paper_example(self):
        query = parse_query(
            "OUTPUT Xk FROM D WHERE Sim <= 0.2, seq = q MATCH = Exact(30)"
        )
        assert isinstance(query, SimilarityQuery)
        assert query.dataset == "D"
        assert query.seq == "q"
        assert query.threshold == 0.2
        assert query.match == MatchSpec(length=30)

    def test_sim_min_is_best_match(self):
        query = parse_query("OUTPUT X FROM D WHERE Sim <= min, seq = q MATCH = Any")
        assert query.threshold is None
        assert query.match.is_any

    def test_k_condition(self):
        query = parse_query("OUTPUT X FROM D WHERE seq = q, k = 5")
        assert query.k == 5

    def test_k_defaults_to_none_when_absent(self):
        query = parse_query("OUTPUT X FROM D WHERE seq = q")
        assert query.k is None

    def test_threshold_and_k_both_survive_parsing(self):
        query = parse_query(
            "OUTPUT X FROM D WHERE Sim <= 0.3, seq = q, k = 4 MATCH = Exact(12)"
        )
        assert query.threshold == 0.3
        assert query.k == 4

    def test_default_match_is_any(self):
        query = parse_query("OUTPUT X FROM D WHERE seq = q")
        assert query.match.is_any

    def test_missing_seq_rejected(self):
        with pytest.raises(ParseError, match="seq"):
            parse_query("OUTPUT X FROM D WHERE Sim <= 0.1")

    def test_bad_k_rejected(self):
        with pytest.raises(ParseError, match="positive integer"):
            parse_query("OUTPUT X FROM D WHERE seq = q, k = 0")
        with pytest.raises(ParseError):
            parse_query("OUTPUT X FROM D WHERE seq = q, k = 2.5")


class TestParserQ2:
    def test_user_driven(self):
        query = parse_query(
            "OUTPUT SeasonalSim FROM D WHERE seq = AAPL MATCH = Exact(30)"
        )
        assert isinstance(query, SeasonalQuery)
        assert query.seq == "AAPL"
        assert query.match.length == 30

    def test_data_driven_null_seq(self):
        query = parse_query(
            "OUTPUT SeasonalSim FROM D WHERE seq = NULL MATCH = Exact(30)"
        )
        assert query.seq is None

    def test_paper_braces_variant_tolerated(self):
        # The paper writes "OUTPUT SeasonalSim {Xp}"; the extra target
        # identifier is tolerated.
        query = parse_query(
            "OUTPUT SeasonalSim Xp FROM D WHERE seq = Xp MATCH = Exact(12)"
        )
        assert isinstance(query, SeasonalQuery)

    def test_any_match_rejected(self):
        with pytest.raises(ParseError, match="Exact"):
            parse_query("OUTPUT SeasonalSim FROM D WHERE seq = NULL MATCH = Any")


class TestParserQ3:
    def test_degree_query(self):
        query = parse_query("OUTPUT ST FROM D WHERE simDegree = S MATCH = Any")
        assert isinstance(query, ThresholdQuery)
        assert query.degree == "S"
        assert query.match.is_any

    def test_null_degree(self):
        query = parse_query("OUTPUT ST FROM D WHERE simDegree = NULL MATCH = Exact(30)")
        assert query.degree is None
        assert query.match.length == 30

    @pytest.mark.parametrize("degree", ["S", "M", "L", "s", "m", "l"])
    def test_all_degrees(self, degree):
        query = parse_query(f"OUTPUT ST FROM D WHERE simDegree = {degree}")
        assert query.degree == degree.upper()

    def test_unknown_degree(self):
        with pytest.raises(ParseError, match="similarity degree"):
            parse_query("OUTPUT ST FROM D WHERE simDegree = Q")


class TestParserErrors:
    def test_empty_query(self):
        with pytest.raises(ParseError, match="empty"):
            parse_query("   ")

    def test_missing_output(self):
        with pytest.raises(ParseError, match="OUTPUT"):
            parse_query("SELECT X FROM D WHERE seq = q")

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_query("OUTPUT X WHERE seq = q")

    def test_unknown_condition(self):
        with pytest.raises(ParseError, match="unknown condition"):
            parse_query("OUTPUT X FROM D WHERE foo = 1")

    def test_bad_match_clause(self):
        with pytest.raises(ParseError, match="Exact"):
            parse_query("OUTPUT X FROM D WHERE seq = q MATCH = Sometimes")

    def test_exact_length_must_be_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse_query("OUTPUT X FROM D WHERE seq = q MATCH = Exact(2.5)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("OUTPUT X FROM D WHERE seq = q MATCH = Any extra")

    def test_error_carries_position(self):
        try:
            parse_query("OUTPUT X FROM D WHERE foo = 1")
        except ParseError as exc:
            assert exc.position is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_case_insensitive_keywords(self):
        query = parse_query("output x from d where seq = q match = any")
        assert isinstance(query, SimilarityQuery)
