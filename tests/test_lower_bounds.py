"""Tests for LB_Kim, LB_Keogh envelopes and the cascade pruner.

The essential property throughout: every bound must be *admissible* —
never exceed the true DTW for the matching band — otherwise pruning
would discard true best matches.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances.dtw import dtw
from repro.distances.lower_bounds import (
    CascadePruner,
    Envelope,
    envelope,
    lb_keogh,
    lb_kim,
)
from repro.exceptions import DistanceError, LengthMismatchError

vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=16
)


class TestLBKim:
    @given(vectors, vectors)
    @settings(max_examples=120, deadline=None)
    def test_property_admissible(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert lb_kim(x, y) <= dtw(x, y) + 1e-9

    def test_boundary_terms(self):
        x = np.array([0.0, 5.0, 1.0])
        y = np.array([3.0, 5.0, 1.0])
        # first points differ by 3, last by 0 -> bound >= 3.
        assert lb_kim(x, y) >= 3.0

    def test_extrema_terms(self):
        x = np.array([0.0, 10.0, 0.0])
        y = np.array([0.0, 1.0, 0.0])
        # max(x)=10 vs max(y)=1 -> bound >= 9.
        assert lb_kim(x, y) >= 9.0

    def test_empty_rejected(self):
        with pytest.raises(DistanceError):
            lb_kim(np.array([]), np.array([1.0]))


class TestEnvelope:
    def test_contains_the_sequence(self, rng):
        y = rng.normal(size=20)
        env = envelope(y, 3)
        assert np.all(env.lower <= y)
        assert np.all(env.upper >= y)

    def test_radius_zero_is_tight(self, rng):
        y = rng.normal(size=10)
        env = envelope(y, 0)
        assert np.array_equal(env.lower, y)
        assert np.array_equal(env.upper, y)

    def test_wider_radius_is_looser(self, rng):
        y = rng.normal(size=30)
        narrow = envelope(y, 2)
        wide = envelope(y, 6)
        assert np.all(wide.lower <= narrow.lower)
        assert np.all(wide.upper >= narrow.upper)

    def test_window_values(self):
        y = np.array([1.0, 5.0, 2.0, 8.0])
        env = envelope(y, 1)
        assert env.upper.tolist() == [5.0, 5.0, 8.0, 8.0]
        assert env.lower.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_negative_radius_rejected(self):
        with pytest.raises(DistanceError):
            envelope(np.array([1.0, 2.0]), -1)

    def test_len(self):
        assert len(envelope(np.arange(7.0), 2)) == 7


class TestLBKeogh:
    @given(vectors, st.integers(1, 5))
    @settings(max_examples=120, deadline=None)
    def test_property_admissible_for_matching_band(self, values, radius):
        rng = np.random.default_rng(len(values) + radius)
        x = np.asarray(values)
        y = rng.normal(size=len(x))
        env = envelope(y, radius)
        assert lb_keogh(x, env) <= dtw(x, y, window=radius) + 1e-9

    def test_zero_when_inside_corridor(self):
        y = np.array([0.0, 10.0, 0.0, 10.0])
        env = envelope(y, 1)
        x = np.array([5.0, 5.0, 5.0, 5.0])  # inside [0, 10] everywhere
        assert lb_keogh(x, env) == 0.0

    def test_positive_when_outside(self):
        y = np.zeros(4)
        env = envelope(y, 1)
        x = np.array([2.0, 0.0, 0.0, 0.0])
        assert lb_keogh(x, env) == pytest.approx(2.0)

    def test_length_mismatch(self):
        env = envelope(np.zeros(4), 1)
        with pytest.raises(LengthMismatchError):
            lb_keogh(np.zeros(5), env)


class TestCascadePruner:
    def test_exact_when_not_pruned(self, rng):
        query = rng.normal(size=12)
        candidate = rng.normal(size=12)
        pruner = CascadePruner(query, window=2)
        assert pruner.distance(candidate, math.inf) == pytest.approx(
            dtw(query, candidate, window=2)
        )

    def test_never_prunes_a_better_candidate(self, rng):
        """Admissibility end-to-end: the cascade may only reject candidates
        provably >= best_so_far."""
        query = rng.normal(size=16)
        pruner = CascadePruner(query, window=2)
        candidates = [rng.normal(size=16) for _ in range(40)]
        true_best = min(dtw(query, c, window=2) for c in candidates)
        best = math.inf
        for candidate in candidates:
            distance = pruner.distance(candidate, best)
            best = min(best, distance)
        assert best == pytest.approx(true_best, abs=1e-9)

    def test_prune_statistics_accumulate(self, rng):
        query = rng.normal(size=16)
        pruner = CascadePruner(query, window=2)
        best = math.inf
        for _ in range(30):
            best = min(best, pruner.distance(rng.normal(size=16), best))
        stats = pruner.stats
        assert stats.examined == 30
        assert stats.pruned + stats.full_dtw == 30
        assert 0.0 <= stats.pruned / stats.examined <= 1.0

    def test_different_length_skips_keogh(self, rng):
        query = rng.normal(size=10)
        pruner = CascadePruner(query, window=2)
        candidate = rng.normal(size=14)
        distance = pruner.distance(candidate, math.inf)
        assert distance == pytest.approx(dtw(query, candidate, window=2))
        assert pruner.stats.pruned_keogh_query == 0

    def test_stage_toggles(self, rng):
        query = rng.normal(size=12)
        pruner = CascadePruner(query, window=2, use_kim=False, use_keogh=False)
        best = 1e-6  # absurdly tight: everything abandons in DTW
        for _ in range(10):
            pruner.distance(rng.normal(size=12) + 50.0, best)
        assert pruner.stats.pruned_kim == 0
        assert pruner.stats.pruned_keogh_query == 0
        assert pruner.stats.abandoned_dtw == 10

    def test_precomputed_envelope_used_when_admissible(self, rng):
        query = rng.normal(size=12)
        pruner = CascadePruner(query, window=2)
        candidate = rng.normal(size=12)
        wide_env = envelope(candidate, 5)  # wider than needed: admissible
        out = pruner.distance(candidate, math.inf, candidate_envelope=wide_env)
        assert out == pytest.approx(dtw(query, candidate, window=2))

    def test_too_narrow_envelope_is_rebuilt(self, rng):
        """A narrower-than-band envelope would be inadmissible; the pruner
        must ignore it rather than overprune."""
        query = rng.normal(size=12)
        pruner = CascadePruner(query, window=4)
        candidates = [rng.normal(size=12) for _ in range(20)]
        best = math.inf
        for candidate in candidates:
            narrow = envelope(candidate, 1)
            best = min(best, pruner.distance(candidate, best, candidate_envelope=narrow))
        true_best = min(dtw(query, c, window=4) for c in candidates)
        assert best == pytest.approx(true_best, abs=1e-9)
