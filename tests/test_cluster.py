"""The sharded serving tier: shard map, router, workers, metrics, jobs.

The end-to-end tests spawn real worker subprocesses over a saved v3
directory and assert the router's responses are bit-identical (as JSON)
to a single-process ``OnexService`` answering the same requests.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import read_manifest, save_index
from repro.serve.cluster.jobs import JobQueue
from repro.serve.cluster.metrics import ClusterMetrics, LatencyHistogram
from repro.serve.cluster.router import (
    Budget,
    CircuitBreaker,
    ClusterRouter,
    DeadlineExceeded,
    ShardUnavailable,
    merge_within,
    replay_sweep,
    respawn_delay,
)
from repro.serve.cluster.shardmap import (
    assign_replicas,
    compute_shard_map,
    shard_map_from_manifest,
)
from repro.serve.server import handle_request, respond
from repro.serve.service import OnexService


@pytest.fixture(scope="module")
def v3_path(small_index, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("cluster") / "index_v3"
    save_index(small_index, path)
    return str(path)


@pytest.fixture(scope="module")
def single_service(v3_path) -> OnexService:
    service = OnexService(
        OnexIndex.load(v3_path), max_workers=2, cache_size=256
    )
    yield service
    service.close()


def _requests(lengths: list[int]) -> list[dict]:
    rng = np.random.default_rng(42)

    def query(length: int) -> list[float]:
        return [float(v) for v in rng.random(length) * 0.8 + 0.1]

    mid = lengths[len(lengths) // 2]
    return [
        {"op": "query", "values": query(lengths[0] + 1), "id": "q-any"},
        {"op": "query", "values": query(mid), "k": 3, "id": "q-any-k"},
        {"op": "query", "values": query(mid), "length": mid, "k": 2, "id": "q-exact"},
        {
            "op": "query",
            "queries": [query(length) for length in lengths],
            "k": 2,
            "id": "q-batch-any",
        },
        {
            "op": "query",
            "queries": [query(mid), query(mid)],
            "length": mid,
            "id": "q-batch-exact",
        },
        {"op": "within", "values": query(mid), "st": 0.6, "id": "w-any"},
        {
            "op": "within",
            "values": query(mid),
            "st": 0.6,
            "length": lengths[-1],
            "id": "w-exact",
        },
        {"op": "seasonal", "length": mid, "id": "s-data"},
        {"op": "seasonal", "length": mid, "series": 1, "id": "s-user"},
        {"op": "recommend", "id": "r-all"},
        {"op": "recommend", "degree": "S", "length": mid, "id": "r-one"},
        # Error paths must be identical too (text and id echo).
        {"op": "query", "id": "e-novalues"},
        {"op": "nonsense", "id": "e-unknown"},
        {"op": "query", "values": query(mid), "k": 0, "id": "e-k"},
        {"op": "seasonal", "id": "e-nolength"},
    ]


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Shard map
# ----------------------------------------------------------------------
class TestShardMap:
    def test_contiguous_and_deterministic(self):
        lengths = [6, 12, 18, 24, 30]
        weights = [500, 300, 200, 100, 50]
        first = compute_shard_map(lengths, weights, 3)
        second = compute_shard_map(lengths, weights, 3)
        assert first == second
        flat = [length for shard in first.shards for length in shard]
        assert flat == sorted(lengths)
        assert first.n_shards == 3

    def test_balances_max_weight(self):
        # One heavy length must sit alone; the optimum max weight is 500.
        shard_map = compute_shard_map([1, 2, 3], [500, 250, 250], 2)
        assert shard_map.shards == ((1,), (2, 3))
        assert max(shard_map.weights) == 500

    def test_clamps_to_length_count(self):
        shard_map = compute_shard_map([10, 20], [1, 1], 8)
        assert shard_map.n_shards == 2

    def test_owner_lookup(self):
        shard_map = compute_shard_map([5, 10, 15], [1, 1, 1], 3)
        assert [shard_map.owner(length) for length in (5, 10, 15)] == [0, 1, 2]
        with pytest.raises(KeyError):
            shard_map.owner(99)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_shard_map([], [], 2)
        with pytest.raises(ValueError):
            compute_shard_map([5], [1], 0)

    def test_replica_assignment(self):
        shard_map = compute_shard_map([5, 10, 15], [1, 1, 1], 3)
        assert assign_replicas(shard_map, 1) == ((0,), (1,), (2,))
        assert assign_replicas(shard_map, 2) == ((0, 1), (2, 3), (4, 5))
        # Deterministic: same inputs, same placement.
        assert assign_replicas(shard_map, 2) == assign_replicas(shard_map, 2)
        with pytest.raises(ValueError):
            assign_replicas(shard_map, 0)

    def test_from_manifest(self, v3_path, small_index):
        manifest = read_manifest(v3_path)
        assert manifest["sharding"]["strategy"] == "contiguous-balanced"
        shard_map = shard_map_from_manifest(manifest, 2)
        assert shard_map.lengths == small_index.rspace.lengths
        # Weights come from the persisted per-length subsequence counts.
        totals = {
            entry["length"]: entry["n_subsequences"]
            for entry in manifest["lengths"]
        }
        assert sum(shard_map.weights) == sum(totals.values())


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_counts_and_merge(self):
        histogram = LatencyHistogram()
        histogram.observe(0.001)
        histogram.observe(0.010)
        histogram.observe(5.0)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert snapshot["sum_seconds"] == pytest.approx(5.011)
        assert snapshot["max_seconds"] == pytest.approx(5.0)
        assert sum(b["count"] for b in snapshot["buckets"]) == 3
        assert snapshot["buckets"][-1]["le_ms"] is None  # +inf bucket

        other = LatencyHistogram()
        other.merge_dict(snapshot)
        other.observe(0.002)
        assert other.to_dict()["count"] == 4

    def test_histogram_merge_rejects_foreign_grid(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.merge_dict({"buckets": [{"count": 1}]})

    def test_cluster_counters(self):
        metrics = ClusterMetrics()
        metrics.record_op("query")
        metrics.record_op("query")
        metrics.record_busy()
        metrics.record_shard_error()
        metrics.record_worker_restart()
        snapshot = metrics.to_dict()
        assert snapshot["ops"]["query"] == 2
        assert snapshot["busy_rejected"] == 1
        assert snapshot["errors"]["busy"] == 1
        assert snapshot["shard_errors"] == 1
        assert snapshot["worker_restarts"] == 1
        assert set(snapshot["stages"]) == {
            "parse",
            "route",
            "shard_compute",
            "merge",
        }


# ----------------------------------------------------------------------
# Pure merge helpers
# ----------------------------------------------------------------------
class TestMergeHelpers:
    def test_replay_sweep_prefers_strictly_better(self):
        scans = {
            10: [(0, 2.0, 0.5)],
            20: [(1, 1.0, 0.2)],
        }
        winner = replay_sweep(scans, [10, 20], 12, st=0.1)
        assert winner == (20, [(1, 1.0, 0.2)])

    def test_replay_sweep_stops_at_half_st(self):
        # Sweep from 10 upward: 10 already satisfies ST/2, so 20 (which
        # is closer in distance) must never be visited — exactly the
        # single-process stop-at-half-ST behaviour.
        scans = {
            10: [(0, 2.0, 0.04)],
            20: [(1, 1.0, 0.01)],
        }
        winner = replay_sweep(scans, [10, 20], 10, st=0.1)
        assert winner == (10, [(0, 2.0, 0.04)])

    def test_replay_sweep_no_reachable(self):
        assert replay_sweep({10: []}, [10], 10, st=0.2) is None

    def test_merge_within_reproduces_stable_order(self):
        shard0 = [
            {"series": 0, "dtw_normalized": 0.1},
            {"series": 1, "dtw_normalized": 0.3},
        ]
        shard1 = [
            {"series": 2, "dtw_normalized": 0.1},
            {"series": 3, "dtw_normalized": 0.2},
        ]
        merged = merge_within([shard0, shard1])
        # Ties resolve in shard (= generation) order: series 0 before 2.
        assert [match["series"] for match in merged] == [0, 2, 3, 1]


# ----------------------------------------------------------------------
# Failure-model primitives: breaker, budget, respawn backoff
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_open_half_open_close_cycle(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after=5.0, clock=clock
        )
        assert breaker.state == "closed"
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()
        clock.now += 5.1
        assert breaker.allows()  # first call past reset -> half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allows()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.transitions == {
            "open": 1,
            "half_open": 1,
            "closed": 1,
        }

    def test_failed_probe_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=2.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 2.5
        assert breaker.allows()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert not breaker.allows()  # timer restarted
        clock.now += 2.5
        assert breaker.allows()

    def test_transition_callback_feeds_metrics(self):
        metrics = ClusterMetrics()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_after=0.0,
            clock=_FakeClock(),
            on_transition=metrics.record_breaker_transition,
        )
        breaker.record_failure()
        assert metrics.to_dict()["breaker_transitions"] == {"open": 1}


class TestBudgetAndBackoff:
    def test_budget_counts_down_and_raises(self):
        clock = _FakeClock()
        budget = Budget(250.0, clock=clock)
        assert budget.remaining_seconds() == pytest.approx(0.25)
        budget.check()  # plenty left
        clock.now += 0.2
        assert budget.remaining_seconds() == pytest.approx(0.05)
        clock.now += 0.1
        with pytest.raises(DeadlineExceeded):
            budget.check()

    def test_respawn_delay_doubles_to_cap(self):
        delays = [respawn_delay(n, 0.2, 1.0) for n in range(1, 6)]
        assert delays == [0.2, 0.4, 0.8, 1.0, 1.0]


# ----------------------------------------------------------------------
# Background job queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_build_job_lifecycle(self, tmp_path):
        queue = JobQueue()
        try:
            ticket = queue.submit(
                "build",
                {
                    "dataset": {"name": "ItalyPower", "n_series": 4, "length": 16},
                    "st": 0.3,
                    "path": str(tmp_path / "job_index"),
                },
            )
            assert ticket["status"] == "queued"
            for _ in range(200):
                status = queue.status(ticket["job"])
                if status["status"] in ("done", "error"):
                    break
                import time

                time.sleep(0.05)
            assert status["status"] == "done", status
            assert (tmp_path / "job_index" / "manifest.json").exists()
            assert status["result"]["lengths"]
            assert queue.list_jobs()[0]["job"] == ticket["job"]
        finally:
            queue.close()

    def test_unknown_kind_and_job(self):
        queue = JobQueue()
        try:
            with pytest.raises(ValueError):
                queue.submit("bogus", {})
            with pytest.raises(KeyError):
                queue.status("job-404")
        finally:
            queue.close()

    def test_close_reports_clean_join(self):
        queue = JobQueue()
        assert queue.closed_clean is None  # no close attempted yet
        assert queue.close() is True
        assert queue.closed_clean is True

    def test_close_timeout_is_detected_and_sticky(self, capsys):
        from repro.serve.cluster import jobs as jobs_module

        release = __import__("threading").Event()
        jobs_module._RUNNERS["_test_hang"] = lambda params: release.wait(10)
        queue = JobQueue()
        try:
            queue.submit("_test_hang", {})
            assert queue.close(join_timeout=0.2) is False
            assert queue.closed_clean is False
            assert "join timed out" in capsys.readouterr().err
            release.set()
            queue._thread.join(timeout=10)
            # A later clean-looking join must not mask the timeout.
            assert queue.close(join_timeout=5) is True
            assert queue.closed_clean is False
        finally:
            release.set()
            jobs_module._RUNNERS.pop("_test_hang", None)


# ----------------------------------------------------------------------
# Single-process server fixes (id echo everywhere)
# ----------------------------------------------------------------------
class TestRespond:
    def test_error_responses_echo_id(self, single_service):
        for request in (
            {"op": "nonsense", "id": 7},
            {"op": "query", "id": 8},
            {"op": "query", "values": [0.1] * 12, "k": 0, "id": 9},
            {"op": "seasonal", "id": 10},
        ):
            response = respond(single_service, request)
            assert response["ok"] is False
            assert response["id"] == request["id"]

    def test_unknown_op_via_handle_request_then_respond(self, single_service):
        # handle_request alone reports the error; respond adds the id.
        assert handle_request(single_service, {"op": "zap"})["ok"] is False
        assert respond(single_service, {"op": "zap", "id": 1})["id"] == 1

    def test_ping_op(self, single_service):
        assert respond(single_service, {"op": "ping", "id": 2}) == {
            "ok": True,
            "pong": True,
            "id": 2,
        }


# ----------------------------------------------------------------------
# Service-level scatter/gather primitives (no subprocesses)
# ----------------------------------------------------------------------
class TestScanRefine:
    def test_scan_refine_matches_query(self, single_service):
        from repro.core.rspace import search_length_order

        service = single_service
        lengths = service.index.rspace.lengths
        rng = np.random.default_rng(5)
        for query_length in (lengths[0], lengths[0] + 3, lengths[-1]):
            values = rng.random(query_length) * 0.8 + 0.1
            direct = service.query(values, k=2)
            scans_by_length = service.scan(values, lengths)
            winner = replay_sweep(
                {
                    length: scans
                    for length, scans in scans_by_length.items()
                },
                lengths,
                query_length,
                service.index.st,
            )
            assert winner is not None
            routed = service.refine(values, winner[0], winner[1], k=2)
            assert [
                (m.ssid, m.dtw, m.dtw_normalized, m.group) for m in direct
            ] == [
                (m.ssid, m.dtw, m.dtw_normalized, m.group) for m in routed
            ]

    def test_within_lengths_partition_merges(self, single_service):
        service = single_service
        lengths = service.index.rspace.lengths
        values = np.linspace(0.2, 0.8, lengths[1])
        whole = service.within(values, st=0.6)
        split = [
            match
            for subset in (lengths[:2], lengths[2:])
            for match in service.within(values, st=0.6, lengths=subset)
        ]
        split.sort(key=lambda match: match.dtw_normalized)
        assert [(m.ssid, m.dtw) for m in whole] == [
            (m.ssid, m.dtw) for m in split
        ]

    def test_within_rejects_length_and_lengths(self, single_service):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            single_service.index.processor.within_threshold(
                np.linspace(0, 1, 12), length=12, lengths=[12]
            )


# ----------------------------------------------------------------------
# End-to-end: real worker subprocesses behind the router
# ----------------------------------------------------------------------
class TestClusterEndToEnd:
    def test_bit_identity_with_single_process(
        self, v3_path, single_service
    ):
        lengths = single_service.index.rspace.lengths
        requests = _requests(lengths)
        expected = [
            json.dumps(respond(single_service, dict(request)), sort_keys=True)
            for request in requests
        ]

        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=16, ping_interval=30
            )
            await router.start()
            try:
                responses = [
                    json.dumps(
                        await router.process_request(dict(request)),
                        sort_keys=True,
                    )
                    for request in requests
                ]
                health = await router.process_request({"op": "health"})
                metrics = await router.process_request({"op": "metrics"})
                info = await router.process_request({"op": "info"})
            finally:
                await router.drain()
            return responses, health, metrics, info

        responses, health, metrics, info = _run(run())
        for request, want, got in zip(requests, expected, responses, strict=True):
            assert want == got, f"divergence on {request['id']}"

        assert health["health"]["status"] == "ok"
        assert len(health["health"]["shards"]) == 2
        assert all(shard["alive"] for shard in health["health"]["shards"])

        snapshot = metrics["metrics"]
        assert snapshot["ops"]["query"] == 7
        assert snapshot["stages"]["shard_compute"]["count"] > 0
        assert snapshot["stages"]["merge"]["count"] > 0
        assert len(snapshot["shard_latency"]) == 2
        assert snapshot["cache"]["misses"] > 0
        assert snapshot["query_stats"].get("rep_dtw_full", 0) > 0

        assert info["info"]["lengths"] == lengths
        assert info["info"]["n_shards"] == 2

    def test_backpressure_rejects_instead_of_buffering(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=1, ping_interval=30
            )
            await router.start()
            try:
                blocker = asyncio.create_task(
                    router.process_request(
                        {"op": "shard_sleep", "shard": 0, "seconds": 1.5}
                    )
                )
                await asyncio.sleep(0.3)  # the sleep op now holds the slot
                rejected = await router.process_request(
                    {"op": "query", "values": [0.5] * 8, "id": "over"}
                )
                # Observability must bypass admission even under load.
                health = await router.process_request({"op": "health"})
                blocked = await blocker
                # The slot is free again: the same query now succeeds.
                accepted = await router.process_request(
                    {"op": "query", "values": [0.5] * 8, "id": "after"}
                )
                busy_count = router.metrics.busy_rejected
            finally:
                await router.drain()
            return rejected, health, blocked, accepted, busy_count

        rejected, health, blocked, accepted, busy_count = _run(run())
        assert rejected["ok"] is False
        assert rejected["code"] == "busy"
        assert rejected["id"] == "over"  # errors echo the id too
        assert health["ok"] is True
        assert blocked["ok"] is True
        assert accepted["ok"] is True
        assert busy_count == 1

    def test_worker_death_and_recovery(self, v3_path, single_service):
        probe = {"op": "query", "values": [0.4] * 10, "id": "probe"}
        expected = json.dumps(
            respond(single_service, dict(probe)), sort_keys=True
        )

        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=8, ping_interval=30
            )
            await router.start()
            try:
                victim = asyncio.create_task(
                    router.process_request(
                        {"op": "shard_sleep", "shard": 0, "seconds": 60, "id": "rip"}
                    )
                )
                await asyncio.sleep(0.3)
                os.kill(router.workers[0].pid, signal.SIGKILL)
                failed = await victim
                # The supervisor restarts the worker automatically.
                for _ in range(200):
                    if router.workers[0].alive:
                        try:
                            await router.workers[0].ping()
                            break
                        except ShardUnavailable:
                            pass
                    await asyncio.sleep(0.05)
                restarts = router.workers[0].restarts
                health = await router.process_request({"op": "health"})
                recovered = await router.process_request(dict(probe))
            finally:
                await router.drain()
            return failed, restarts, health, recovered

        failed, restarts, health, recovered = _run(run())
        assert failed["ok"] is False
        assert failed["code"] == "shard_unavailable"
        assert failed["id"] == "rip"
        assert restarts == 1
        assert health["health"]["status"] == "ok"
        assert json.dumps(recovered, sort_keys=True) == expected

    def test_drain_rejects_new_work(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=4, ping_interval=30
            )
            await router.start()
            await router.drain()
            return await router.process_request(
                {"op": "query", "values": [0.5] * 8, "id": "late"}
            )

        response = _run(run())
        assert response["ok"] is False
        assert response["code"] == "draining"
        assert response["id"] == "late"

    def test_job_submit_and_poll_through_router(self, v3_path, tmp_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=4, ping_interval=30
            )
            await router.start()
            try:
                ticket = await router.process_request(
                    {
                        "op": "submit",
                        "kind": "build",
                        "params": {
                            "dataset": {
                                "name": "ItalyPower",
                                "n_series": 4,
                                "length": 16,
                            },
                            "st": 0.3,
                            "path": str(tmp_path / "bg_index"),
                        },
                        "id": "t",
                    }
                )
                assert ticket["ok"], ticket
                status = None
                for _ in range(200):
                    status = await router.process_request(
                        {"op": "job_status", "job": ticket["job"]}
                    )
                    if status["status"] in ("done", "error"):
                        break
                    await asyncio.sleep(0.05)
                listing = await router.process_request({"op": "jobs"})
            finally:
                await router.drain()
            return ticket, status, listing

        ticket, status, listing = _run(run())
        assert ticket["status"] == "queued"
        assert status["status"] == "done", status
        assert (tmp_path / "bg_index" / "manifest.json").exists()
        assert listing["jobs"][0]["job"] == ticket["job"]
        assert listing["closed_clean"] is None  # queue still open


# ----------------------------------------------------------------------
# Replicated shards: failover, deadlines, graceful degradation
# ----------------------------------------------------------------------
async def _kill_and_wait(worker) -> None:
    """SIGKILL one worker and wait until the router has noticed."""
    os.kill(worker.pid, signal.SIGKILL)
    for _ in range(200):
        if not worker.alive:
            return
        await asyncio.sleep(0.02)
    raise AssertionError("worker did not die")


def _stop_forever(worker) -> None:
    """Mark a worker stopping (no respawn) and SIGKILL it."""
    worker._stopping = True
    os.kill(worker.pid, signal.SIGKILL)


class TestReplicatedCluster:
    def test_replica_sets_and_flat_workers(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, n_replicas=2, ping_interval=30
            )
            await router.start()
            try:
                health = await router.process_request({"op": "health"})
            finally:
                await router.drain()
            return router, health

        router, health = _run(run())
        assert len(router.shards) == 2
        assert [len(s.replicas) for s in router.shards] == [2, 2]
        # Flat view stays shard-major for back-compat and placement.
        assert [(w.shard_index, w.replica_index) for w in router.workers] == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]
        assert router.replica_slots == ((0, 1), (2, 3))
        snapshot = health["health"]
        assert snapshot["n_replicas"] == 2
        assert len(snapshot["shards"]) == 4
        assert all(entry["breaker"]["state"] == "closed"
                   for entry in snapshot["shards"])

    def test_kill_one_replica_of_every_shard_bit_identity(
        self, v3_path, single_service
    ):
        """The acceptance scenario: SIGKILL a replica per shard mid-run;
        the mixed workload sees zero errors and bit-identical results."""
        lengths = single_service.index.rspace.lengths
        requests = _requests(lengths)
        expected = [
            json.dumps(respond(single_service, dict(request)), sort_keys=True)
            for request in requests
        ]

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                # Slow respawn so the killed replicas stay down while
                # the battery runs: failover, not restart, must answer.
                respawn_backoff=30.0,
            )
            await router.start()
            try:
                warm = [
                    json.dumps(
                        await router.process_request(dict(request)),
                        sort_keys=True,
                    )
                    for request in requests
                ]
                for replica_set in router.shards:
                    await _kill_and_wait(replica_set.replicas[0])
                after = [
                    json.dumps(
                        await router.process_request(dict(request)),
                        sort_keys=True,
                    )
                    for request in requests
                ]
                metrics = await router.process_request({"op": "metrics"})
                health = await router.process_request({"op": "health"})
            finally:
                await router.drain()
            return warm, after, metrics, health

        warm, after, metrics, health = _run(run())
        assert warm == expected
        assert after == expected  # bit-identical across replica failover
        snapshot = metrics["metrics"]
        assert snapshot["failovers"] > 0
        assert snapshot["worker_restarts"] >= 2
        # Dead replicas surface as degraded, not unavailable: every
        # shard still has a live replica answering.
        assert health["health"]["status"] == "degraded"

    def test_kill_replica_mid_scatter_client_sees_success(
        self, v3_path, single_service
    ):
        probe = {"op": "query", "values": [0.4] * 10, "id": "mid"}
        expected = json.dumps(
            respond(single_service, dict(probe)), sort_keys=True
        )

        async def run():
            router = ClusterRouter(
                v3_path,
                n_shards=2,
                n_replicas=2,
                ping_interval=30,
                replica_timeout_ms=60_000.0,
                respawn_backoff=30.0,
            )
            await router.start()
            try:
                # Hold replica 0 of shard 0 busy via the direct path,
                # then kill it mid-request: the scatter in flight on it
                # must fail over to replica 1 invisibly.
                sleeper = asyncio.create_task(
                    router.process_request(
                        {"op": "shard_sleep", "shard": 0, "seconds": 60}
                    )
                )
                await asyncio.sleep(0.3)
                inflight = asyncio.create_task(
                    router.process_request(dict(probe))
                )
                await asyncio.sleep(0.1)
                await _kill_and_wait(router.shards[0].replicas[0])
                answered = await inflight
                stranded = await sleeper
                failovers = router.metrics.failovers
            finally:
                await router.drain()
            return answered, stranded, failovers

        answered, stranded, failovers = _run(run())
        assert json.dumps(answered, sort_keys=True) == expected
        # The direct (no-retry) sleep op reports the death honestly.
        assert stranded["ok"] is False
        assert stranded["code"] == "shard_unavailable"
        assert failovers >= 1

    def test_deadline_propagates_shrunken_budget(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, n_replicas=1, ping_interval=30
            )
            await router.start()
            try:
                response = await router.process_request(
                    {
                        "op": "shard_sleep",
                        "shard": 0,
                        "seconds": 0,
                        "timeout_ms": 5_000,
                        "id": "b",
                    }
                )
            finally:
                await router.drain()
            return response

        response = _run(run())
        assert response["ok"] is True
        # Child budget <= parent budget, and some of it was spent
        # before the subrequest went out.
        assert 0 < response["budget_ms"] <= 5_000

    def test_deadline_exceeded_is_structured(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, n_replicas=1, ping_interval=30
            )
            await router.start()
            try:
                response = await router.process_request(
                    {
                        "op": "shard_sleep",
                        "shard": 0,
                        "seconds": 2,
                        "timeout_ms": 300,
                        "id": "d",
                    }
                )
                deadline_count = router.metrics.to_dict()[
                    "deadline_exceeded"
                ]
            finally:
                await router.drain()
            return response, deadline_count

        response, deadline_count = _run(run())
        assert response["ok"] is False
        assert response["code"] == "deadline_exceeded"
        assert response["id"] == "d"
        assert deadline_count == 1

    def test_timeout_ms_validation_matches_single_process(
        self, v3_path, single_service
    ):
        bad = {"op": "query", "values": [0.4] * 10, "timeout_ms": 0, "id": "t"}
        expected = respond(single_service, dict(bad))
        assert expected["ok"] is False

        async def run():
            router = ClusterRouter(v3_path, n_shards=2, ping_interval=30)
            await router.start()
            try:
                return await router.process_request(dict(bad))
            finally:
                await router.drain()

        response = _run(run())
        assert response["error"] == expected["error"]
        assert response["id"] == "t"

    def test_allow_partial_degrades_instead_of_failing(
        self, v3_path, single_service
    ):
        values = [0.4] * 12

        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, n_replicas=1, ping_interval=30
            )
            await router.start()
            try:
                _stop_forever(router.shards[1].replicas[0])
                for _ in range(200):
                    if not router.shards[1].replicas[0].alive:
                        break
                    await asyncio.sleep(0.02)
                strict = await router.process_request(
                    {"op": "within", "values": values, "st": 0.6, "id": "s"}
                )
                partial = await router.process_request(
                    {
                        "op": "within",
                        "values": values,
                        "st": 0.6,
                        "allow_partial": True,
                        "id": "p",
                    }
                )
                query_partial = await router.process_request(
                    {
                        "op": "query",
                        "values": values[:11],
                        "allow_partial": True,
                        "id": "q",
                    }
                )
                degraded_count = router.metrics.to_dict()[
                    "degraded_responses"
                ]
                health = await router.process_request({"op": "health"})
            finally:
                await router.drain()
            return strict, partial, query_partial, degraded_count, health

        strict, partial, query_partial, degraded_count, health = _run(run())
        assert strict["ok"] is False
        assert strict["code"] == "shard_unavailable"

        assert partial["ok"] is True
        assert partial["degraded"] is True
        assert partial["missing_shards"] == [1]
        # The surviving matches are exactly the single-process answer
        # restricted to the live shard's lengths.
        live_lengths = sorted(
            set(single_service.index.rspace.lengths)
            - set(partial["missing_lengths"])
        )
        expected = handle_request(
            single_service,
            {"op": "within", "values": values, "st": 0.6,
             "lengths": live_lengths},
        )
        assert partial["matches"] == expected["matches"]

        assert query_partial["ok"] is True
        assert query_partial["degraded"] is True
        assert query_partial["matches"]  # re-swept over live lengths
        assert degraded_count >= 2
        assert health["health"]["status"] == "unavailable"
