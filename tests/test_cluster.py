"""The sharded serving tier: shard map, router, workers, metrics, jobs.

The end-to-end tests spawn real worker subprocesses over a saved v3
directory and assert the router's responses are bit-identical (as JSON)
to a single-process ``OnexService`` answering the same requests.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.persistence import read_manifest, save_index
from repro.serve.cluster.jobs import JobQueue
from repro.serve.cluster.metrics import ClusterMetrics, LatencyHistogram
from repro.serve.cluster.router import (
    ClusterRouter,
    ShardUnavailable,
    merge_within,
    replay_sweep,
)
from repro.serve.cluster.shardmap import (
    compute_shard_map,
    shard_map_from_manifest,
)
from repro.serve.server import handle_request, respond
from repro.serve.service import OnexService


@pytest.fixture(scope="module")
def v3_path(small_index, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("cluster") / "index_v3"
    save_index(small_index, path)
    return str(path)


@pytest.fixture(scope="module")
def single_service(v3_path) -> OnexService:
    service = OnexService(
        OnexIndex.load(v3_path), max_workers=2, cache_size=256
    )
    yield service
    service.close()


def _requests(lengths: list[int]) -> list[dict]:
    rng = np.random.default_rng(42)

    def query(length: int) -> list[float]:
        return [float(v) for v in rng.random(length) * 0.8 + 0.1]

    mid = lengths[len(lengths) // 2]
    return [
        {"op": "query", "values": query(lengths[0] + 1), "id": "q-any"},
        {"op": "query", "values": query(mid), "k": 3, "id": "q-any-k"},
        {"op": "query", "values": query(mid), "length": mid, "k": 2, "id": "q-exact"},
        {
            "op": "query",
            "queries": [query(length) for length in lengths],
            "k": 2,
            "id": "q-batch-any",
        },
        {
            "op": "query",
            "queries": [query(mid), query(mid)],
            "length": mid,
            "id": "q-batch-exact",
        },
        {"op": "within", "values": query(mid), "st": 0.6, "id": "w-any"},
        {
            "op": "within",
            "values": query(mid),
            "st": 0.6,
            "length": lengths[-1],
            "id": "w-exact",
        },
        {"op": "seasonal", "length": mid, "id": "s-data"},
        {"op": "seasonal", "length": mid, "series": 1, "id": "s-user"},
        {"op": "recommend", "id": "r-all"},
        {"op": "recommend", "degree": "S", "length": mid, "id": "r-one"},
        # Error paths must be identical too (text and id echo).
        {"op": "query", "id": "e-novalues"},
        {"op": "nonsense", "id": "e-unknown"},
        {"op": "query", "values": query(mid), "k": 0, "id": "e-k"},
        {"op": "seasonal", "id": "e-nolength"},
    ]


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Shard map
# ----------------------------------------------------------------------
class TestShardMap:
    def test_contiguous_and_deterministic(self):
        lengths = [6, 12, 18, 24, 30]
        weights = [500, 300, 200, 100, 50]
        first = compute_shard_map(lengths, weights, 3)
        second = compute_shard_map(lengths, weights, 3)
        assert first == second
        flat = [length for shard in first.shards for length in shard]
        assert flat == sorted(lengths)
        assert first.n_shards == 3

    def test_balances_max_weight(self):
        # One heavy length must sit alone; the optimum max weight is 500.
        shard_map = compute_shard_map([1, 2, 3], [500, 250, 250], 2)
        assert shard_map.shards == ((1,), (2, 3))
        assert max(shard_map.weights) == 500

    def test_clamps_to_length_count(self):
        shard_map = compute_shard_map([10, 20], [1, 1], 8)
        assert shard_map.n_shards == 2

    def test_owner_lookup(self):
        shard_map = compute_shard_map([5, 10, 15], [1, 1, 1], 3)
        assert [shard_map.owner(length) for length in (5, 10, 15)] == [0, 1, 2]
        with pytest.raises(KeyError):
            shard_map.owner(99)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_shard_map([], [], 2)
        with pytest.raises(ValueError):
            compute_shard_map([5], [1], 0)

    def test_from_manifest(self, v3_path, small_index):
        manifest = read_manifest(v3_path)
        assert manifest["sharding"]["strategy"] == "contiguous-balanced"
        shard_map = shard_map_from_manifest(manifest, 2)
        assert shard_map.lengths == small_index.rspace.lengths
        # Weights come from the persisted per-length subsequence counts.
        totals = {
            entry["length"]: entry["n_subsequences"]
            for entry in manifest["lengths"]
        }
        assert sum(shard_map.weights) == sum(totals.values())


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_counts_and_merge(self):
        histogram = LatencyHistogram()
        histogram.observe(0.001)
        histogram.observe(0.010)
        histogram.observe(5.0)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert snapshot["sum_seconds"] == pytest.approx(5.011)
        assert snapshot["max_seconds"] == pytest.approx(5.0)
        assert sum(b["count"] for b in snapshot["buckets"]) == 3
        assert snapshot["buckets"][-1]["le_ms"] is None  # +inf bucket

        other = LatencyHistogram()
        other.merge_dict(snapshot)
        other.observe(0.002)
        assert other.to_dict()["count"] == 4

    def test_histogram_merge_rejects_foreign_grid(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.merge_dict({"buckets": [{"count": 1}]})

    def test_cluster_counters(self):
        metrics = ClusterMetrics()
        metrics.record_op("query")
        metrics.record_op("query")
        metrics.record_busy()
        metrics.record_shard_error()
        metrics.record_worker_restart()
        snapshot = metrics.to_dict()
        assert snapshot["ops"]["query"] == 2
        assert snapshot["busy_rejected"] == 1
        assert snapshot["errors"]["busy"] == 1
        assert snapshot["shard_errors"] == 1
        assert snapshot["worker_restarts"] == 1
        assert set(snapshot["stages"]) == {
            "parse",
            "route",
            "shard_compute",
            "merge",
        }


# ----------------------------------------------------------------------
# Pure merge helpers
# ----------------------------------------------------------------------
class TestMergeHelpers:
    def test_replay_sweep_prefers_strictly_better(self):
        scans = {
            10: [(0, 2.0, 0.5)],
            20: [(1, 1.0, 0.2)],
        }
        winner = replay_sweep(scans, [10, 20], 12, st=0.1)
        assert winner == (20, [(1, 1.0, 0.2)])

    def test_replay_sweep_stops_at_half_st(self):
        # Sweep from 10 upward: 10 already satisfies ST/2, so 20 (which
        # is closer in distance) must never be visited — exactly the
        # single-process stop-at-half-ST behaviour.
        scans = {
            10: [(0, 2.0, 0.04)],
            20: [(1, 1.0, 0.01)],
        }
        winner = replay_sweep(scans, [10, 20], 10, st=0.1)
        assert winner == (10, [(0, 2.0, 0.04)])

    def test_replay_sweep_no_reachable(self):
        assert replay_sweep({10: []}, [10], 10, st=0.2) is None

    def test_merge_within_reproduces_stable_order(self):
        shard0 = [
            {"series": 0, "dtw_normalized": 0.1},
            {"series": 1, "dtw_normalized": 0.3},
        ]
        shard1 = [
            {"series": 2, "dtw_normalized": 0.1},
            {"series": 3, "dtw_normalized": 0.2},
        ]
        merged = merge_within([shard0, shard1])
        # Ties resolve in shard (= generation) order: series 0 before 2.
        assert [match["series"] for match in merged] == [0, 2, 3, 1]


# ----------------------------------------------------------------------
# Background job queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_build_job_lifecycle(self, tmp_path):
        queue = JobQueue()
        try:
            ticket = queue.submit(
                "build",
                {
                    "dataset": {"name": "ItalyPower", "n_series": 4, "length": 16},
                    "st": 0.3,
                    "path": str(tmp_path / "job_index"),
                },
            )
            assert ticket["status"] == "queued"
            for _ in range(200):
                status = queue.status(ticket["job"])
                if status["status"] in ("done", "error"):
                    break
                import time

                time.sleep(0.05)
            assert status["status"] == "done", status
            assert (tmp_path / "job_index" / "manifest.json").exists()
            assert status["result"]["lengths"]
            assert queue.list_jobs()[0]["job"] == ticket["job"]
        finally:
            queue.close()

    def test_unknown_kind_and_job(self):
        queue = JobQueue()
        try:
            with pytest.raises(ValueError):
                queue.submit("bogus", {})
            with pytest.raises(KeyError):
                queue.status("job-404")
        finally:
            queue.close()


# ----------------------------------------------------------------------
# Single-process server fixes (id echo everywhere)
# ----------------------------------------------------------------------
class TestRespond:
    def test_error_responses_echo_id(self, single_service):
        for request in (
            {"op": "nonsense", "id": 7},
            {"op": "query", "id": 8},
            {"op": "query", "values": [0.1] * 12, "k": 0, "id": 9},
            {"op": "seasonal", "id": 10},
        ):
            response = respond(single_service, request)
            assert response["ok"] is False
            assert response["id"] == request["id"]

    def test_unknown_op_via_handle_request_then_respond(self, single_service):
        # handle_request alone reports the error; respond adds the id.
        assert handle_request(single_service, {"op": "zap"})["ok"] is False
        assert respond(single_service, {"op": "zap", "id": 1})["id"] == 1

    def test_ping_op(self, single_service):
        assert respond(single_service, {"op": "ping", "id": 2}) == {
            "ok": True,
            "pong": True,
            "id": 2,
        }


# ----------------------------------------------------------------------
# Service-level scatter/gather primitives (no subprocesses)
# ----------------------------------------------------------------------
class TestScanRefine:
    def test_scan_refine_matches_query(self, single_service):
        from repro.core.rspace import search_length_order

        service = single_service
        lengths = service.index.rspace.lengths
        rng = np.random.default_rng(5)
        for query_length in (lengths[0], lengths[0] + 3, lengths[-1]):
            values = rng.random(query_length) * 0.8 + 0.1
            direct = service.query(values, k=2)
            scans_by_length = service.scan(values, lengths)
            winner = replay_sweep(
                {
                    length: scans
                    for length, scans in scans_by_length.items()
                },
                lengths,
                query_length,
                service.index.st,
            )
            assert winner is not None
            routed = service.refine(values, winner[0], winner[1], k=2)
            assert [
                (m.ssid, m.dtw, m.dtw_normalized, m.group) for m in direct
            ] == [
                (m.ssid, m.dtw, m.dtw_normalized, m.group) for m in routed
            ]

    def test_within_lengths_partition_merges(self, single_service):
        service = single_service
        lengths = service.index.rspace.lengths
        values = np.linspace(0.2, 0.8, lengths[1])
        whole = service.within(values, st=0.6)
        split = [
            match
            for subset in (lengths[:2], lengths[2:])
            for match in service.within(values, st=0.6, lengths=subset)
        ]
        split.sort(key=lambda match: match.dtw_normalized)
        assert [(m.ssid, m.dtw) for m in whole] == [
            (m.ssid, m.dtw) for m in split
        ]

    def test_within_rejects_length_and_lengths(self, single_service):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            single_service.index.processor.within_threshold(
                np.linspace(0, 1, 12), length=12, lengths=[12]
            )


# ----------------------------------------------------------------------
# End-to-end: real worker subprocesses behind the router
# ----------------------------------------------------------------------
class TestClusterEndToEnd:
    def test_bit_identity_with_single_process(
        self, v3_path, single_service
    ):
        lengths = single_service.index.rspace.lengths
        requests = _requests(lengths)
        expected = [
            json.dumps(respond(single_service, dict(request)), sort_keys=True)
            for request in requests
        ]

        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=16, ping_interval=30
            )
            await router.start()
            try:
                responses = [
                    json.dumps(
                        await router.process_request(dict(request)),
                        sort_keys=True,
                    )
                    for request in requests
                ]
                health = await router.process_request({"op": "health"})
                metrics = await router.process_request({"op": "metrics"})
                info = await router.process_request({"op": "info"})
            finally:
                await router.drain()
            return responses, health, metrics, info

        responses, health, metrics, info = _run(run())
        for request, want, got in zip(requests, expected, responses, strict=True):
            assert want == got, f"divergence on {request['id']}"

        assert health["health"]["status"] == "ok"
        assert len(health["health"]["shards"]) == 2
        assert all(shard["alive"] for shard in health["health"]["shards"])

        snapshot = metrics["metrics"]
        assert snapshot["ops"]["query"] == 7
        assert snapshot["stages"]["shard_compute"]["count"] > 0
        assert snapshot["stages"]["merge"]["count"] > 0
        assert len(snapshot["shard_latency"]) == 2
        assert snapshot["cache"]["misses"] > 0
        assert snapshot["query_stats"].get("rep_dtw_full", 0) > 0

        assert info["info"]["lengths"] == lengths
        assert info["info"]["n_shards"] == 2

    def test_backpressure_rejects_instead_of_buffering(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=1, ping_interval=30
            )
            await router.start()
            try:
                blocker = asyncio.create_task(
                    router.process_request(
                        {"op": "shard_sleep", "shard": 0, "seconds": 1.5}
                    )
                )
                await asyncio.sleep(0.3)  # the sleep op now holds the slot
                rejected = await router.process_request(
                    {"op": "query", "values": [0.5] * 8, "id": "over"}
                )
                # Observability must bypass admission even under load.
                health = await router.process_request({"op": "health"})
                blocked = await blocker
                # The slot is free again: the same query now succeeds.
                accepted = await router.process_request(
                    {"op": "query", "values": [0.5] * 8, "id": "after"}
                )
                busy_count = router.metrics.busy_rejected
            finally:
                await router.drain()
            return rejected, health, blocked, accepted, busy_count

        rejected, health, blocked, accepted, busy_count = _run(run())
        assert rejected["ok"] is False
        assert rejected["code"] == "busy"
        assert rejected["id"] == "over"  # errors echo the id too
        assert health["ok"] is True
        assert blocked["ok"] is True
        assert accepted["ok"] is True
        assert busy_count == 1

    def test_worker_death_and_recovery(self, v3_path, single_service):
        probe = {"op": "query", "values": [0.4] * 10, "id": "probe"}
        expected = json.dumps(
            respond(single_service, dict(probe)), sort_keys=True
        )

        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=8, ping_interval=30
            )
            await router.start()
            try:
                victim = asyncio.create_task(
                    router.process_request(
                        {"op": "shard_sleep", "shard": 0, "seconds": 60, "id": "rip"}
                    )
                )
                await asyncio.sleep(0.3)
                os.kill(router.workers[0].pid, signal.SIGKILL)
                failed = await victim
                # The supervisor restarts the worker automatically.
                for _ in range(200):
                    if router.workers[0].alive:
                        try:
                            await router.workers[0].ping()
                            break
                        except ShardUnavailable:
                            pass
                    await asyncio.sleep(0.05)
                restarts = router.workers[0].restarts
                health = await router.process_request({"op": "health"})
                recovered = await router.process_request(dict(probe))
            finally:
                await router.drain()
            return failed, restarts, health, recovered

        failed, restarts, health, recovered = _run(run())
        assert failed["ok"] is False
        assert failed["code"] == "shard_unavailable"
        assert failed["id"] == "rip"
        assert restarts == 1
        assert health["health"]["status"] == "ok"
        assert json.dumps(recovered, sort_keys=True) == expected

    def test_drain_rejects_new_work(self, v3_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=4, ping_interval=30
            )
            await router.start()
            await router.drain()
            return await router.process_request(
                {"op": "query", "values": [0.5] * 8, "id": "late"}
            )

        response = _run(run())
        assert response["ok"] is False
        assert response["code"] == "draining"
        assert response["id"] == "late"

    def test_job_submit_and_poll_through_router(self, v3_path, tmp_path):
        async def run():
            router = ClusterRouter(
                v3_path, n_shards=2, max_inflight=4, ping_interval=30
            )
            await router.start()
            try:
                ticket = await router.process_request(
                    {
                        "op": "submit",
                        "kind": "build",
                        "params": {
                            "dataset": {
                                "name": "ItalyPower",
                                "n_series": 4,
                                "length": 16,
                            },
                            "st": 0.3,
                            "path": str(tmp_path / "bg_index"),
                        },
                        "id": "t",
                    }
                )
                assert ticket["ok"], ticket
                status = None
                for _ in range(200):
                    status = await router.process_request(
                        {"op": "job_status", "job": ticket["job"]}
                    )
                    if status["status"] in ("done", "error"):
                        break
                    await asyncio.sleep(0.05)
                listing = await router.process_request({"op": "jobs"})
            finally:
                await router.drain()
            return ticket, status, listing

        ticket, status, listing = _run(run())
        assert ticket["status"] == "queued"
        assert status["status"] == "done", status
        assert (tmp_path / "bg_index" / "manifest.json").exists()
        assert listing["jobs"][0]["job"] == ticket["job"]
