"""Tests for the extensions: maintenance, classifier, motifs, n-probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.query_processor import QueryProcessor
from repro.data.synthetic import make_dataset
from repro.exceptions import DataError, IndexConstructionError, QueryError
from repro.extensions import OnexKnnClassifier, append_series, discover_motifs


class TestAppendSeries:
    def test_dataset_grows(self, small_index):
        new_series = np.clip(
            small_index.dataset[0].values + 0.01, 0.0, 1.0
        )
        grown = append_series(small_index, new_series, normalized=True)
        assert len(grown.dataset) == len(small_index.dataset) + 1
        assert len(small_index.dataset) == 12  # original untouched

    def test_every_new_subsequence_indexed(self, small_index):
        new_series = np.linspace(0.1, 0.9, 24)
        grown = append_series(small_index, new_series, normalized=True)
        new_index = len(grown.dataset) - 1
        for bucket in grown.rspace:
            expected = 24 - bucket.length + 1
            found = sum(
                1
                for group in bucket.groups
                for ssid in group.member_ids
                if ssid.series == new_index
            )
            assert found == expected

    def test_membership_of_old_series_preserved(self, small_index):
        new_series = np.linspace(0.1, 0.9, 24)
        grown = append_series(small_index, new_series, normalized=True)
        new_index = len(grown.dataset) - 1
        for length in small_index.rspace.lengths:
            before = {
                ssid
                for group in small_index.rspace.bucket(length).groups
                for ssid in group.member_ids
            }
            after = {
                ssid
                for group in grown.rspace.bucket(length).groups
                for ssid in group.member_ids
                if ssid.series != new_index
            }
            assert after == before

    def test_queries_find_new_series(self, small_index):
        new_series = np.clip(np.sin(np.linspace(0, 6, 24)) * 0.4 + 0.5, 0, 1)
        grown = append_series(small_index, new_series, normalized=True)
        new_index = len(grown.dataset) - 1
        query = new_series[3:15]
        match = grown.query(query, length=12)[0]
        assert match.dtw_normalized <= 0.02
        # The best match for a brand-new shape should be the new series
        # itself (its own window has distance 0).
        assert match.ssid.series == new_index

    def test_unnormalized_input_scaled(self):
        dataset = make_dataset("ECG", n_series=6, length=32, seed=1)
        index = OnexIndex.build(dataset, st=0.2, lengths=[8, 16, 32])
        raw = dataset[0].values * 1.0  # original scale
        grown = append_series(index, raw, normalized=False)
        assert float(grown.dataset[-1].values.max()) <= 1.0 + 1e-9

    def test_too_short_series_rejected(self, small_index):
        with pytest.raises(IndexConstructionError, match="shorter"):
            append_series(small_index, np.zeros(10) + 0.5, normalized=True)

    def test_spspace_recomputed(self, small_index):
        grown = append_series(
            small_index, np.linspace(0.0, 1.0, 24), normalized=True
        )
        assert grown.spspace.st == small_index.st
        assert grown.spspace.st_final >= grown.spspace.st_half

    def test_chained_appends(self, small_index):
        index = small_index
        for offset in (0.0, 0.3):
            index = append_series(
                index,
                np.clip(np.linspace(offset, offset + 0.5, 24), 0, 1),
                normalized=True,
            )
        assert len(index.dataset) == 14

    def test_append_with_off_grid_group_ids(self, small_dataset):
        """Groups whose ids are off the store grid must not abort the append.

        The persistence ``"ids"`` fallback can restore groups whose
        member ids do not address enumerable store rows (e.g. a start
        that is not a multiple of ``start_step``); those groups are
        carried through store-less instead of raising.
        """
        from repro.core.group import SimilarityGroup
        from repro.core.onex import OnexIndex
        from repro.data.timeseries import SubsequenceId

        index = OnexIndex.build(
            small_dataset,
            st=0.2,
            lengths=[6, 12],
            start_step=2,
            normalize=False,
            seed=0,
        )
        # Replace one group of the length-6 bucket with a store-less twin
        # holding an off-grid member (start=1 is not on the step-2 grid).
        bucket = index.rspace.bucket(6)
        ssid = SubsequenceId(0, 1, 6)
        values = index.dataset.subsequence(ssid)
        rogue = SimilarityGroup(6, ssid, values)
        rogue.finalize(
            np.stack([values]),
            envelope_radius=bucket.groups[0].envelope_radius,
        )
        from repro.core.rspace import LengthBucket, RSpace
        from repro.core.spspace import SPSpace

        patched = LengthBucket(
            length=6, groups=list(bucket.groups) + [rogue], store_view=None
        )
        rspace = RSpace({6: patched, 12: index.rspace.bucket(12)})
        index = OnexIndex(
            dataset=index.dataset,
            rspace=rspace,
            spspace=SPSpace(rspace, index.st),
            st=index.st,
            window=index.window,
            start_step=index.start_step,
            value_range=index.value_range,
        )
        new_series = np.clip(index.dataset[0].values + 0.01, 0.0, 1.0)
        grown = append_series(index, new_series, normalized=True)
        assert len(grown.dataset) == len(index.dataset) + 1
        # The off-grid member survived the append, in some group.
        assert any(
            ssid in group.member_ids
            for group in grown.rspace.bucket(6).groups
        )


class TestNProbe:
    def test_invalid_n_probe(self, small_index):
        with pytest.raises(QueryError):
            QueryProcessor(
                small_index.rspace, small_index.dataset, st=0.2, n_probe=0
            )

    def test_probe_one_matches_default(self, small_index):
        default = QueryProcessor(small_index.rspace, small_index.dataset, st=0.2)
        single = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, n_probe=1
        )
        query = small_index.dataset[3].values[2:14]
        a = default.best_match(query, length=12)[0]
        b = single.best_match(query, length=12)[0]
        assert a.ssid == b.ssid

    def test_more_probes_never_worse(self, small_index):
        narrow = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, n_probe=1
        )
        wide = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, n_probe=4
        )
        for series in range(4):
            query = small_index.dataset[series].values[1:13]
            a = narrow.best_match(query, length=12, stop_at_half_st=False)[0]
            b = wide.best_match(query, length=12, stop_at_half_st=False)[0]
            assert b.dtw_normalized <= a.dtw_normalized + 1e-9

    def test_probe_larger_than_groups(self, small_index):
        huge = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, n_probe=10_000
        )
        query = small_index.dataset[0].values[0:12]
        assert huge.best_match(query, length=12)

    def test_k_results_merged_across_groups(self, small_index):
        wide = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, n_probe=3
        )
        query = small_index.dataset[0].values[0:12]
        matches = wide.best_match(query, length=12, k=6)
        assert len({m.ssid for m in matches}) == len(matches)
        distances = [m.dtw_normalized for m in matches]
        assert distances == sorted(distances)


class TestClassifier:
    @pytest.fixture(scope="class")
    def trainset(self):
        dataset = make_dataset("ItalyPower", n_series=40, length=24, seed=21)
        series = [s.values for s in dataset]
        labels = [s.label for s in dataset]
        return series[:28], labels[:28], series[28:], labels[28:]

    def test_fit_predict_accuracy(self, trainset):
        train_x, train_y, test_x, test_y = trainset
        classifier = OnexKnnClassifier(st=0.2).fit(train_x, train_y)
        score = classifier.score(test_x, test_y)
        # The two ItalyPower classes are well separated; 1-NN should be
        # clearly better than the 50% coin flip.
        assert score >= 0.75

    def test_predict_one_returns_known_label(self, trainset):
        train_x, train_y, test_x, _ = trainset
        classifier = OnexKnnClassifier(st=0.2).fit(train_x, train_y)
        assert classifier.predict_one(test_x[0]) in set(train_y)

    def test_k3_majority(self, trainset):
        train_x, train_y, test_x, test_y = trainset
        classifier = OnexKnnClassifier(st=0.2, k=3).fit(train_x, train_y)
        assert classifier.score(test_x, test_y) >= 0.7

    def test_unfitted_rejected(self):
        with pytest.raises(QueryError, match="not fitted"):
            OnexKnnClassifier().predict_one(np.zeros(24))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            OnexKnnClassifier().fit([np.zeros(10) + 0.5, np.zeros(12) + 0.5], [1, 2])

    def test_labels_length_mismatch(self):
        with pytest.raises(DataError):
            OnexKnnClassifier().fit([np.zeros(10) + 0.5], [1, 2])

    def test_empty_training_set(self):
        with pytest.raises(DataError):
            OnexKnnClassifier().fit([], [])

    def test_bad_k(self):
        with pytest.raises(QueryError):
            OnexKnnClassifier(k=0)


class TestMotifs:
    def test_discovers_cross_series_patterns(self, small_index):
        motifs = discover_motifs(small_index, top_k=3)
        assert motifs
        for motif in motifs:
            assert len(motif) >= 3
            assert motif.n_series >= 2
            assert motif.representative.shape == (motif.length,)

    def test_scores_descending(self, small_index):
        motifs = discover_motifs(small_index, top_k=10)
        scores = [motif.score for motif in motifs]
        assert scores == sorted(scores, reverse=True)

    def test_length_restriction(self, small_index):
        motifs = discover_motifs(small_index, length=12, top_k=5)
        assert all(motif.length == 12 for motif in motifs)

    def test_min_series_filter(self, small_index):
        spread = discover_motifs(small_index, top_k=20, min_series=3)
        assert all(motif.n_series >= 3 for motif in spread)

    def test_min_occurrences_filter(self, small_index):
        motifs = discover_motifs(small_index, top_k=20, min_occurrences=10)
        assert all(len(motif) >= 10 for motif in motifs)

    def test_occurrences_mutually_similar(self, small_index):
        """Motif occurrences inherit Lemma 1's pairwise guarantee."""
        import math

        motif = discover_motifs(small_index, top_k=1)[0]
        values = [small_index.dataset.subsequence(s) for s in motif.occurrences]
        st = small_index.st
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                ned = float(np.linalg.norm(values[i] - values[j])) / math.sqrt(
                    motif.length
                )
                assert ned <= st * 2.0 + 1e-9

    def test_bad_parameters(self, small_index):
        with pytest.raises(QueryError):
            discover_motifs(small_index, top_k=0)
        with pytest.raises(QueryError):
            discover_motifs(small_index, min_occurrences=1)
