"""Property tests for the paper's theoretical foundation (§3).

Lemma 1: if two sequences are each within ``ST/2`` (normalized ED) of a
common representative, their pairwise normalized ED is within ``ST``.

Lemma 2 (the ED-DTW triangle inequality): for a group member ``Y'`` with
``ED̄(Y, Y') <= ST/2`` and a query ``X`` with ``DTW̄(X, Y) <= ST/2``,
``DTW̄(X, Y') <= ST``. This is the inequality that lets ONEX search
representatives instead of raw data; we verify it empirically over
random instances *constructed to satisfy the hypotheses*.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distances.dtw import dtw, normalized_dtw
from repro.distances.euclidean import normalized_euclidean

ST = 0.4

lengths = st.integers(min_value=2, max_value=16)
seeds = st.integers(min_value=0, max_value=10_000)


def _scale_to_ball(point: np.ndarray, center: np.ndarray, radius_norm: float) -> np.ndarray:
    """Project ``point`` into the normalized-ED ball around ``center``."""
    n = len(center)
    distance = normalized_euclidean(point, center)
    if distance <= radius_norm or distance == 0.0:
        return point
    return center + (point - center) * (radius_norm / distance) * 0.999


@given(n=lengths, seed=seeds)
@settings(max_examples=200, deadline=None)
def test_lemma1_pairwise_bound(n, seed):
    rng = np.random.default_rng(seed)
    representative = rng.normal(size=n)
    x = _scale_to_ball(rng.normal(size=n), representative, ST / 2)
    y = _scale_to_ball(rng.normal(size=n), representative, ST / 2)
    assert normalized_euclidean(x, representative) <= ST / 2 + 1e-9
    assert normalized_euclidean(y, representative) <= ST / 2 + 1e-9
    # Lemma 1's conclusion:
    assert normalized_euclidean(x, y) <= ST + 1e-9


@given(n=lengths, seed=seeds)
@settings(max_examples=200, deadline=None)
def test_lemma2_same_length(n, seed):
    """ED̄(Y,Y') <= ST/2 and DTW̄(X,Y) <= ST/2 imply DTW̄(X,Y') <= ST."""
    rng = np.random.default_rng(seed)
    representative = rng.normal(size=n)  # Y
    member = _scale_to_ball(rng.normal(size=n), representative, ST / 2)  # Y'
    query = rng.normal(size=n)  # X
    if normalized_dtw(query, representative) > ST / 2:
        # Shrink the query toward the representative until the DTW
        # hypothesis holds (DTW is continuous in its arguments).
        for _ in range(60):
            query = representative + (query - representative) * 0.8
            if normalized_dtw(query, representative) <= ST / 2:
                break
    assert normalized_dtw(query, representative) <= ST / 2 + 1e-9
    assert normalized_dtw(query, member) <= ST + 1e-9


@given(
    n=lengths,
    m=lengths,
    seed=seeds,
)
@settings(max_examples=150, deadline=None)
def test_lemma2_different_lengths(n, m, seed):
    """The different-length case of Lemma 2 (proof sketch in §3.2)."""
    rng = np.random.default_rng(seed)
    representative = rng.normal(size=n)
    member = _scale_to_ball(rng.normal(size=n), representative, ST / 2)
    query = rng.normal(size=m)
    for _ in range(80):
        if normalized_dtw(query, representative) <= ST / 2:
            break
        anchor = representative[: len(query)] if m <= n else np.resize(representative, m)
        query = anchor + (query - anchor) * 0.8
    else:
        return  # could not construct the hypothesis; vacuous instance
    assert normalized_dtw(query, member) <= ST + 1e-9


@given(n=lengths, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_ed_is_a_dtw_upper_bound(n, seed):
    """§2: ED's one-to-one alignment is one valid warping path."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    y = rng.normal(size=n)
    assert dtw(x, y) <= math.sqrt(float(np.sum((x - y) ** 2))) + 1e-9
