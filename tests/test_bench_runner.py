"""Tests for the benchmark runner and sweeps on a tiny custom config."""

from __future__ import annotations

import pytest

from repro.bench.datasets import BenchConfig
from repro.bench.runner import (
    BenchContext,
    build_context,
    clear_context_cache,
    get_context,
)
from repro.bench.sweeps import construction_sweep, tradeoff_sweep


@pytest.fixture(scope="module")
def tiny_context() -> BenchContext:
    config = BenchConfig(
        name="ItalyPower",
        n_series=10,
        length=24,
        lengths=(8, 16, 24),
        seed=77,
    )
    return build_context(config)


class TestBuildContext:
    def test_all_systems_share_the_enumeration(self, tiny_context):
        lengths = tiny_context.config.lengths
        assert tiny_context.index.rspace.lengths == sorted(lengths)
        assert tiny_context.brute.lengths == sorted(lengths)
        assert tiny_context.paa.lengths == sorted(lengths)
        assert tiny_context.trillion.lengths == sorted(lengths)

    def test_workload_has_twenty_queries(self, tiny_context):
        assert len(tiny_context.workload.queries) == 20

    def test_ground_truth_cached(self, tiny_context):
        first = tiny_context.exact_any
        second = tiny_context.exact_any
        assert first is second
        assert len(first) == 20
        assert all(value >= 0.0 for value in first)

    def test_same_length_truth_at_least_any_truth(self, tiny_context):
        # The any-length optimum ranges over a superset of candidates.
        for same, anyl in zip(
            tiny_context.exact_same, tiny_context.exact_any, strict=True
        ):
            assert anyl <= same + 1e-12

    def test_runs_cached_by_key(self, tiny_context):
        run_a = tiny_context.run_onex()
        run_b = tiny_context.run_onex()
        assert run_a is run_b
        run_s = tiny_context.run_onex(same_length=True)
        assert run_s is not run_a
        assert run_s.name == "ONEX-S"

    def test_method_run_statistics(self, tiny_context):
        run = tiny_context.run_baseline(tiny_context.trillion)
        assert len(run.distances) == 20
        assert run.mean_seconds > 0
        assert run.total_seconds == pytest.approx(
            sum(run.per_query_seconds)
        )

    def test_make_processor_overrides(self, tiny_context):
        processor = tiny_context.make_processor(n_probe=2, median_ordering=False)
        assert processor.n_probe == 2
        assert processor.median_ordering is False
        assert processor.st == tiny_context.index.st

    def test_context_cache_round_trip(self):
        clear_context_cache()
        first = get_context("ItalyPower")
        second = get_context("ItalyPower")
        assert first is second
        clear_context_cache()
        third = get_context("ItalyPower")
        assert third is not first
        clear_context_cache()


class TestSweeps:
    def test_construction_sweep_points(self):
        from repro.bench.sweeps import clear_sweep_caches

        clear_sweep_caches()
        points = construction_sweep("ItalyPower", st_grid=(0.1, 0.4))
        assert [point.st for point in points] == [0.1, 0.4]
        assert points[0].n_representatives >= points[1].n_representatives
        assert all(point.build_seconds > 0 for point in points)
        # cached: second call returns the same list object
        assert construction_sweep("ItalyPower", st_grid=(0.1, 0.4)) is points
        clear_sweep_caches()

    def test_tradeoff_sweep_points(self):
        from repro.bench.sweeps import clear_sweep_caches

        clear_sweep_caches()
        points = tradeoff_sweep("ItalyPower", st_grid=(0.2,))
        assert len(points) == 1
        assert 0.0 <= points[0].accuracy <= 100.0
        assert points[0].mean_query_seconds > 0
        clear_sweep_caches()
