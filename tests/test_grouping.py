"""Tests for Algorithm 1: similarity-group construction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.grouping import build_groups_for_length, regroup_members
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.exceptions import IndexConstructionError, ThresholdError


def _build(dataset, length, st=0.2, seed=0, start_step=1):
    return build_groups_for_length(
        dataset, length, st, np.random.default_rng(seed), start_step=start_step
    )


class TestCoverage:
    def test_every_subsequence_in_exactly_one_group(self, small_dataset):
        length = 12
        groups = _build(small_dataset, length)
        seen: set[SubsequenceId] = set()
        for group in groups:
            for ssid in group.member_ids:
                assert ssid not in seen, "subsequence appears in two groups"
                seen.add(ssid)
        expected = {
            ssid for ssid, _ in small_dataset.subsequences(length)
        }
        assert seen == expected

    def test_all_groups_share_the_length(self, small_dataset):
        for group in _build(small_dataset, 9):
            assert group.length == 9
            assert group.is_finalized

    def test_start_step_reduces_coverage(self, small_dataset):
        full = sum(g.count for g in _build(small_dataset, 12))
        strided = sum(g.count for g in _build(small_dataset, 12, start_step=3))
        assert strided < full


class TestAdmissionInvariant:
    def test_members_near_final_representative(self, small_dataset):
        """Members were admitted within sqrt(L)*ST/2 of the then-current
        representative; the running mean can drift, but the final spread
        must stay within a small factor of the admission radius."""
        st = 0.2
        length = 12
        threshold = math.sqrt(length) * st / 2.0
        for group in _build(small_dataset, length, st=st):
            assert group.ed_to_rep is not None
            assert group.ed_to_rep.max() <= threshold * 2.0

    def test_lemma1_holds_on_built_groups(self, small_dataset):
        """Empirical Lemma 1: pairwise normalized ED within ST inside
        every group (allowing the documented mean-drift slack)."""
        st = 0.2
        length = 12
        for group in _build(small_dataset, length, st=st):
            values = [small_dataset.subsequence(s) for s in group.member_ids]
            for i in range(len(values)):
                for j in range(i + 1, len(values)):
                    ned = float(
                        np.linalg.norm(values[i] - values[j])
                    ) / math.sqrt(length)
                    assert ned <= st * 2.0 + 1e-9

    def test_singleton_group_distance_zero(self):
        dataset = Dataset([[0.0, 0.0, 0.0, 0.0], [9.0, 9.0, 9.0, 9.0]])
        groups = _build(dataset, 4, st=0.2)
        assert len(groups) == 2
        for group in groups:
            assert group.ed_to_rep.max() == pytest.approx(0.0)


class TestThresholdBehaviour:
    def test_looser_threshold_fewer_groups(self, small_dataset):
        tight = len(_build(small_dataset, 12, st=0.05))
        loose = len(_build(small_dataset, 12, st=0.8))
        assert loose <= tight

    def test_huge_threshold_single_group(self, small_dataset):
        groups = _build(small_dataset, 12, st=100.0)
        assert len(groups) == 1

    @pytest.mark.parametrize("bad", [0.0, -0.1, float("nan"), float("inf")])
    def test_invalid_threshold_rejected(self, small_dataset, bad):
        with pytest.raises(ThresholdError):
            _build(small_dataset, 12, st=bad)


class TestDeterminism:
    def test_same_seed_same_groups(self, small_dataset):
        a = _build(small_dataset, 12, seed=5)
        b = _build(small_dataset, 12, seed=5)
        assert [g.member_ids for g in a] == [g.member_ids for g in b]

    def test_different_seed_may_differ_but_covers(self, small_dataset):
        a = _build(small_dataset, 12, seed=1)
        b = _build(small_dataset, 12, seed=2)
        assert sum(g.count for g in a) == sum(g.count for g in b)


class TestRegroupMembers:
    def test_partition_preserved(self, small_dataset):
        groups = _build(small_dataset, 12, st=0.3)
        biggest = max(groups, key=lambda g: g.count)
        members = [
            (ssid, small_dataset.subsequence(ssid)) for ssid in biggest.member_ids
        ]
        subgroups = regroup_members(
            members, 12, st=0.05, rng=np.random.default_rng(0)
        )
        regrouped = {s for g in subgroups for s in g.member_ids}
        assert regrouped == set(biggest.member_ids)
        assert len(subgroups) >= 1

    def test_empty_members_rejected(self):
        with pytest.raises(IndexConstructionError):
            regroup_members([], 4, 0.1, np.random.default_rng(0))


class TestErrors:
    def test_impossible_length(self, small_dataset):
        with pytest.raises(Exception):
            _build(small_dataset, 999)
