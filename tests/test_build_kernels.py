"""Property tests for the fused build kernel and the shm shard protocol.

The ISSUE-7 contracts:

* The fused ``build_assign`` kernel — dispatched through the backend
  registry into :meth:`GroupBuilder.build` — produces **bit-identical**
  groups to :func:`reference_build_groups_for_length` across random and
  adversarial inputs (constant windows, NaN-free extremes, >64-group
  capacity growth) and across its own chunk/snapshot-budget edge cases.
  Without numba installed, ``njit`` degrades to an identity decorator
  and ``prange`` to ``range``, so these tests exercise the exact kernel
  bodies as pure Python — the decisions under JIT compilation are the
  same code path.
* The shared-memory shard return round-trips bit-identically to the
  legacy pickle transport, and its descriptor carries **no ndarrays** —
  only scalars plus the shm block name.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import parallel
from repro.core.grouping import (
    GroupBuilder,
    build_groups_for_length,
    reference_build_groups_for_length,
)
from repro.core.parallel import (
    ShardDescriptor,
    _build_shard,
    _restore_shard,
    build_shards_parallel,
)
from repro.data.dataset import Dataset
from repro.data.store import SubsequenceStore
from repro.data.timeseries import TimeSeries
from repro.distances import backend as backend_mod
from repro.distances import kernels_numba

ST = 0.2


@pytest.fixture
def kernel_backend():
    """Activate a backend whose ``build_assign`` is the fused kernel.

    The numpy backend deliberately ships no build kernel, so without
    numba installed the dispatch path would never run; this registers a
    clone that binds the (pure-Python-executable) kernel body, which is
    exactly what the numba backend dispatches when available.
    """
    base = backend_mod.resolve_backend("numpy")
    clone = dataclasses.replace(
        base, name="build-kernel-test", build_assign=kernels_numba.build_assign
    )
    backend_mod.register_backend("build-kernel-test", lambda: clone)
    backend_mod.set_backend("build-kernel-test")
    yield clone
    backend_mod.set_backend(None)


def _assert_identical(kernel_groups, reference_groups):
    assert len(kernel_groups) == len(reference_groups)
    for kernel_group, reference_group in zip(
        kernel_groups, reference_groups, strict=True
    ):
        assert kernel_group.member_ids == reference_group.member_ids
        assert np.array_equal(kernel_group.ed_to_rep, reference_group.ed_to_rep)
        assert np.array_equal(
            kernel_group.representative, reference_group.representative
        )


class TestKernelBitIdentity:
    """Fused kernel vs the reference loop, through the real dispatch."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("start_step", [1, 2])
    def test_small_dataset(self, kernel_backend, small_dataset, seed, start_step):
        kernel = build_groups_for_length(
            small_dataset, 12, ST, np.random.default_rng(seed),
            start_step=start_step,
        )
        reference = reference_build_groups_for_length(
            small_dataset, 12, ST, np.random.default_rng(seed),
            start_step=start_step,
        )
        _assert_identical(kernel, reference)

    @pytest.mark.parametrize("st", [0.05, 0.2, 0.8])
    def test_thresholds(self, kernel_backend, ecg_dataset, st):
        kernel = build_groups_for_length(
            ecg_dataset, 24, st, np.random.default_rng(3)
        )
        reference = reference_build_groups_for_length(
            ecg_dataset, 24, st, np.random.default_rng(3)
        )
        _assert_identical(kernel, reference)

    def test_constant_windows(self, kernel_backend):
        """Every window identical: one group, pure tie-breaking."""
        dataset = Dataset(
            [TimeSeries(np.full(32, 0.25), name="flat")], name="const"
        )
        kernel = build_groups_for_length(
            dataset, 8, ST, np.random.default_rng(0)
        )
        reference = reference_build_groups_for_length(
            dataset, 8, ST, np.random.default_rng(0)
        )
        _assert_identical(kernel, reference)
        assert len(kernel) == 1

    def test_nan_free_extremes(self, kernel_backend):
        """Huge magnitudes stress the shortlist's squared-norm algebra."""
        rng = np.random.default_rng(9)
        values = rng.choice([-1e100, -1.0, 0.0, 1.0, 1e100], size=64)
        dataset = Dataset([TimeSeries(values, name="extreme")], name="ext")
        kernel = build_groups_for_length(
            dataset, 6, ST, np.random.default_rng(2)
        )
        reference = reference_build_groups_for_length(
            dataset, 6, ST, np.random.default_rng(2)
        )
        _assert_identical(kernel, reference)

    def test_capacity_growth_past_initial_cap(self, kernel_backend):
        """A tiny threshold forces >64 groups, crossing the kernel's
        internal capacity doubling (initial cap 64)."""
        rng = np.random.default_rng(4)
        dataset = Dataset(
            [TimeSeries(rng.normal(0, 1, 200), name="noise")], name="many"
        )
        kernel = build_groups_for_length(
            dataset, 4, 1e-6, np.random.default_rng(5)
        )
        reference = reference_build_groups_for_length(
            dataset, 4, 1e-6, np.random.default_rng(5)
        )
        _assert_identical(kernel, reference)
        assert len(kernel) > 64

    def test_dispatch_records_backend_name(self, kernel_backend, small_dataset):
        store = SubsequenceStore(small_dataset)
        builder = GroupBuilder(12, ST)
        builder.build(store.view(12), np.random.default_rng(0))
        assert builder.last_assign_backend == "build-kernel-test"
        assert builder.last_assign_seconds > 0.0

    def test_minibatch_mode_keeps_numpy_path(self, kernel_backend, small_dataset):
        """The fused kernel is sequential-mode only (minibatch's BLAS
        snapshot assignment is a different, documented deviation)."""
        store = SubsequenceStore(small_dataset)
        builder = GroupBuilder(12, ST, assign_mode="minibatch")
        builder.build(store.view(12), np.random.default_rng(0))
        assert builder.last_assign_backend == "numpy"


class TestKernelChunkEdges:
    """The raw kernel across chunk / snapshot-budget boundaries."""

    @pytest.fixture(scope="class")
    def inputs(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        view = store.view(12)
        order = np.random.default_rng(1).permutation(view.n_rows)
        threshold = GroupBuilder(12, ST).threshold
        return view, order, threshold

    def _run(self, inputs, **kwargs):
        view, order, threshold = inputs
        return kernels_numba.build_assign(
            view.flat_windows,
            view.window_rows,
            view.sq_norms(),
            order,
            threshold,
            **kwargs,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk": 1},
            {"chunk": 10**6},
            {"chunk": 7},
            {"snapshot_budget": 1},
            {"chunk": 3, "snapshot_budget": 2},
        ],
    )
    def test_chunking_never_changes_decisions(self, inputs, kwargs):
        base_assign, base_sums, base_counts = self._run(inputs)
        assign, sums, counts = self._run(inputs, **kwargs)
        assert np.array_equal(assign, base_assign)
        assert np.array_equal(sums, base_sums)
        assert np.array_equal(counts, base_counts)

    def test_counts_match_assignments(self, inputs):
        assign, sums, counts = self._run(inputs)
        assert counts.sum() == assign.shape[0]
        assert np.array_equal(np.bincount(assign), counts)


class TestShardResultProtocol:
    """Shared-memory shard returns: descriptor purity + round-trip."""

    @pytest.fixture
    def worker_store(self, small_dataset):
        """Run the worker-side entry points in-process."""
        store = SubsequenceStore(small_dataset)
        previous = parallel._WORKER_STORE
        parallel._WORKER_STORE = store
        yield store
        parallel._WORKER_STORE = previous

    def test_descriptor_carries_no_arrays(self, worker_store):
        order = np.random.default_rng(0).permutation(
            worker_store.view(12).n_rows
        )
        outcome = _build_shard(12, order, ST, "sequential", None, "shm")
        assert isinstance(outcome, ShardDescriptor)
        for field in dataclasses.fields(outcome):
            value = getattr(outcome, field.name)
            assert not isinstance(value, np.ndarray), (
                f"descriptor field {field.name} leaked an ndarray into "
                "the pickle channel"
            )
            assert isinstance(value, (int, float, str))
        # Clean up the block the parent would normally consume.
        restored = _restore_shard(outcome, worker_store)
        assert restored.transport == "shm"

    def test_shm_round_trip_equals_pickle(self, worker_store):
        order = np.random.default_rng(0).permutation(
            worker_store.view(12).n_rows
        )
        descriptor = _build_shard(12, order, ST, "sequential", None, "shm")
        via_shm = _restore_shard(descriptor, worker_store)
        via_pickle = _build_shard(12, order, ST, "sequential", None, "pickle")
        assert via_shm.n_rows == via_pickle.n_rows
        assert len(via_shm.groups) == len(via_pickle.groups)
        for shm_group, pickle_group in zip(
            via_shm.groups, via_pickle.groups, strict=True
        ):
            assert shm_group.member_ids == pickle_group.member_ids
            assert np.array_equal(shm_group.ed_to_rep, pickle_group.ed_to_rep)
            assert np.array_equal(
                shm_group.representative, pickle_group.representative
            )
            assert np.array_equal(
                shm_group.member_rows, pickle_group.member_rows
            )
            # The restored running sum is the worker's exact sum, not a
            # representative * count reconstruction.
            assert np.array_equal(
                shm_group.member_sum, pickle_group.member_sum
            )

    def test_transports_agree_through_the_pool(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        grid = [8, 12]
        rng = np.random.default_rng(3)
        orders = {
            length: rng.permutation(store.view(length).n_rows)
            for length in grid
        }
        kwargs = dict(st=ST, n_jobs=2)
        via_shm = build_shards_parallel(
            store, grid, orders, result_transport="shm", **kwargs
        )
        via_pickle = build_shards_parallel(
            store, grid, orders, result_transport="pickle", **kwargs
        )
        for length in grid:
            _assert_identical(
                via_shm[length].groups, via_pickle[length].groups
            )
            assert via_shm[length].transport == "shm"
            assert via_pickle[length].transport == "pickle"

    def test_unknown_transport_rejected(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        from repro.exceptions import IndexConstructionError

        with pytest.raises(IndexConstructionError, match="result_transport"):
            build_shards_parallel(
                store, [12], {12: np.arange(store.view(12).n_rows)},
                st=ST, result_transport="msgpack",
            )
