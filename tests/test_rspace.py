"""Tests for LengthBucket / RSpace (paper Defs. 9-10, §4.3 GTI payload)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.grouping import build_groups_for_length
from repro.core.rspace import LengthBucket, RSpace
from repro.distances.euclidean import normalized_euclidean
from repro.exceptions import IndexConstructionError, QueryError


@pytest.fixture
def bucket(small_dataset) -> LengthBucket:
    groups = build_groups_for_length(
        small_dataset, 12, 0.2, np.random.default_rng(0)
    )
    return LengthBucket(length=12, groups=groups)


@pytest.fixture
def rspace(small_index) -> RSpace:
    return small_index.rspace


class TestLengthBucket:
    def test_rep_matrix_rows_match_groups(self, bucket):
        assert bucket.rep_matrix.shape == (bucket.n_groups, 12)
        for row, group in zip(bucket.rep_matrix, bucket.groups, strict=True):
            assert np.allclose(row, group.representative)

    def test_dc_matches_pairwise_normalized_ed(self, bucket):
        for i in range(min(5, bucket.n_groups)):
            for j in range(min(5, bucket.n_groups)):
                expected = normalized_euclidean(
                    bucket.groups[i].representative,
                    bucket.groups[j].representative,
                )
                # The bucket computes Dc via the expanded-norm formula,
                # which loses ~1e-8 near zero to cancellation.
                assert bucket.dc[i, j] == pytest.approx(expected, abs=1e-6)

    def test_dc_symmetric_zero_diagonal(self, bucket):
        assert np.allclose(bucket.dc, bucket.dc.T)
        assert np.allclose(np.diag(bucket.dc), 0.0)

    def test_sum_order_sorted(self, bucket):
        sums = bucket.dc_row_sums[bucket.sum_order]
        assert all(sums[i] <= sums[i + 1] for i in range(len(sums) - 1))

    def test_median_out_order_is_permutation(self, bucket):
        order = list(bucket.median_out_order())
        assert sorted(order) == list(range(bucket.n_groups))

    def test_median_out_starts_at_median(self, bucket):
        order = list(bucket.median_out_order())
        expected_first = int(bucket.sum_order[bucket.n_groups // 2])
        assert order[0] == expected_first

    def test_group_of_bounds(self, bucket):
        assert bucket.group_of(0) is bucket.groups[0]
        with pytest.raises(QueryError):
            bucket.group_of(bucket.n_groups)

    def test_requires_finalized_groups(self, small_dataset):
        from repro.core.group import SimilarityGroup
        from repro.data.timeseries import SubsequenceId

        raw = SimilarityGroup(4, SubsequenceId(0, 0, 4), np.zeros(4))
        with pytest.raises(IndexConstructionError):
            LengthBucket(length=4, groups=[raw])

    def test_rejects_wrong_length_group(self, bucket):
        with pytest.raises(IndexConstructionError):
            LengthBucket(length=13, groups=bucket.groups)

    def test_rejects_empty(self):
        with pytest.raises(IndexConstructionError):
            LengthBucket(length=4, groups=[])

    def test_n_subsequences(self, bucket):
        assert bucket.n_subsequences == sum(g.count for g in bucket.groups)


class TestRSpace:
    def test_lengths_sorted(self, rspace):
        assert rspace.lengths == sorted(rspace.lengths)

    def test_contains_and_lookup(self, rspace):
        length = rspace.lengths[0]
        assert length in rspace
        assert rspace.bucket(length).length == length

    def test_unknown_length_raises(self, rspace):
        with pytest.raises(QueryError, match="not indexed"):
            rspace.bucket(9999)

    def test_counts_aggregate(self, rspace):
        assert rspace.n_groups == sum(bucket.n_groups for bucket in rspace)
        assert rspace.n_representatives == rspace.n_groups
        assert rspace.n_subsequences == sum(
            bucket.n_subsequences for bucket in rspace
        )

    def test_rejects_empty(self):
        with pytest.raises(IndexConstructionError):
            RSpace({})

    def test_search_length_order_exact(self, rspace):
        lengths = rspace.lengths  # [6, 12, 18, 24]
        order = rspace.search_length_order(18)
        # Own length first, then decreasing, then increasing (§5.3).
        assert order == [18, 12, 6, 24]

    def test_search_length_order_unindexed_starts_nearest(self, rspace):
        order = rspace.search_length_order(13)
        assert order[0] == 12
        assert sorted(order) == rspace.lengths

    def test_search_length_order_extremes(self, rspace):
        assert rspace.search_length_order(6)[0] == 6
        assert rspace.search_length_order(24)[0] == 24
        assert rspace.search_length_order(1)[0] == 6
        assert rspace.search_length_order(10_000)[0] == 24
