"""Shared fixtures for the test suite.

Heavier fixtures (built indexes) are session-scoped: the suite treats
them as read-only. Tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.data.dataset import Dataset
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.data.timeseries import TimeSeries


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A tiny, normalized ItalyPower-like dataset (12 series x 24 points)."""
    return min_max_normalize_dataset(
        make_dataset("ItalyPower", n_series=12, length=24, seed=7)
    )


@pytest.fixture(scope="session")
def small_index(small_dataset: Dataset) -> OnexIndex:
    """An index over ``small_dataset`` with a small explicit length grid."""
    return OnexIndex.build(
        small_dataset,
        st=0.2,
        lengths=[6, 12, 18, 24],
        normalize=False,
        seed=0,
    )


@pytest.fixture(scope="session")
def ecg_dataset() -> Dataset:
    """A normalized ECG-like dataset with longer series (10 x 64)."""
    return min_max_normalize_dataset(
        make_dataset("ECG", n_series=10, length=64, seed=11)
    )


@pytest.fixture(scope="session")
def ecg_index(ecg_dataset: Dataset) -> OnexIndex:
    return OnexIndex.build(
        ecg_dataset,
        st=0.2,
        lengths=[16, 32, 48, 64],
        normalize=False,
        seed=0,
    )


@pytest.fixture
def tiny_dataset() -> Dataset:
    """Four deterministic hand-written series (length 8), unnormalized."""
    return Dataset(
        [
            TimeSeries([0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7], name="ramp"),
            TimeSeries([0.0, 0.5, 0.0, 0.5, 0.0, 0.5, 0.0, 0.5], name="zigzag"),
            TimeSeries([0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0], name="fall"),
            TimeSeries([0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3], name="flat"),
        ],
        name="tiny",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def naive_dtw(x: np.ndarray, y: np.ndarray) -> float:
    """Obviously correct unconstrained DTW used as the test oracle."""
    import math

    n, m = len(x), len(y)
    table = np.full((n, m), np.inf)
    for i in range(n):
        for j in range(m):
            cost = (x[i] - y[j]) ** 2
            if i == 0 and j == 0:
                table[i, j] = cost
                continue
            best = np.inf
            if i > 0:
                best = min(best, table[i - 1, j])
            if j > 0:
                best = min(best, table[i, j - 1])
            if i > 0 and j > 0:
                best = min(best, table[i - 1, j - 1])
            table[i, j] = cost + best
    return math.sqrt(table[n - 1, m - 1])
