"""End-to-end contract of ``onex lint`` / ``python -m repro.analysis``.

Pins the exit-code contract the CI step relies on: a clean tree exits
0, a tree with a seeded violation exits 1 and names the rule code, a
usage error exits 2 — plus the repo-is-clean invariant itself (the
whole point of the suite: the current tree must pass its own checker).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.analysis import all_rules, run_lint
from repro.cli import main as cli_main

PACKAGE_DIR = Path(repro.__file__).resolve().parent
SRC_DIR = PACKAGE_DIR.parent


def _run_module(args: list[str], cwd: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(cwd or SRC_DIR),
        check=False,
    )


class TestRepoIsClean:
    def test_checker_runs_clean_on_the_real_tree(self):
        report = run_lint([PACKAGE_DIR])
        assert report.files_checked > 80
        assert report.diagnostics == []
        # The audited benign races / scratch writes stay visible.
        assert len(report.suppressed) >= 4
        suppressed_codes = {d.code for d in report.suppressed}
        assert "ONEX301" in suppressed_codes
        assert "ONEX401" in suppressed_codes

    def test_cli_lint_subcommand_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_every_rule_family_is_registered(self):
        families = {code[:5] for code in all_rules()}
        assert {"ONEX1", "ONEX2", "ONEX3", "ONEX4", "ONEX9"} <= families


class TestExitCodeContract:
    def test_clean_tree_exits_zero(self):
        result = _run_module([str(PACKAGE_DIR)])
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_exits_one_with_code(self, tmp_path):
        bad = tmp_path / "repro" / "distances" / "impure.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            textwrap.dedent(
                """\
                import numpy as np

                def quantize(x):
                    return x.astype(np.float32)
                """
            ),
            encoding="utf-8",
        )
        result = _run_module([str(tmp_path)])
        assert result.returncode == 1
        assert "ONEX101" in result.stdout

    def test_usage_error_exits_two(self, tmp_path):
        assert _run_module(["--select", "NOPE42"]).returncode == 2
        assert _run_module([str(tmp_path / "missing")]).returncode == 2

    def test_unparsable_file_reports_onex900(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n", encoding="utf-8")
        result = _run_module([str(tmp_path)])
        assert result.returncode == 1
        assert "ONEX900" in result.stdout


class TestJsonReport:
    def test_json_artifact_shape(self, tmp_path):
        out = tmp_path / "lint.json"
        assert cli_main(["lint", str(PACKAGE_DIR), "--json", str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["files_checked"] > 80
        assert payload["diagnostics"] == []
        assert {"ONEX101", "ONEX301", "ONEX401"} <= set(payload["rules"])
        for entry in payload["suppressed"]:
            assert {"path", "line", "col", "code", "message"} <= set(entry)

    def test_select_filters_codes(self, tmp_path):
        bad = tmp_path / "repro" / "serve" / "twobad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from repro.distances import kernels_numba\n"
            "from repro.distances.dtw import _dtw_squared\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], select={"ONEX202"})
        assert [d.code for d in report.diagnostics] == ["ONEX202"]

    def test_list_rules_names_every_code(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rules():
            assert code in out
