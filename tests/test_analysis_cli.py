"""End-to-end contract of ``onex lint`` / ``python -m repro.analysis``.

Pins the exit-code contract the CI step relies on: a clean tree exits
0, a tree with a seeded violation exits 1 and names the rule code, a
usage error (including a malformed baseline) exits 2 — plus the
repo-is-clean invariant itself (the whole point of the suite: the
current tree must pass its own checker, modulo the checked-in
baseline), the version-2 JSON artifact shape, the baseline workflow,
and SARIF 2.1.0 output validity.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import all_rules, run_lint
from repro.cli import main as cli_main

PACKAGE_DIR = Path(repro.__file__).resolve().parent
SRC_DIR = PACKAGE_DIR.parent
REPO_ROOT = SRC_DIR.parent

_BAD_SNIPPET = """\
import numpy as np

def quantize(x):
    return x.astype(np.float32)
"""


def _run_module(args: list[str], cwd: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(cwd or SRC_DIR),
        check=False,
    )


def _seed_violation(tmp_path: Path) -> Path:
    bad = tmp_path / "repro" / "distances" / "impure.py"
    bad.parent.mkdir(parents=True, exist_ok=True)
    bad.write_text(_BAD_SNIPPET, encoding="utf-8")
    return bad


class TestRepoIsClean:
    def test_checker_runs_clean_on_the_real_tree(self):
        report = run_lint([PACKAGE_DIR])
        assert report.files_checked > 80
        assert report.diagnostics == []
        # The audited benign races / scratch writes stay visible.
        assert len(report.suppressed) >= 4
        suppressed_codes = {d.code for d in report.suppressed}
        assert "ONEX301" in suppressed_codes
        assert "ONEX401" in suppressed_codes

    def test_default_scan_covers_sibling_trees_and_is_clean(self):
        # No args: src plus tests/benchmarks/scripts. The run must stay
        # clean modulo the checked-in baseline (discovered at the repo
        # root), pinning the baseline workflow end to end.
        result = _run_module([], cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr
        files_checked = int(result.stdout.split("checked ")[1].split(" ")[0])
        assert files_checked > 150  # src alone is ~100 files

    def test_cli_lint_subcommand_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_every_rule_family_is_registered(self):
        families = {code[:5] for code in all_rules()}
        assert {
            "ONEX1",
            "ONEX2",
            "ONEX3",
            "ONEX4",
            "ONEX5",
            "ONEX6",
            "ONEX7",
            "ONEX9",
        } <= families


class TestExitCodeContract:
    def test_clean_tree_exits_zero(self):
        result = _run_module([str(PACKAGE_DIR)])
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_exits_one_with_code(self, tmp_path):
        _seed_violation(tmp_path)
        result = _run_module([str(tmp_path)])
        assert result.returncode == 1
        assert "ONEX101" in result.stdout

    def test_usage_error_exits_two(self, tmp_path):
        assert _run_module(["--select", "NOPE42"]).returncode == 2
        assert _run_module([str(tmp_path / "missing")]).returncode == 2

    def test_unparsable_file_reports_onex900(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n", encoding="utf-8")
        result = _run_module([str(tmp_path)])
        assert result.returncode == 1
        assert "ONEX900" in result.stdout


class TestJsonReport:
    def test_json_artifact_shape(self, tmp_path):
        out = tmp_path / "lint.json"
        assert cli_main(["lint", str(PACKAGE_DIR), "--json", str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert payload["files_checked"] > 80
        assert payload["diagnostics"] == []
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []
        assert {
            "ONEX101",
            "ONEX301",
            "ONEX401",
            "ONEX501",
            "ONEX601",
            "ONEX701",
        } <= set(payload["rules"])
        for entry in payload["suppressed"]:
            assert {"path", "line", "col", "code", "message"} <= set(entry)

    def test_select_filters_codes(self, tmp_path):
        bad = tmp_path / "repro" / "serve" / "twobad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from repro.distances import kernels_numba\n"
            "from repro.distances.dtw import _dtw_squared\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], select={"ONEX202"})
        assert [d.code for d in report.diagnostics] == ["ONEX202"]

    def test_list_rules_names_every_code(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rules():
            assert code in out

    def test_report_schema_checker_accepts_the_artifact(self, tmp_path):
        out = tmp_path / "lint.json"
        assert cli_main(["lint", str(PACKAGE_DIR), "--json", str(out)]) == 0
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_lint_report.py"),
                str(out),
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_report_schema_checker_rejects_drift(self, tmp_path):
        out = tmp_path / "lint.json"
        out.write_text(json.dumps({"version": 1}), encoding="utf-8")
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_lint_report.py"),
                str(out),
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode != 0


class TestBaseline:
    def _baseline(self, tmp_path: Path, entries: list[dict]) -> Path:
        path = tmp_path / "lint-baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": entries}), encoding="utf-8"
        )
        return path

    def test_baselined_finding_does_not_fail_the_run(self, tmp_path):
        _seed_violation(tmp_path)
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "code": "ONEX101",
                    "path": "repro/distances/impure.py",
                    "justification": "legacy float32 cast, tracked in #42",
                }
            ],
        )
        result = _run_module(
            [str(tmp_path), "--baseline", str(baseline)]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "1 baselined" in result.stdout

    def test_baseline_is_discovered_from_cwd(self, tmp_path):
        _seed_violation(tmp_path)
        self._baseline(
            tmp_path,
            [
                {
                    "code": "ONEX101",
                    "path": "repro/distances/impure.py",
                    "justification": "legacy float32 cast, tracked in #42",
                }
            ],
        )
        assert _run_module([str(tmp_path)], cwd=tmp_path).returncode == 0

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        _seed_violation(tmp_path)
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "code": "ONEX102",
                    "path": "repro/distances/other.py",
                    "justification": "unrelated entry",
                }
            ],
        )
        result = _run_module([str(tmp_path), "--baseline", str(baseline)])
        assert result.returncode == 1
        assert "ONEX101" in result.stdout
        assert "stale baseline entry" in result.stdout

    def test_no_baseline_flag_fails_on_grandfathered_finding(self, tmp_path):
        _seed_violation(tmp_path)
        self._baseline(
            tmp_path,
            [
                {
                    "code": "ONEX101",
                    "path": "repro/distances/impure.py",
                    "justification": "grandfathered",
                }
            ],
        )
        result = _run_module(
            [str(tmp_path), "--no-baseline"], cwd=tmp_path
        )
        assert result.returncode == 1

    def test_missing_justification_is_a_usage_error(self, tmp_path):
        _seed_violation(tmp_path)
        baseline = self._baseline(
            tmp_path,
            [{"code": "ONEX101", "path": "repro/distances/impure.py"}],
        )
        result = _run_module([str(tmp_path), "--baseline", str(baseline)])
        assert result.returncode == 2
        assert "justification" in result.stderr

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        baseline = tmp_path / "lint-baseline.json"
        baseline.write_text("[]", encoding="utf-8")
        result = _run_module(
            [str(PACKAGE_DIR), "--baseline", str(baseline)]
        )
        assert result.returncode == 2

    def test_checked_in_baseline_entries_are_all_justified(self):
        payload = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["version"] == 1
        for entry in payload["entries"]:
            assert entry["justification"].strip()


def _validate_sarif_structure(log: dict) -> None:
    """Structural SARIF 2.1.0 check that works without jsonschema."""
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert isinstance(log["runs"], list) and log["runs"]
    for run in log["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"] == "onex-lint"
        assert isinstance(driver["rules"], list)
        rule_ids = set()
        for rule in driver["rules"]:
            assert rule["id"].startswith("ONEX")
            assert rule["shortDescription"]["text"]
            rule_ids.add(rule["id"])
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in {
                "none",
                "note",
                "warning",
                "error",
            }
            assert isinstance(result["message"]["text"], str)
            for location in result["locations"]:
                region = location["physicalLocation"]["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
                uri = location["physicalLocation"]["artifactLocation"]["uri"]
                assert "\\" not in uri
            for suppression in result.get("suppressions", []):
                assert suppression["kind"] in {"inSource", "external"}


class TestSarif:
    def _sarif_for(self, tmp_path: Path, args: list[str]) -> dict:
        out = tmp_path / "lint.sarif"
        result = _run_module([*args, "--sarif", str(out)])
        assert out.is_file(), result.stdout + result.stderr
        return json.loads(out.read_text(encoding="utf-8"))

    def test_real_tree_sarif_is_structurally_valid(self, tmp_path):
        log = self._sarif_for(tmp_path, [str(PACKAGE_DIR)])
        _validate_sarif_structure(log)
        # Suppressed findings surface as inSource suppressions.
        kinds = {
            suppression["kind"]
            for run in log["runs"]
            for result in run["results"]
            for suppression in result.get("suppressions", [])
        }
        assert "inSource" in kinds

    def test_seeded_violation_becomes_an_error_result(self, tmp_path):
        _seed_violation(tmp_path)
        log = self._sarif_for(tmp_path, [str(tmp_path), "--no-baseline"])
        _validate_sarif_structure(log)
        results = [
            result
            for run in log["runs"]
            for result in run["results"]
            if "suppressions" not in result
        ]
        assert any(r["ruleId"] == "ONEX101" for r in results)

    def test_baselined_finding_carries_external_suppression(self, tmp_path):
        _seed_violation(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "code": "ONEX101",
                            "path": "repro/distances/impure.py",
                            "justification": "tracked in #42",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        log = self._sarif_for(
            tmp_path, [str(tmp_path), "--baseline", str(baseline)]
        )
        _validate_sarif_structure(log)
        suppressions = [
            suppression
            for run in log["runs"]
            for result in run["results"]
            for suppression in result.get("suppressions", [])
            if suppression["kind"] == "external"
        ]
        assert suppressions
        assert suppressions[0]["justification"] == "tracked in #42"

    def test_sarif_validates_against_vendored_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(
            (
                REPO_ROOT / "tests" / "data" / "sarif-2.1.0-subset.schema.json"
            ).read_text(encoding="utf-8")
        )
        log = self._sarif_for(tmp_path, [str(PACKAGE_DIR)])
        jsonschema.validate(instance=log, schema=schema)
