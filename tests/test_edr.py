"""Tests for the EDR distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances.edr import edr, normalized_edr
from repro.exceptions import DistanceError

vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=16
)


class TestEDR:
    def test_identical_sequences_zero(self):
        x = np.arange(6.0)
        assert edr(x, x, epsilon=0.0) == 0

    def test_single_substitution(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 9.0, 3.0])
        assert edr(x, y, epsilon=0.1) == 1

    def test_length_difference_costs_insertions(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 2.0])
        assert edr(x, y, epsilon=0.1) == 2

    def test_epsilon_widens_matches(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.2, 2.2, 3.2])
        assert edr(x, y, epsilon=0.1) == 3
        assert edr(x, y, epsilon=0.5) == 0

    def test_outlier_costs_at_most_one(self):
        """The robustness EDR is known for: a wild value is one edit."""
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 1_000_000.0, 3.0])
        assert edr(x, y, epsilon=0.1) == 1

    @given(vectors, vectors)
    @settings(max_examples=80, deadline=None)
    def test_property_bounds(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        value = edr(x, y, epsilon=0.5)
        assert abs(len(x) - len(y)) <= value <= max(len(x), len(y))

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert edr(x, y) == edr(y, x)

    @given(vectors, vectors, vectors)
    @settings(max_examples=40, deadline=None)
    def test_property_triangle_with_unit_costs(self, a, b, c):
        """EDR with epsilon=0 is a true edit distance, hence a metric."""
        x, y, z = np.asarray(a), np.asarray(b), np.asarray(c)
        assert edr(x, z, epsilon=0.0) <= edr(x, y, epsilon=0.0) + edr(
            y, z, epsilon=0.0
        )

    def test_empty_rejected(self):
        with pytest.raises(DistanceError):
            edr(np.array([]), np.array([1.0]))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(DistanceError):
            edr(np.arange(3.0), np.arange(3.0), epsilon=-0.1)


class TestNormalizedEDR:
    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_unit_interval(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert 0.0 <= normalized_edr(x, y) <= 1.0

    def test_registry_exposure(self):
        from repro.distances.registry import get_distance

        assert get_distance("edr")(np.arange(4.0), np.arange(4.0)) == 0.0
