"""Tests for the normalization schemes (paper §6.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.dataset import Dataset
from repro.data.normalize import (
    min_max_normalize,
    min_max_normalize_dataset,
    min_max_normalize_per_series,
    z_normalize,
    z_normalize_dataset,
)
from repro.exceptions import DataError

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMinMax:
    def test_maps_extremes_to_unit_interval(self):
        out = min_max_normalize(np.array([2.0, 4.0, 6.0]), 2.0, 6.0)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_constant_range_maps_to_zero(self):
        out = min_max_normalize(np.array([3.0, 3.0]), 3.0, 3.0)
        assert out.tolist() == [0.0, 0.0]

    def test_inverted_range_rejected(self):
        with pytest.raises(DataError):
            min_max_normalize(np.array([1.0]), 2.0, 1.0)

    def test_dataset_level_uses_global_extrema(self):
        dataset = Dataset([[0.0, 5.0], [10.0, 5.0]])
        normalized = min_max_normalize_dataset(dataset)
        # Global min 0, max 10: series keep their relative offsets.
        assert normalized[0].values.tolist() == [0.0, 0.5]
        assert normalized[1].values.tolist() == [1.0, 0.5]

    def test_per_series_rescales_each(self):
        dataset = Dataset([[0.0, 5.0], [10.0, 20.0]])
        normalized = min_max_normalize_per_series(dataset)
        assert normalized[0].values.tolist() == [0.0, 1.0]
        assert normalized[1].values.tolist() == [0.0, 1.0]

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_property_output_in_unit_interval(self, values):
        dataset = Dataset([values])
        out = min_max_normalize_dataset(dataset)[0].values
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_property_monotone(self, values):
        """The affine map never inverts an ordering (ties may appear when
        values differ by less than float precision of the scaled range)."""
        array = np.asarray(values)
        out = min_max_normalize(array, float(array.min()), float(array.max()))
        for i in range(len(values)):
            for j in range(len(values)):
                if array[i] < array[j]:
                    assert out[i] <= out[j] + 1e-12


class TestZNormalize:
    def test_zero_mean_unit_std(self):
        out = z_normalize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert abs(out.mean()) < 1e-12
        assert abs(out.std() - 1.0) < 1e-12

    def test_constant_series_becomes_zero(self):
        out = z_normalize(np.array([5.0, 5.0, 5.0]))
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_dataset_level(self):
        dataset = Dataset([[1.0, 3.0], [10.0, 30.0]])
        normalized = z_normalize_dataset(dataset)
        for series in normalized:
            assert abs(series.values.mean()) < 1e-12

    @given(st.lists(finite_floats, min_size=3, max_size=30))
    def test_property_shift_and_scale_invariant(self, values):
        array = np.asarray(values)
        base = z_normalize(array)
        if array.std() > 1e-5:
            # A near-degenerate spread (std within a few ulps of the
            # shift magnitude) is destroyed by catastrophic cancellation
            # when 123.0 is added, so invariance only holds above it.
            shifted = z_normalize(array + 123.0)
            assert np.allclose(base, shifted, atol=1e-8)
        scaled = z_normalize(array * 7.0)
        if array.std() > 1e-9:  # degenerate series stay all-zero
            assert np.allclose(base, scaled, atol=1e-6)
