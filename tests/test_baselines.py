"""Tests for the three baselines: StandardDTW, PAA and Trillion."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.base import SearchResult
from repro.baselines.brute_force import StandardDTW
from repro.baselines.paa_search import PAASearch
from repro.baselines.trillion import Trillion
from repro.distances.dtw import dtw, normalized_dtw
from repro.exceptions import QueryError

LENGTHS = [6, 12, 18, 24]


@pytest.fixture(scope="module")
def prepared(request):
    small_dataset = request.getfixturevalue("small_dataset")
    brute = StandardDTW(window=0.1)
    paa = PAASearch(window=0.1)
    trillion = Trillion(window=0.1)
    trillion_plain = Trillion(window=0.1, z_normalize=False)
    for method in (brute, paa, trillion, trillion_plain):
        method.prepare(small_dataset, LENGTHS)
    return brute, paa, trillion, trillion_plain


class TestInterface:
    def test_query_before_prepare_rejected(self):
        with pytest.raises(QueryError, match="prepare"):
            StandardDTW().best_match(np.zeros(6) + 0.5)

    def test_unprepared_length_rejected(self, prepared):
        brute = prepared[0]
        with pytest.raises(QueryError, match="not prepared"):
            brute.best_match(np.zeros(6) + 0.5, length=7)

    def test_search_result_ordering(self):
        from repro.data.timeseries import SubsequenceId

        a = SearchResult(SubsequenceId(0, 0, 4), np.zeros(4), 1.0, 0.1)
        b = SearchResult(SubsequenceId(0, 1, 4), np.zeros(4), 2.0, 0.2)
        assert a < b


class TestStandardDTW:
    def test_exactness_same_length(self, prepared, small_dataset):
        """Brute force equals a literal full scan (its early abandoning
        must never change the answer)."""
        brute = prepared[0]
        query = small_dataset[0].values[1:13]
        result = brute.best_match(query, length=12)
        literal = min(
            normalized_dtw(query, values, window=0.1)
            for _, values in small_dataset.subsequences(12)
        )
        assert result.dtw_normalized == pytest.approx(literal, abs=1e-12)

    def test_exactness_any_length(self, prepared, small_dataset):
        brute = prepared[0]
        query = small_dataset[3].values[0:12]
        result = brute.best_match(query)
        literal = min(
            normalized_dtw(query, values, window=0.1)
            for length in LENGTHS
            for _, values in small_dataset.subsequences(length)
        )
        assert result.dtw_normalized == pytest.approx(literal, abs=1e-12)

    def test_self_match_found(self, prepared, small_dataset):
        brute = prepared[0]
        query = small_dataset[2].values[4:16]
        result = brute.best_match(query, length=12)
        assert result.dtw_normalized == pytest.approx(0.0, abs=1e-12)
        assert result.ssid.series == 2
        assert result.ssid.start == 4


class TestPAA:
    def test_reports_true_distance_of_choice(self, prepared, small_dataset):
        paa = prepared[1]
        query = small_dataset[1].values[0:12]
        result = paa.best_match(query, length=12)
        assert result.dtw == pytest.approx(
            dtw(query, result.values, window=0.1)
        )

    def test_result_close_to_exact(self, prepared, small_dataset):
        brute, paa = prepared[0], prepared[1]
        query = small_dataset[4].values[6:18]
        exact = brute.best_match(query, length=12)
        approx = paa.best_match(query, length=12)
        assert approx.dtw_normalized >= exact.dtw_normalized - 1e-12
        assert approx.dtw_normalized <= exact.dtw_normalized + 0.05

    def test_bad_segment_size(self):
        with pytest.raises(QueryError):
            PAASearch(segment_size=0)


class TestTrillion:
    def test_plain_mode_exact_same_length(self, prepared, small_dataset):
        """Without z-normalization Trillion must equal brute force."""
        brute, trillion_plain = prepared[0], prepared[3]
        for series in range(4):
            query = small_dataset[series].values[2:14]
            exact = brute.best_match(query, length=12)
            got = trillion_plain.best_match(query, length=12)
            assert got.dtw_normalized == pytest.approx(
                exact.dtw_normalized, abs=1e-9
            )

    def test_znorm_mode_still_finds_identical_window(self, prepared, small_dataset):
        """An in-dataset query's own window has z-distance 0, so even the
        z-normalized search returns it (paper: 'exact search' when the
        query is in the dataset)."""
        trillion = prepared[2]
        query = small_dataset[5].values[3:15]
        result = trillion.best_match(query, length=12)
        assert result.dtw_normalized == pytest.approx(0.0, abs=1e-9)

    def test_any_falls_back_to_own_length(self, prepared, small_dataset):
        trillion = prepared[2]
        query = small_dataset[0].values[0:12]
        result = trillion.best_match(query)  # length=None
        assert result.ssid.length == 12

    def test_unprepared_own_length_snaps_to_nearest(self, prepared, small_dataset):
        trillion = prepared[2]
        query = small_dataset[0].values[0:10]  # length 10 not prepared
        result = trillion.best_match(query)
        assert result.ssid.length in LENGTHS

    def test_explicit_unprepared_length_rejected(self, prepared):
        trillion = prepared[2]
        with pytest.raises(QueryError):
            trillion.best_match(np.zeros(12) + 0.5, length=13)

    def test_prune_stats_recorded(self, small_dataset):
        # Fresh instance: last_prune_stats is cumulative per length (the
        # adaptive cascade learns prune rates across queries), so the
        # exact count only holds for the first query.
        trillion = Trillion(window=0.1)
        trillion.prepare(small_dataset, LENGTHS)
        trillion.best_match(small_dataset[0].values[0:12], length=12)
        stats = trillion.last_prune_stats
        assert stats is not None
        assert stats.examined == small_dataset.n_subsequences(12)
        trillion.best_match(small_dataset[1].values[3:15], length=12)
        assert trillion.last_prune_stats is stats  # shared per length
        assert stats.examined == 2 * small_dataset.n_subsequences(12)

    def test_stage_toggles_do_not_change_answer(self, small_dataset):
        full = Trillion(window=0.1)
        bare = Trillion(window=0.1, use_kim=False, use_keogh=False)
        for method in (full, bare):
            method.prepare(small_dataset, [12])
        query = small_dataset[1].values[5:17]
        assert full.best_match(query, length=12).dtw_normalized == pytest.approx(
            bare.best_match(query, length=12).dtw_normalized
        )
