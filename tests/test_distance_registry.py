"""Tests for the distance registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances.registry import DISTANCES, get_distance
from repro.exceptions import DistanceError


def test_all_registered_names_resolve():
    for name in DISTANCES:
        assert get_distance(name) is DISTANCES[name]


def test_lookup_case_insensitive():
    assert get_distance("DTW") is DISTANCES["dtw"]
    assert get_distance(" Ed ") is DISTANCES["ed"]


def test_unknown_name_lists_alternatives():
    with pytest.raises(DistanceError, match="dtw"):
        get_distance("nope")


@pytest.mark.parametrize("name", sorted(DISTANCES))
def test_registered_distances_are_callable(name):
    x = np.array([0.0, 1.0, 2.0, 3.0])
    y = np.array([0.0, 1.1, 2.1, 2.9])
    value = get_distance(name)(x, y)
    assert np.isfinite(value)
    assert value >= 0.0


@pytest.mark.parametrize("name", sorted(DISTANCES))
def test_registered_distances_zero_on_identical(name):
    x = np.array([0.5, 0.25, 0.75, 1.0])
    assert get_distance(name)(x, x) == pytest.approx(0.0, abs=1e-9)
