"""Tests for DTW (paper Defs. 3 and 6): correctness against a naive
reference, band semantics, early abandoning and path extraction."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances.dtw import dtw, dtw_matrix, dtw_path, normalized_dtw, resolve_window
from repro.distances.euclidean import euclidean
from repro.exceptions import DistanceError

from tests.conftest import naive_dtw

short_vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=14
)


class TestAgainstReference:
    @given(short_vectors, short_vectors)
    @settings(max_examples=150, deadline=None)
    def test_property_matches_naive_dtw(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert dtw(x, y) == pytest.approx(naive_dtw(x, y), abs=1e-9)

    @given(short_vectors, short_vectors, st.integers(0, 6))
    @settings(max_examples=100, deadline=None)
    def test_property_banded_matches_banded_matrix(self, a, b, window):
        """Regression: dtw() and dtw_matrix() share one band geometry.

        Both kernels derive their corridor from ``band_bounds``; for any
        window (including the radius-0 diagonal) the matrix's endpoint
        must be exactly the rolling DP's squared distance.
        """
        x, y = np.asarray(a), np.asarray(b)
        endpoint = dtw_matrix(x, y, window=window)[len(x) - 1, len(y) - 1]
        assert dtw(x, y, window=window) == pytest.approx(
            math.sqrt(endpoint), abs=1e-9
        )

    @given(short_vectors, short_vectors, st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_property_band_never_below_unconstrained(self, a, b, window):
        x, y = np.asarray(a), np.asarray(b)
        assert dtw(x, y, window=window) >= dtw(x, y) - 1e-9


class TestBasicProperties:
    @given(short_vectors)
    def test_property_self_distance_zero(self, values):
        x = np.asarray(values)
        assert dtw(x, x) == pytest.approx(0.0, abs=1e-12)

    @given(short_vectors, short_vectors)
    @settings(max_examples=80, deadline=None)
    def test_property_symmetry_unconstrained(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        assert dtw(x, y) == pytest.approx(dtw(y, x), abs=1e-9)

    @given(short_vectors)
    @settings(max_examples=80, deadline=None)
    def test_property_bounded_by_euclidean(self, values):
        """ED's one-to-one alignment is a valid warping path (§2)."""
        x = np.asarray(values)
        y = x[::-1].copy()
        assert dtw(x, y) <= euclidean(x, y) + 1e-9

    def test_known_alignment_beats_euclidean(self):
        # Classic shifted-pulse case: DTW absorbs the shift, ED cannot.
        x = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        y = np.array([0.0, 1.0, 0.0, 0.0, 0.0])
        assert dtw(x, y) < euclidean(x, y)
        assert dtw(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_different_lengths_supported(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 1.5, 2.0, 2.5, 3.0])
        assert math.isfinite(dtw(x, y))

    def test_empty_rejected(self):
        with pytest.raises(DistanceError):
            dtw(np.array([]), np.array([1.0]))

    def test_2d_rejected(self):
        with pytest.raises(DistanceError):
            dtw(np.ones((2, 2)), np.ones(2))


class TestEarlyAbandoning:
    @given(short_vectors, short_vectors)
    @settings(max_examples=80, deadline=None)
    def test_property_abandon_consistency(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        full = dtw(x, y)
        # Threshold above the distance: result survives exactly.
        assert dtw(x, y, abandon_above=full + 1e-6) == pytest.approx(full)
        # Threshold strictly below: abandoned.
        if full > 1e-9:
            assert dtw(x, y, abandon_above=full * 0.99) == math.inf

    def test_zero_threshold_keeps_exact_zero(self):
        x = np.array([1.0, 2.0])
        assert dtw(x, x, abandon_above=0.0) == 0.0


class TestNormalizedDTW:
    def test_divides_by_twice_longer_length(self):
        x = np.arange(4.0)
        y = np.arange(6.0)
        assert normalized_dtw(x, y) == pytest.approx(dtw(x, y) / 12.0)

    @given(short_vectors, short_vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_normalized_threshold_equivalence(self, a, b):
        x, y = np.asarray(a), np.asarray(b)
        full = normalized_dtw(x, y)
        if full > 1e-9:
            assert normalized_dtw(x, y, abandon_above=full * 0.99) == math.inf
        assert normalized_dtw(x, y, abandon_above=full + 1e-6) == pytest.approx(full)


class TestResolveWindow:
    def test_none_means_unconstrained(self):
        assert resolve_window(10, 10, None) == 10

    def test_fraction_of_longer(self):
        assert resolve_window(20, 20, 0.1) == 2

    def test_int_radius(self):
        assert resolve_window(10, 10, 3) == 3

    def test_widened_to_length_difference(self):
        assert resolve_window(4, 10, 1) == 6

    def test_zero_radius_honored_for_equal_lengths(self):
        assert resolve_window(5, 5, 0) == 0

    def test_zero_radius_widened_to_length_difference(self):
        # The documented behavior for unequal lengths: the narrowest
        # band with a feasible path has radius |n - m|.
        assert resolve_window(4, 10, 0) == 6

    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=14))
    @settings(max_examples=60, deadline=None)
    def test_property_zero_window_is_pointwise_path(self, values):
        """Radius 0 pins the path to the diagonal: DTW becomes ED."""
        x = np.asarray(values)
        y = x[::-1].copy()
        pointwise = math.sqrt(float(np.sum((x - y) ** 2)))
        assert dtw(x, y, window=0) == pytest.approx(pointwise, abs=1e-9)

    def test_bad_fraction_rejected(self):
        with pytest.raises(DistanceError):
            resolve_window(5, 5, 1.5)

    def test_negative_radius_rejected(self):
        with pytest.raises(DistanceError):
            resolve_window(5, 5, -2)


class TestPath:
    def test_path_endpoints(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 3.0])
        path = dtw_path(x, y)
        assert path[0] == (0, 0)
        assert path[-1] == (2, 1)

    def test_path_steps_are_monotone(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=8)
        path = dtw_path(x, y)
        # Pairwise iteration: the offset slice is one element shorter.
        for (i0, j0), (i1, j1) in zip(path, path[1:], strict=False):
            assert (i1 - i0, j1 - j0) in {(0, 1), (1, 0), (1, 1)}

    def test_path_cost_equals_dtw(self, rng):
        x = rng.normal(size=9)
        y = rng.normal(size=11)
        path = dtw_path(x, y)
        cost = math.sqrt(sum((x[i] - y[j]) ** 2 for i, j in path))
        assert cost == pytest.approx(dtw(x, y), abs=1e-9)

    def test_identical_series_path_is_diagonal(self):
        x = np.arange(5.0)
        assert dtw_path(x, x) == [(i, i) for i in range(5)]

    def test_path_length_bound(self, rng):
        """Paper §2: path length T satisfies n <= T <= n + m - 1."""
        x = rng.normal(size=7)
        y = rng.normal(size=5)
        path = dtw_path(x, y)
        assert max(len(x), len(y)) <= len(path) <= len(x) + len(y) - 1
