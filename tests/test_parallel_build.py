"""Tests for the process-parallel sharded construction engine.

The contract under test: ``OnexIndex.build`` produces **bit-identical**
indexes for every ``n_jobs`` value — same groups, same member order,
same representatives, same store rows — in both assign modes, because
the parent pre-draws every length's visit permutation in grid order and
workers window a shared mmap of the same subsequence store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.onex import OnexIndex
from repro.core.parallel import build_shards_parallel, resolve_n_jobs
from repro.data.normalize import min_max_normalize_dataset
from repro.data.store import SubsequenceStore
from repro.data.synthetic import make_dataset
from repro.exceptions import IndexConstructionError, QueryError

LENGTHS = [8, 16, 24, 32]


def _dataset(seed: int):
    return min_max_normalize_dataset(
        make_dataset("ItalyPower", n_series=10, length=32, seed=seed)
    )


def _build(dataset, n_jobs: int, assign_mode: str, seed: int) -> OnexIndex:
    return OnexIndex.build(
        dataset,
        st=0.25,
        lengths=LENGTHS,
        normalize=False,
        seed=seed,
        assign_mode=assign_mode,
        n_jobs=n_jobs,
    )


def _assert_identical(a: OnexIndex, b: OnexIndex) -> None:
    assert a.rspace.lengths == b.rspace.lengths
    for length in a.rspace.lengths:
        bucket_a = a.rspace.bucket(length)
        bucket_b = b.rspace.bucket(length)
        assert len(bucket_a.groups) == len(bucket_b.groups)
        assert np.array_equal(bucket_a.rep_matrix, bucket_b.rep_matrix)
        for group_a, group_b in zip(bucket_a.groups, bucket_b.groups, strict=True):
            assert group_a.member_ids == group_b.member_ids
            assert np.array_equal(group_a.ed_to_rep, group_b.ed_to_rep)
            assert np.array_equal(
                group_a.representative, group_b.representative
            )
            assert np.array_equal(group_a.member_rows, group_b.member_rows)


class TestBitIdentity:
    @pytest.mark.parametrize("assign_mode", ["sequential", "minibatch"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_n_jobs_4_matches_n_jobs_1(self, assign_mode, seed):
        dataset = _dataset(seed)
        sequential = _build(dataset, 1, assign_mode, seed)
        parallel = _build(dataset, 4, assign_mode, seed)
        _assert_identical(sequential, parallel)

    def test_queries_identical_across_job_counts(self):
        dataset = _dataset(3)
        sequential = _build(dataset, 1, "sequential", 3)
        parallel = _build(dataset, 2, "sequential", 3)
        for series in range(3):
            query = dataset[series].values[4:20]
            match_seq = sequential.query(query, length=16)[0]
            match_par = parallel.query(query, length=16)[0]
            assert match_seq.ssid == match_par.ssid
            assert match_seq.dtw == pytest.approx(match_par.dtw, abs=0.0)

    def test_build_profile_covers_grid_in_order(self):
        dataset = _dataset(1)
        parallel = _build(dataset, 4, "sequential", 1)
        assert [entry["length"] for entry in parallel.build_profile] == LENGTHS
        assert all(entry["seconds"] >= 0.0 for entry in parallel.build_profile)

    def test_progress_called_for_every_length(self):
        dataset = _dataset(2)
        seen: list[int] = []
        OnexIndex.build(
            dataset,
            st=0.25,
            lengths=LENGTHS,
            normalize=False,
            seed=2,
            n_jobs=2,
            progress=lambda length, n, s: seen.append(length),
        )
        assert sorted(seen) == LENGTHS


class TestShardEngine:
    def test_shards_match_in_process_builder(self):
        from repro.core.grouping import GroupBuilder

        dataset = _dataset(5)
        store = SubsequenceStore(dataset)
        rng = np.random.default_rng(5)
        orders = {
            length: rng.permutation(store.view(length).n_rows)
            for length in LENGTHS
        }
        shards = build_shards_parallel(
            store, LENGTHS, orders, st=0.25, n_jobs=2
        )
        assert sorted(shards) == LENGTHS
        for length in LENGTHS:
            local = GroupBuilder(length, 0.25).build(
                store.view(length), order=orders[length]
            )
            remote = shards[length].groups
            assert len(local) == len(remote)
            for group_a, group_b in zip(local, remote, strict=True):
                assert group_a.member_ids == group_b.member_ids
                assert np.array_equal(
                    group_a.representative, group_b.representative
                )

    def test_empty_grid_rejected(self):
        dataset = _dataset(0)
        store = SubsequenceStore(dataset)
        with pytest.raises(IndexConstructionError):
            build_shards_parallel(store, [], {}, st=0.25, n_jobs=2)


class TestJobResolution:
    def test_defaults(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_negative_counts_back_from_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == cores
        assert resolve_n_jobs(-cores - 5) == 1

    def test_zero_rejected(self):
        with pytest.raises(IndexConstructionError):
            resolve_n_jobs(0)

    def test_kmeans_grouping_rejects_parallel(self):
        dataset = _dataset(0)
        with pytest.raises(QueryError, match="incremental"):
            OnexIndex.build(
                dataset,
                st=0.25,
                lengths=[16],
                normalize=False,
                grouping="kmeans",
                n_jobs=2,
            )

    def test_kmeans_grouping_still_builds_sequentially(self):
        dataset = _dataset(0)
        index = OnexIndex.build(
            dataset,
            st=0.25,
            lengths=[16, 32],
            normalize=False,
            grouping="kmeans",
            n_jobs=1,
        )
        assert index.rspace.lengths == [16, 32]
