"""Tests for the columnar subsequence store (zero-copy window views)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.store import SubsequenceStore
from repro.exceptions import DataError


@pytest.mark.parametrize("start_step", [1, 2, 3])
class TestEnumerationParity:
    """Row order and values must match ``Dataset.subsequences`` exactly."""

    def test_ids_match(self, small_dataset, start_step):
        view = SubsequenceStore(small_dataset, start_step=start_step).view(12)
        expected = [ssid for ssid, _ in small_dataset.subsequences(12, start_step)]
        assert view.ids(np.arange(view.n_rows)) == expected
        assert view.n_rows == len(expected)

    def test_values_match(self, small_dataset, start_step):
        view = SubsequenceStore(small_dataset, start_step=start_step).view(12)
        expected = np.stack(
            [values for _, values in small_dataset.subsequences(12, start_step)]
        )
        assert np.array_equal(view.values(), expected)

    def test_single_row_round_trip(self, small_dataset, start_step):
        view = SubsequenceStore(small_dataset, start_step=start_step).view(9)
        for row in (0, view.n_rows // 2, view.n_rows - 1):
            ssid = view.ssid(row)
            assert np.array_equal(
                view.row_values(row), small_dataset.subsequence(ssid)
            )


class TestZeroCopy:
    def test_row_values_share_memory(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        view = store.view(12)
        assert np.shares_memory(view.row_values(0), store.flat_values)

    def test_fancy_index_gather(self, small_dataset):
        view = SubsequenceStore(small_dataset).view(12)
        rows = np.array([5, 0, 17], dtype=np.int64)
        gathered = view.values(rows)
        for position, row in enumerate(rows):
            assert np.array_equal(gathered[position], view.row_values(int(row)))


class TestNorms:
    def test_sq_norms_match_explicit(self, small_dataset):
        view = SubsequenceStore(small_dataset).view(12)
        explicit = np.einsum("ij,ij->i", view.values(), view.values())
        assert np.allclose(view.sq_norms(), explicit, atol=1e-12)

    def test_subset_indexing(self, small_dataset):
        view = SubsequenceStore(small_dataset).view(12)
        rows = np.array([3, 11])
        assert np.array_equal(view.sq_norms(rows), view.sq_norms()[rows])


class TestRowsOf:
    def test_inverse_lookup_round_trip(self, small_dataset):
        view = SubsequenceStore(small_dataset, start_step=2).view(12)
        rows = np.arange(view.n_rows)
        recovered = view.rows_of(view.series[rows], view.starts[rows])
        assert np.array_equal(recovered, rows)

    def test_misaligned_start_rejected(self, small_dataset):
        view = SubsequenceStore(small_dataset, start_step=2).view(12)
        with pytest.raises(DataError):
            view.rows_of(np.array([0]), np.array([1]))  # not a multiple of 2

    def test_out_of_range_rejected(self, small_dataset):
        view = SubsequenceStore(small_dataset).view(12)
        with pytest.raises(DataError):
            view.rows_of(np.array([99]), np.array([0]))
        with pytest.raises(DataError):
            view.rows_of(np.array([0]), np.array([999]))


class TestBoundaries:
    def test_windows_never_cross_series(self):
        # Two constant series with distinct levels: any window mixing
        # them would contain both values.
        dataset = Dataset([np.zeros(8), np.ones(8)])
        view = SubsequenceStore(dataset).view(4)
        matrix = view.values()
        assert view.n_rows == 2 * (8 - 4 + 1)
        assert np.all((matrix == 0.0).all(axis=1) | (matrix == 1.0).all(axis=1))

    def test_short_series_contribute_nothing(self):
        dataset = Dataset([np.arange(10.0), np.arange(3.0)])
        view = SubsequenceStore(dataset).view(5)
        assert view.n_rows == 10 - 5 + 1
        assert set(view.series.tolist()) == {0}

    def test_guards(self, small_dataset):
        with pytest.raises(DataError):
            SubsequenceStore(small_dataset, start_step=0)
        store = SubsequenceStore(small_dataset)
        with pytest.raises(DataError):
            store.view(1)
        with pytest.raises(DataError):
            store.view(10_000)

    def test_views_cached(self, small_dataset):
        store = SubsequenceStore(small_dataset)
        assert store.view(12) is store.view(12)
