"""Tests for the online query processor (Algorithm 2 + §5.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.query_processor import QueryProcessor, _alternate_outward
from repro.exceptions import QueryError


@pytest.fixture
def processor(small_index) -> QueryProcessor:
    return QueryProcessor(
        small_index.rspace,
        small_index.dataset,
        st=small_index.st,
        window=small_index.window,
    )


class TestBestMatchExact:
    def test_indexed_subsequence_found_nearly_exactly(self, processor, small_index):
        query = small_index.dataset[2].values[3:15]  # an indexed subsequence
        matches = processor.best_match(query, length=12)
        assert len(matches) == 1
        assert matches[0].dtw_normalized <= 0.02

    def test_match_values_consistent_with_ssid(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        match = processor.best_match(query, length=12)[0]
        expected = small_index.dataset.subsequence(match.ssid)
        assert np.array_equal(match.values, expected)
        assert match.group[0] == 12

    def test_reported_distance_is_true_dtw(self, processor, small_index):
        from repro.distances.dtw import dtw

        query = small_index.dataset[1].values[2:14]
        match = processor.best_match(query, length=12)[0]
        assert match.dtw == pytest.approx(
            dtw(query, match.values, window=processor.window)
        )
        assert match.dtw_normalized == pytest.approx(match.dtw / 24.0)

    def test_k_results_sorted_and_distinct(self, processor, small_index):
        query = small_index.dataset[4].values[6:18]
        matches = processor.best_match(query, length=12, k=5)
        assert 1 <= len(matches) <= 5
        distances = [m.dtw_normalized for m in matches]
        assert distances == sorted(distances)
        assert len({m.ssid for m in matches}) == len(matches)

    def test_unindexed_length_raises(self, processor):
        with pytest.raises(QueryError, match="not indexed"):
            processor.best_match(np.zeros(10) + 0.5, length=10)

    def test_bad_k(self, processor):
        with pytest.raises(QueryError):
            processor.best_match(np.zeros(12) + 0.5, length=12, k=0)


class TestBestMatchAny:
    def test_any_covers_all_lengths(self, processor, small_index):
        query = small_index.dataset[3].values[0:12]
        matches = processor.best_match(query, stop_at_half_st=False)
        assert matches
        assert processor.last_stats.lengths_visited == len(
            small_index.rspace.lengths
        )

    def test_stop_at_half_st_stops_early(self, processor, small_index):
        query = small_index.dataset[3].values[0:12]
        processor.best_match(query, stop_at_half_st=True)
        early = processor.last_stats
        # For an in-dataset query the first (own-length) bucket already
        # has a representative within ST/2, so the scan stops there.
        assert early.stopped_at_half_st
        assert early.lengths_visited == 1

    def test_any_close_to_exact_length_result(self, processor, small_index):
        """Match=Any picks the globally best representative's group; its
        answer may come from a different length, so it is not strictly
        better than the exact-length answer — but for an in-dataset
        query both must land very close to zero."""
        query = small_index.dataset[5].values[6:18]
        exact = processor.best_match(query, length=12)[0]
        anym = processor.best_match(query, stop_at_half_st=False)[0]
        assert anym.dtw_normalized <= exact.dtw_normalized + 0.02

    def test_query_of_unindexed_length_works(self, processor):
        query = np.linspace(0.2, 0.8, 10)  # length 10 not indexed
        matches = processor.best_match(query)
        assert matches


class TestWithinThreshold:
    def test_all_returned_within_threshold(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        st = 0.3
        matches = processor.within_threshold(query, st=st, length=12)
        assert matches
        for match in matches:
            # Lemma 2 guarantee (with the documented mean-drift slack).
            assert match.dtw_normalized <= st * 1.5

    def test_results_sorted(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        matches = processor.within_threshold(query, st=0.4, length=12)
        distances = [m.dtw_normalized for m in matches]
        assert distances == sorted(distances)

    def test_refine_false_uses_rep_distance(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        coarse = processor.within_threshold(query, st=0.4, length=12, refine=False)
        refined = processor.within_threshold(query, st=0.4, length=12, refine=True)
        assert {m.ssid for m in coarse} == {m.ssid for m in refined}

    def test_tighter_threshold_returns_subset(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        tight = {m.ssid for m in processor.within_threshold(query, st=0.1, length=12)}
        loose = {m.ssid for m in processor.within_threshold(query, st=0.5, length=12)}
        assert tight <= loose

    def test_bad_threshold(self, processor):
        with pytest.raises(QueryError):
            processor.within_threshold(np.zeros(12) + 0.5, st=-0.1)


class TestSeasonal:
    def test_data_driven_clusters_have_min_members(self, processor):
        result = processor.seasonal(12)
        assert result.series is None
        for cluster in result:
            assert len(cluster) >= 2
            assert cluster.length == 12

    def test_user_driven_only_sample_series(self, processor):
        result = processor.seasonal(12, series=0)
        assert result.series == 0
        for cluster in result:
            assert all(ssid.series == 0 for ssid in cluster.members)

    def test_min_members_filter(self, processor):
        all_clusters = processor.seasonal(12, min_members=1)
        filtered = processor.seasonal(12, min_members=3)
        assert len(filtered) <= len(all_clusters)
        for cluster in filtered:
            assert len(cluster) >= 3

    def test_bad_series_index(self, processor):
        with pytest.raises(QueryError):
            processor.seasonal(12, series=99)

    def test_bad_min_members(self, processor):
        with pytest.raises(QueryError):
            processor.seasonal(12, min_members=0)

    def test_n_subsequences_aggregates(self, processor):
        result = processor.seasonal(12)
        assert result.n_subsequences == sum(len(c) for c in result)


class TestOptimizationToggles:
    def test_lower_bounds_do_not_change_answers(self, small_index):
        with_lb = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, use_lower_bounds=True
        )
        without_lb = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, use_lower_bounds=False
        )
        for series in range(3):
            query = small_index.dataset[series].values[1:13]
            a = with_lb.best_match(query, length=12)[0]
            b = without_lb.best_match(query, length=12)[0]
            assert a.dtw_normalized == pytest.approx(b.dtw_normalized)

    def test_ordering_does_not_change_answers(self, small_index):
        median = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, median_ordering=True
        )
        linear = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, median_ordering=False
        )
        for series in range(3):
            query = small_index.dataset[series].values[4:16]
            a = median.best_match(query, length=12)[0]
            b = linear.best_match(query, length=12)[0]
            assert a.dtw_normalized == pytest.approx(b.dtw_normalized)

    def test_group_width_one_still_answers(self, small_index):
        narrow = QueryProcessor(
            small_index.rspace, small_index.dataset, st=0.2, group_search_width=1
        )
        query = small_index.dataset[2].values[0:12]
        assert narrow.best_match(query, length=12)

    def test_stats_populated(self, processor, small_index):
        query = small_index.dataset[0].values[0:12]
        processor.best_match(query, length=12)
        stats = processor.last_stats
        assert stats.reps_examined > 0
        assert stats.members_examined > 0
        assert 0.0 <= stats.rep_prune_rate <= 1.0


class TestAlternateOutward:
    def test_full_permutation(self):
        assert sorted(_alternate_outward(2, 5)) == [0, 1, 2, 3, 4]

    def test_order_fans_out(self):
        assert list(_alternate_outward(2, 5)) == [2, 1, 3, 0, 4]

    def test_start_clipped(self):
        assert list(_alternate_outward(99, 3)) == [2, 1, 0]
        assert list(_alternate_outward(-5, 3)) == [0, 1, 2]

    def test_empty(self):
        assert list(_alternate_outward(0, 0)) == []
