"""Kernel backend registry, backend parity, and the adaptive cascade.

The contract under test (ISSUE 5):

* the registry resolves ``auto``/env/explicit selections and falls back
  to ``numpy`` gracefully when ``numba`` is not installed;
* every kernel returns identical results on both backends — exact
  float64 equality for the DTW kernels (same operation order), tight
  tolerance for the LB_Keogh accumulation (summation order differs),
  with identical prune decisions — on random *and* adversarial inputs
  (radius 0, constant series, two-point series, huge magnitudes), and
  never returns NaN for finite inputs;
* the adaptive cascade returns exactly the answers of the fixed-order
  reference cascade while skipping stages that cannot pay for
  themselves;
* the per-stage ``QueryStats`` cascade counters account for every
  lower-bound kill and DP abandon, and merge across stats objects.

When ``numba`` is installed (the CI JIT leg), the whole parity suite
additionally runs against the JIT backend; without it, the numpy-only
assertions keep the suite green, proving the fallback.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.onex import OnexIndex
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.distances.backend import (
    ENV_VAR,
    available_backends,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.distances.batch import dtw_batch, dtw_pairs, envelope_matrix
from repro.distances.dtw import dtw, resolve_window
from repro.distances.kernels_numba import NUMBA_AVAILABLE
from repro.distances.lower_bounds import (
    CascadePruner,
    PruneStats,
    envelope,
    lb_kim,
)
from repro.core.query_processor import QueryStats
from repro.exceptions import DistanceError

BACKENDS = ["numpy"] + (["numba"] if NUMBA_AVAILABLE else [])


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    yield
    set_backend(None)


def _adversarial_pairs(rng: np.random.Generator) -> list[tuple[np.ndarray, np.ndarray]]:
    """Equal-length pairs covering the kernel edge cases."""
    noisy = rng.normal(size=24)
    return [
        (rng.normal(size=16), rng.normal(size=16)),
        (np.zeros(12), np.zeros(12)),  # constant vs constant
        (np.full(10, 3.5), rng.normal(size=10)),  # constant vs noise
        (np.array([0.0, 1.0]), np.array([1.0, 0.0])),  # two points
        (1e8 * rng.normal(size=8), 1e-8 * rng.normal(size=8)),  # scales
        (noisy, noisy.copy()),  # identical series
        (np.where(np.arange(20) % 2 == 0, 5.0, -5.0), rng.normal(size=20)),
    ]


class TestRegistry:
    def test_available_backends_lists_numpy(self):
        availability = available_backends()
        assert availability["numpy"] is True
        assert availability["numba"] is NUMBA_AVAILABLE

    def test_auto_resolution(self):
        backend = resolve_backend("auto")
        assert backend.name == ("numba" if NUMBA_AVAILABLE else "numpy")

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        backend = set_backend(None)  # drop the cache, re-read the env
        assert backend.name == "numpy"
        assert get_backend() is backend

    def test_explicit_selection_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        for name in BACKENDS:
            assert set_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(DistanceError):
            resolve_backend("fortran")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_missing_numba_falls_back_to_numpy(self):
        backend = set_backend("numba")
        assert backend.name == "numpy"

    def test_warmup_returns_seconds(self):
        for name in BACKENDS:
            assert resolve_backend(name).warmup() >= 0.0


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestKernelParity:
    """Every backend kernel against the numpy reference values."""

    def _reference(self):
        return resolve_backend("numpy")

    def test_dtw_squared_bit_identical(self, backend_name, rng):
        backend = resolve_backend(backend_name)
        reference = self._reference()
        for x, y in _adversarial_pairs(rng):
            for window in (None, 0.1, 2, 0):
                radius = resolve_window(x.shape[0], y.shape[0], window)
                for bound_sq in (math.inf, 1.0, 0.25, 0.0):
                    expected = reference.dtw_squared(x, y, radius, bound_sq)
                    got = backend.dtw_squared(x, y, radius, bound_sq)
                    assert got == expected  # exact, including inf
                    assert not math.isnan(got)

    def test_dtw_squared_unequal_lengths(self, backend_name, rng):
        backend = resolve_backend(backend_name)
        reference = self._reference()
        for n, m in ((5, 9), (9, 5), (2, 17), (1, 1), (1, 6)):
            x = rng.normal(size=n)
            y = rng.normal(size=m)
            for window in (None, 0.2, 0):
                radius = resolve_window(n, m, window)
                expected = reference.dtw_squared(x, y, radius, math.inf)
                assert backend.dtw_squared(x, y, radius, math.inf) == expected

    def test_lb_kim_bit_identical(self, backend_name, rng):
        backend = resolve_backend(backend_name)
        reference = self._reference()
        for x, y in _adversarial_pairs(rng):
            expected = reference.lb_kim(x, y)
            got = backend.lb_kim(x, y)
            assert got == expected
            assert not math.isnan(got)

    def test_lb_keogh_squared_parity_and_admissibility(self, backend_name, rng):
        backend = resolve_backend(backend_name)
        reference = self._reference()
        for x, y in _adversarial_pairs(rng):
            radius = resolve_window(x.shape[0], x.shape[0], 0.1)
            env = envelope(y, radius)
            order = np.argsort(-np.abs(x - x.mean()), kind="stable").astype(
                np.intp
            )
            exact = reference.lb_keogh_squared(
                x, env.lower, env.upper, order, math.inf
            )
            full = backend.lb_keogh_squared(x, env.lower, env.upper, order, math.inf)
            assert full == pytest.approx(exact, rel=1e-12, abs=1e-300)
            assert not math.isnan(full)
            # With a finite bound the kernel may abandon early, but the
            # prune decision must match the full computation's.
            for bound_sq in (exact * 0.5 + 1e-9, exact * 2.0 + 1e-9):
                partial = backend.lb_keogh_squared(
                    x, env.lower, env.upper, order, bound_sq
                )
                assert (partial >= bound_sq) == (full >= bound_sq)

    def test_dtw_batch_matches_scalar_dtw(self, backend_name, rng):
        set_backend(backend_name)
        query = rng.normal(size=20)
        stack = rng.normal(size=(40, 20))
        stack[0] = query  # a perfect match in the stack
        stack[1] = 0.0  # a constant candidate
        radius = resolve_window(20, 20, 0.1)
        distances = dtw_batch(query, stack, radius)
        for row, got in zip(stack, distances, strict=True):
            assert got == dtw(query, row, window=radius)
        # Shared abandon bound: finite results are true distances.
        bound = float(np.median(distances))
        bounded = dtw_batch(query, stack, radius, abandon_above=bound)
        for row, got in zip(stack, bounded, strict=True):
            if math.isfinite(got):
                assert got == dtw(query, row, window=radius)
            else:
                assert dtw(query, row, window=radius) >= bound - 1e-9

    def test_dtw_pairs_matches_scalar_dtw(self, backend_name, rng):
        set_backend(backend_name)
        queries = rng.normal(size=(12, 15))
        candidates = rng.normal(size=(12, 18))
        radius = resolve_window(15, 18, 0.2)
        distances = dtw_pairs(queries, candidates, radius)
        expected = [
            dtw(q, c, window=radius) for q, c in zip(queries, candidates, strict=True)
        ]
        assert distances.tolist() == expected
        # Per-lane bounds: every lane below its bound is exact.
        bounds = np.asarray(expected) * np.where(
            np.arange(12) % 2 == 0, 1.01, 0.99
        )
        bounded = dtw_pairs(queries, candidates, radius, abandon_above=bounds)
        for lane, got in enumerate(bounded):
            if math.isfinite(got):
                assert got == expected[lane]
            else:
                assert expected[lane] >= bounds[lane] - 1e-9

    def test_public_scalar_wrappers_dispatch(self, backend_name, rng):
        set_backend(backend_name)
        x, y = rng.normal(size=14), rng.normal(size=14)
        assert dtw(x, y, window=2) == pytest.approx(
            math.sqrt(resolve_backend("numpy").dtw_squared(x, y, 2, math.inf))
        )
        assert lb_kim(x, y) == resolve_backend("numpy").lb_kim(x, y)


class TestNumbaKernelLogic:
    """The numba kernels' *arithmetic* vs the numpy reference.

    When numba is missing, ``kernels_numba``'s ``njit`` degrades to an
    identity decorator, so these run the same code as plain Python —
    numpy-only environments still verify the kernel logic; the JIT CI
    leg verifies the compiled form.
    """

    def test_dtw_squared_logic_bit_identical(self, rng):
        from repro.distances import kernels_numba

        reference = resolve_backend("numpy")
        for x, y in _adversarial_pairs(rng):
            for window in (None, 0.1, 0):
                radius = resolve_window(x.shape[0], y.shape[0], window)
                for bound_sq in (math.inf, 0.5):
                    assert kernels_numba.dtw_squared(
                        x, y, radius, bound_sq
                    ) == reference.dtw_squared(x, y, radius, bound_sq)

    def test_lb_kernels_logic(self, rng):
        from repro.distances import kernels_numba

        reference = resolve_backend("numpy")
        for x, y in _adversarial_pairs(rng):
            assert kernels_numba.lb_kim(x, y) == reference.lb_kim(x, y)
            radius = resolve_window(x.shape[0], x.shape[0], 0.1)
            env = envelope(y, radius)
            order = np.arange(x.shape[0], dtype=np.intp)
            assert kernels_numba.lb_keogh_squared(
                x, env.lower, env.upper, order, math.inf
            ) == pytest.approx(
                reference.lb_keogh_squared(
                    x, env.lower, env.upper, order, math.inf
                ),
                rel=1e-12,
                abs=1e-300,
            )

    def test_batch_kernels_logic(self, rng):
        from repro.distances import kernels_numba

        reference = resolve_backend("numpy")
        query = rng.normal(size=16)
        stack = rng.normal(size=(24, 16))
        radius = resolve_window(16, 16, 0.1)
        for abandon in (None, 1.5):
            assert np.array_equal(
                kernels_numba.dtw_batch(query, stack, radius, abandon),
                reference.dtw_batch(query, stack, radius, abandon),
            )
        queries = rng.normal(size=(24, 16))
        for abandon in (None, 1.5, np.linspace(0.5, 3.0, 24)):
            assert np.array_equal(
                kernels_numba.dtw_pairs(queries, stack, radius, abandon),
                reference.dtw_pairs(queries, stack, radius, abandon),
            )


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestJitEndToEnd:
    """Whole-query bit-identity between backends (the JIT CI leg)."""

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_best_match_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        dataset = min_max_normalize_dataset(
            make_dataset("ECG", n_series=6, length=64, seed=seed % 1000)
        )
        index = OnexIndex.build(dataset, st=0.2, normalize=False, seed=0)
        query = np.clip(
            dataset[0].values[:32] + rng.normal(0, 0.01, 32), 0.0, 1.0
        )
        set_backend("numpy")
        expected = index.query(query, k=3)
        set_backend("numba")
        got = index.query(query, k=3)
        assert [m.ssid for m in got] == [m.ssid for m in expected]
        assert [m.dtw for m in got] == [m.dtw for m in expected]


class TestAdaptiveCascade:
    def _sweep(self, pruner: CascadePruner, candidates, envelopes=None):
        best = math.inf
        best_index = -1
        for index, candidate in enumerate(candidates):
            env = None if envelopes is None else envelopes[index]
            value = pruner.distance(candidate, best, candidate_envelope=env)
            if value < best:
                best, best_index = value, index
        return best, best_index

    def test_adaptive_equals_fixed_order_reference(self, rng):
        query = rng.normal(size=24)
        candidates = [rng.normal(size=24) for _ in range(400)]
        adaptive = CascadePruner(
            query, window=3, adaptive=True, adapt_min_examined=16,
            adapt_interval=16, adapt_reprobe=64,
        )
        fixed = CascadePruner(query, window=3, adaptive=False)
        assert self._sweep(adaptive, candidates) == self._sweep(fixed, candidates)
        true_best = min(dtw(query, c, window=3) for c in candidates)
        assert self._sweep(fixed, candidates)[0] == pytest.approx(true_best)

    def test_unpayable_stage_gets_skipped(self, rng):
        # Candidates that agree with the query at the endpoints and
        # extrema: LB_Kim can never prune, so its measured rate falls to
        # ~0 and the adaptive plan drops it (modulo reprobes).
        query = np.concatenate([[0.0], rng.normal(size=30) * 0.1, [1.0]])
        query[5], query[20] = 2.0, -2.0  # pin the extrema
        candidates = []
        for _ in range(600):
            candidate = np.concatenate(
                [[0.0], rng.normal(size=30) * 0.1, [1.0]]
            )
            candidate[5], candidate[20] = 2.0, -2.0
            candidates.append(candidate)
        pruner = CascadePruner(
            query, window=2, adapt_min_examined=32, adapt_interval=32,
            adapt_reprobe=200,
        )
        self._sweep(pruner, candidates)
        stats = pruner.stats
        assert stats.pruned_kim == 0
        assert stats.evaluated_kim < stats.examined  # it was skipped
        pruner._recompute_plan()
        assert "kim" not in pruner._adaptive_plan

    def test_adaptation_never_loses_the_true_best(self, rng):
        for trial in range(5):
            query = rng.normal(size=16)
            candidates = [rng.normal(size=16) for _ in range(150)]
            envelopes = [envelope(c, 2) for c in candidates]
            pruner = CascadePruner(
                query, window=2, adapt_min_examined=8, adapt_interval=8,
                adapt_reprobe=32,
            )
            best, best_index = self._sweep(pruner, candidates, envelopes)
            true = min(dtw(query, c, window=2) for c in candidates)
            assert best == pytest.approx(true, abs=1e-9)

    def test_distance_batch_honours_stage_skips(self, rng):
        query = rng.normal(size=20)
        stack = rng.normal(size=(256, 20))
        stacked_envelopes = envelope_matrix(stack, 2)
        adaptive = CascadePruner(
            query, window=2, adapt_min_examined=32, adapt_interval=32
        )
        fixed = CascadePruner(query, window=2, adaptive=False)
        bound = dtw(query, stack[0], window=2)
        got = adaptive.distance_batch(stack, bound, stacked_envelopes)
        expected = fixed.distance_batch(stack, bound, stacked_envelopes)
        finite = np.isfinite(expected)
        assert np.array_equal(got[finite], expected[finite])
        # Both paths agree on which candidates beat the bound.
        assert np.array_equal(np.isfinite(got), finite)

    def test_shared_stats_carry_learning_across_pruners(self, rng):
        query = rng.normal(size=12)
        shared = PruneStats()
        first = CascadePruner(query, window=2, stats=shared)
        self._sweep(first, [rng.normal(size=12) for _ in range(50)])
        second = CascadePruner(query, window=2, stats=shared)
        assert second.stats.examined == 50
        self._sweep(second, [rng.normal(size=12) for _ in range(50)])
        assert shared.examined == 100


class TestQueryStatsCascade:
    @pytest.fixture(scope="class")
    def index(self):
        dataset = min_max_normalize_dataset(
            make_dataset("ECG", n_series=10, length=96, seed=5)
        )
        return OnexIndex.build(dataset, st=0.15, normalize=False, seed=0)

    def test_counters_account_for_every_kill(self, index, rng):
        dataset = index.dataset
        values = dataset[0].values[0:48]
        query = np.clip(values + rng.normal(0, 0.02, 48), 0.0, 1.0)
        index.query(query, k=3)
        stats = index.processor.last_stats
        lb_kills = (
            stats.cascade_kim + stats.cascade_keogh + stats.cascade_keogh_reverse
        )
        assert lb_kills == stats.reps_pruned_lb + stats.members_pruned_lb
        assert (
            stats.cascade_dtw_abandon
            == stats.reps_abandoned + stats.members_abandoned
        )

    def test_merge_sums_cascade_counters(self):
        a = QueryStats(cascade_kim=2, cascade_dtw_abandon=1)
        b = QueryStats(cascade_kim=3, cascade_keogh=4, cascade_keogh_reverse=5)
        a.merge(b)
        assert a.cascade_kim == 5
        assert a.cascade_keogh == 4
        assert a.cascade_keogh_reverse == 5
        assert a.cascade_dtw_abandon == 1

    def test_service_surfaces_backend_and_cascade(self, index):
        from repro.serve import OnexService

        with OnexService(index, max_workers=2) as service:
            info = service.info()
            assert info["backend"]["name"] == get_backend().name
            assert info["backend"]["warmup_seconds"] >= 0.0
            before = info["query_stats"]["reps_examined"]
            service.query(index.dataset[0].values[0:48])
            after = service.info()["query_stats"]
            assert after["reps_examined"] > before
            assert set(dataclasses.asdict(QueryStats())) <= set(after)
