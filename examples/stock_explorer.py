"""Stock-market exploration (the paper's §5.1 use cases).

"A financial analyst may want to retrieve the stock similar to the
stock fluctuations of the Apple stock for a specific time period" and
"find all 30 days long subsequences of the Apple stock having similar
prices". This example synthesizes daily prices for 15 tickers, runs
both use cases, demonstrates k-NN retrieval and threshold adaptation,
and round-trips the index through save/load.

Run with::

    python examples/stock_explorer.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import Dataset, OnexIndex, TimeSeries

_TICKERS = (
    "AAPL", "MSFT", "GOOG", "AMZN", "META",
    "NFLX", "NVDA", "TSLA", "ORCL", "INTC",
    "AMD", "IBM", "CRM", "ADBE", "QCOM",
)


def synthesize_market(n_days: int = 180) -> Dataset:
    """Geometric-random-walk prices with a few market-wide regimes."""
    rng = np.random.default_rng(42)
    t = np.arange(n_days)
    market_regime = 0.002 * np.sin(2 * np.pi * t / 90.0)  # shared cycle
    series = []
    for ticker in _TICKERS:
        drift = rng.normal(0.0004, 0.0006)
        vol = rng.uniform(0.01, 0.025)
        returns = drift + market_regime + rng.normal(0.0, vol, n_days)
        prices = 100.0 * np.exp(np.cumsum(returns))
        series.append(TimeSeries(prices, name=ticker))
    return Dataset(series, name="Market")


def main() -> None:
    market = synthesize_market()
    index = OnexIndex.build(market, st=0.2, lengths=[10, 20, 30, 60, 90])
    print(f"indexed {len(market)} tickers over {len(market[0])} days\n")

    # Use case 1: "stocks similar to AAPL days 100-130" (a real window).
    aapl = market[0]
    sample = index.normalize_query(aapl.values[100:130])
    print("stocks moving like AAPL days 100-130:")
    for match in index.query(sample, length=30, k=4):
        ticker = market[match.ssid.series].name
        print(
            f"  {ticker:5} days {match.ssid.start:3}-{match.ssid.stop:3} "
            f"normalized DTW = {match.dtw_normalized:.5f}"
        )

    # Use case 2: a *designed* fluctuation: sharp drop then full rebound.
    designed = np.concatenate(
        [np.linspace(120, 95, 8), np.linspace(95, 125, 12)]
    )
    print("\nbest matches for a designed drop-and-rebound shape (any length):")
    for match in index.query(designed, k=3, normalized=False):
        ticker = market[match.ssid.series].name
        print(
            f"  {ticker:5} days {match.ssid.start:3}-{match.ssid.stop:3} "
            f"(length {match.ssid.length}) normalized DTW = "
            f"{match.dtw_normalized:.5f}"
        )

    # Use case 3: recurring 30-day patterns of AAPL (seasonal similarity).
    seasonal = index.seasonal(30, series=0)
    print(f"\nAAPL 30-day windows with recurring shapes: {len(seasonal)} cluster(s)")
    for cluster in seasonal:
        spans = ", ".join(f"d{s.start}-d{s.stop}" for s in cluster.members[:5])
        extra = " ..." if len(cluster.members) > 5 else ""
        print(f"  cluster {cluster.group_index}: {spans}{extra}")

    # Threshold guidance, then a looser exploration without rebuilding.
    strict = index.recommend("S")[0]
    print(f"\nstrict similarity for this market: ST < {strict.high:.3f}")
    loose = index.with_threshold(min(0.5, strict.high * 2))
    print(
        f"loosening ST to {loose.st:.3f}: {index.rspace.n_groups} -> "
        f"{loose.rspace.n_groups} groups (no rebuild)"
    )

    # Persistence round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "market.npz")
        index.save(path)
        restored = OnexIndex.load(path)
        again = restored.query(sample, length=30, k=1)[0]
        print(
            f"\nsaved + reloaded index answers identically: "
            f"{str(again.ssid)} @ {again.dtw_normalized:.5f}"
        )


if __name__ == "__main__":
    main()
