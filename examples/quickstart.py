"""Quickstart: build an ONEX base and run all three query classes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import OnexIndex, make_dataset


def main() -> None:
    # 1. A dataset: 30 daily power-demand profiles (ItalyPowerDemand-like).
    dataset = make_dataset("ItalyPower", n_series=30, length=24, seed=7)
    print(f"dataset: {dataset!r}")

    # 2. One-time preprocessing: cluster all subsequences into similarity
    #    groups with ED, keep one representative per group (the ONEX base).
    index = OnexIndex.build(dataset, st=0.2)
    stats = index.stats()
    print(
        f"built ONEX base in {stats.build_seconds:.2f}s: "
        f"{stats.n_representatives} representatives summarize "
        f"{stats.n_subsequences} subsequences ({stats.size_mb:.3f} MB)"
    )

    # 3. Class I - similarity query. The sample is the morning of day 5;
    #    ONEX runs DTW only against representatives, then inside one group.
    sample = index.dataset[5].values[4:16]
    print("\nQ1: best matches for day 5's morning profile (Match = Any):")
    for match in index.query(sample, k=3):
        print(
            f"  {str(match.ssid):16} normalized DTW = {match.dtw_normalized:.5f} "
            f"(group G{match.group[0]}.{match.group[1]})"
        )

    # 4. Class II - seasonal similarity: recurring half-day shapes of day 0.
    length = index.rspace.lengths[1]
    seasonal = index.seasonal(length, series=0)
    print(
        f"\nQ2: recurring length-{length} shapes inside day 0: "
        f"{len(seasonal)} cluster(s)"
    )
    for cluster in seasonal:
        members = ", ".join(str(ssid) for ssid in cluster.members)
        print(f"  cluster {cluster.group_index}: {members}")

    # 5. Class III - threshold recommendation: what does "strict" mean here?
    print("\nQ3: recommended similarity-threshold ranges:")
    for rec in index.recommend():
        high = "inf" if rec.high == float("inf") else f"{rec.high:.3f}"
        print(f"  degree {rec.degree}: ST in [{rec.low:.3f}, {high})")

    # 6. Changing the threshold does not rebuild the base (Algorithm 2.C).
    looser = index.with_threshold(0.4)
    print(
        f"\nadapted ST 0.2 -> 0.4 without rebuilding: "
        f"{index.rspace.n_groups} groups -> {looser.rspace.n_groups} groups"
    )

    # 7. Scaling up from here: `OnexIndex.build(..., n_jobs=4)` (CLI:
    #    `onex build --jobs 4`) shards construction across worker
    #    processes over a shared mmap of the subsequence store — the
    #    result is bit-identical to the sequential build — and saving to
    #    a path without an .npz suffix (e.g. `index.save("base.onex")`)
    #    writes the memory-mapped v3 directory format, which loads in
    #    O(manifest) and hydrates each length bucket on first query.


if __name__ == "__main__":
    main()
