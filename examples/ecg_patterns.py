"""ECG exploration: accuracy versus the exact brute-force answer.

Medicine is one of the paper's headline domains ("applications in
medicine and finances that depend on immediate answers"). This example
indexes synthetic heartbeats, searches for beats similar to an abnormal
one, verifies ONEX's answer against the exact Standard DTW baseline,
and reports the §6.2.1 accuracy/time numbers for this tiny workload.

Run with::

    python examples/ecg_patterns.py
"""

from __future__ import annotations

import time

from repro import OnexIndex, make_dataset
from repro.baselines import StandardDTW
from repro.data.normalize import min_max_normalize_dataset


def main() -> None:
    dataset = min_max_normalize_dataset(
        make_dataset("ECG", n_series=24, length=96, seed=11)
    )
    lengths = [24, 36, 48, 72, 96]
    index = OnexIndex.build(dataset, st=0.2, lengths=lengths, normalize=False)
    brute = StandardDTW()
    brute.prepare(dataset, lengths)
    print(f"{index!r}\n")

    # Beat 0 is abnormal (the generator marks every third beat); find the
    # most similar full beats anywhere in the collection.
    abnormal = dataset[0].values
    print("beats most similar to the abnormal beat 0 (ONEX, Match=Any):")
    started = time.perf_counter()
    matches = index.query(abnormal, k=4)
    onex_time = time.perf_counter() - started
    for match in matches:
        label = dataset[match.ssid.series].label
        kind = "abnormal" if label == -1 else "normal"
        print(
            f"  {str(match.ssid):16} {kind:8} "
            f"normalized DTW = {match.dtw_normalized:.5f}"
        )

    # The exact answer, for comparison.
    started = time.perf_counter()
    exact = brute.best_match(abnormal)
    brute_time = time.perf_counter() - started
    error = max(0.0, matches[0].dtw_normalized - exact.dtw_normalized)
    print(
        f"\nexact best (Standard DTW): {str(exact.ssid)} @ "
        f"{exact.dtw_normalized:.5f}"
    )
    print(
        f"ONEX error = {error:.5f} -> accuracy "
        f"{(1.0 - error * 2 * len(abnormal)) * 100:.2f}% "
        f"(paper metric, raw-DTW scale)"
    )
    print(
        f"time: ONEX {onex_time * 1000:.1f} ms vs Standard DTW "
        f"{brute_time * 1000:.1f} ms ({brute_time / onex_time:.1f}x)"
    )

    # Recurring morphology inside one long recording: seasonal similarity
    # over quarter-beat windows.
    seasonal = index.seasonal(24, series=1)
    print(
        f"\nrecurring quarter-beat shapes inside beat 1: "
        f"{len(seasonal)} cluster(s), {seasonal.n_subsequences} windows"
    )


if __name__ == "__main__":
    main()
