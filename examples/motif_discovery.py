"""Extensions tour: motifs, incremental maintenance and classification.

Three capabilities built on top of the ONEX base beyond the paper's
evaluation (see ``repro.extensions``):

1. **Motif discovery** — the similarity groups double as ready-made
   clusters of recurring shapes; rank them, no extra scan needed.
2. **Incremental maintenance** — a newly arriving series joins the base
   through Algorithm 1's admission rule, without a full rebuild.
3. **1-NN classification** — the UCR-standard classifier, answered from
   the index instead of a training-set scan.

Run with::

    python examples/motif_discovery.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import OnexIndex, make_dataset
from repro.extensions import OnexKnnClassifier, append_series, discover_motifs


def sparkline(values: np.ndarray, width: int = 40) -> str:
    """Render a sequence as a unicode sparkline for terminal output."""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        step = len(values) / width
        values = np.array([values[int(i * step)] for i in range(width)])
    low, high = float(values.min()), float(values.max())
    span = (high - low) or 1.0
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))] for v in values)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Motif discovery on ECG beats.
    # ------------------------------------------------------------------
    dataset = make_dataset("ECG", n_series=24, length=96, seed=11)
    index = OnexIndex.build(dataset, st=0.2, lengths=[24, 48, 96])
    print("top recurring patterns (motifs) across all beats:")
    for rank, motif in enumerate(discover_motifs(index, top_k=3), start=1):
        print(
            f"  #{rank} length={motif.length:3} occurrences={len(motif):3} "
            f"series={motif.n_series:2} score={motif.score:7.2f}"
        )
        print(f"      shape: {sparkline(motif.representative)}")

    # ------------------------------------------------------------------
    # 2. A new recording arrives: extend the base incrementally.
    # ------------------------------------------------------------------
    fresh = make_dataset("ECG", n_series=1, length=96, seed=999)[0]
    started = time.perf_counter()
    grown = append_series(index, fresh.values, name="new-beat")
    incremental = time.perf_counter() - started
    started = time.perf_counter()
    OnexIndex.build(
        grown.dataset, st=0.2, lengths=[24, 48, 96], normalize=False
    )
    full_rebuild = time.perf_counter() - started
    print(
        f"\nincremental append: {incremental * 1000:.1f} ms vs full rebuild "
        f"{full_rebuild * 1000:.1f} ms ({full_rebuild / incremental:.1f}x)"
    )
    probe = grown.dataset[-1].values[10:58]
    match = grown.query(probe)[0]
    print(f"the new beat is immediately queryable: best match {match.ssid}")

    # ------------------------------------------------------------------
    # 3. 1-NN classification of power-demand days (winter vs summer).
    # ------------------------------------------------------------------
    days = make_dataset("ItalyPower", n_series=60, length=24, seed=5)
    series = [s.values for s in days]
    labels = [s.label for s in days]
    train_x, train_y = series[:40], labels[:40]
    test_x, test_y = series[40:], labels[40:]
    classifier = OnexKnnClassifier(st=0.2, k=1).fit(train_x, train_y)
    accuracy = classifier.score(test_x, test_y)
    print(
        f"\n1-NN season classification over the ONEX base: "
        f"{accuracy * 100:.1f}% accuracy on {len(test_x)} held-out days"
    )


if __name__ == "__main__":
    main()
