"""The paper's motivating example: exploring economic indicators.

§1.1 of the paper describes analysts in Massachusetts studying the 2013
tax repeal: they *designed* a sample growth-rate timeline indicating a
positive impact and searched all states for matches — with the sample
sequence possibly absent from the data — and compared indicators
reported over different durations (hence DTW, not ED).

This example synthesizes growth-rate series for 20 "states" (trend +
business cycle + policy shocks), registers a hand-designed recovery
shape, and explores with the paper's query language.

Run with::

    python examples/economic_indicators.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, OnexIndex, TimeSeries
from repro.query import QueryExecutor


def synthesize_states(n_states: int = 20, n_quarters: int = 48) -> Dataset:
    """Quarterly growth-rate series per state: cycle + trend + shocks."""
    rng = np.random.default_rng(2013)
    series = []
    for state in range(n_states):
        t = np.arange(n_quarters, dtype=float)
        cycle = 1.5 * np.sin(2 * np.pi * t / rng.uniform(14, 22) + rng.uniform(0, 6))
        trend = rng.uniform(-0.02, 0.05) * t
        shocks = np.zeros(n_quarters)
        for _ in range(rng.integers(1, 4)):
            at = int(rng.integers(4, n_quarters - 8))
            shocks[at : at + 8] += rng.choice([-1.0, 1.0]) * np.linspace(
                0, rng.uniform(0.5, 2.0), 8
            )
        noise = rng.normal(0.0, 0.25, n_quarters)
        growth = 2.0 + cycle + trend + shocks + noise
        series.append(TimeSeries(growth, name=f"state-{state:02d}"))
    return Dataset(series, name="StateGrowthRates")


def designed_recovery(n_quarters: int = 12) -> np.ndarray:
    """A hand-designed 'positive impact' shape: dip, then steady recovery."""
    dip = np.linspace(2.0, 0.5, 4)
    recovery = np.linspace(0.5, 3.5, n_quarters - 4)
    return np.concatenate([dip, recovery])


def main() -> None:
    dataset = synthesize_states()
    index = OnexIndex.build(dataset, st=0.2, lengths=[8, 12, 16, 24, 32, 48])
    print(f"indexed {len(dataset)} states: {index!r}\n")

    executor = QueryExecutor(index)
    executor.register_sequence("recovery", designed_recovery())

    # Q1 - "which states' growth ever looked like this designed recovery?"
    print("Q1: OUTPUT X FROM states WHERE seq = recovery, k = 3 MATCH = Any")
    matches = executor.execute(
        "OUTPUT X FROM states WHERE seq = recovery, k = 3 MATCH = Any"
    )
    for match in matches:
        state = dataset[match.ssid.series].name
        print(
            f"  {state} quarters {match.ssid.start}-{match.ssid.stop}: "
            f"normalized DTW = {match.dtw_normalized:.4f}"
        )

    # Q2 - "does state 3 repeat its own growth patterns?" (recurring shapes)
    print("\nQ2: OUTPUT SeasonalSim FROM states WHERE seq = state-03 MATCH = Exact(12)")
    seasonal = executor.execute(
        "OUTPUT SeasonalSim FROM states WHERE seq = state-03 MATCH = Exact(12)"
    )
    print(f"  {len(seasonal)} recurring cluster(s) inside state-03")
    for cluster in seasonal:
        spans = ", ".join(
            f"q{ssid.start}-q{ssid.stop}" for ssid in cluster.members
        )
        print(f"  cluster {cluster.group_index}: {spans}")

    # Q3 - "what threshold counts as strict similarity for this data?"
    print("\nQ3: OUTPUT ST FROM states WHERE simDegree = S MATCH = Any")
    for rec in executor.execute(
        "OUTPUT ST FROM states WHERE simDegree = S MATCH = Any"
    ):
        print(f"  strict similarity: ST in [{rec.low:.3f}, {rec.high:.3f})")

    # Range form of Q1: every 16-quarter window within a loose threshold.
    print("\nQ1 (range): OUTPUT X FROM states WHERE Sim <= 0.3, seq = recovery MATCH = Exact(16)")
    within = executor.execute(
        "OUTPUT X FROM states WHERE Sim <= 0.3, seq = recovery MATCH = Exact(16)"
    )
    states = sorted({dataset[m.ssid.series].name for m in within})
    print(f"  {len(within)} windows across {len(states)} states matched")


if __name__ == "__main__":
    main()
