"""Bounded LRU cache of query results for the serving layer.

Interactive exploration workloads repeat themselves: the same sample
sequence is re-submitted with a tweaked ``k``, or many users probe the
same canonical shapes. The :class:`ResultCache` memoizes fully-refined
answers keyed by a digest of the (normalized) query values plus every
parameter that affects the result — length constraint, ``k``, the
index's similarity threshold — so a repeated request costs one dict
lookup instead of a representative scan. All operations take one lock;
hit/miss counters are surfaced through ``OnexService.info`` (and the
``info`` op of ``onex serve``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

import numpy as np


def query_digest(values: np.ndarray) -> str:
    """Content digest of a query sequence (dtype- and shape-stable)."""
    array = np.ascontiguousarray(values, dtype=np.float64)
    return hashlib.sha1(array.tobytes()).hexdigest()


class ResultCache:
    """Thread-safe LRU map from query keys to result lists.

    Parameters
    ----------
    capacity:
        Maximum number of cached results; the least recently used entry
        is evicted beyond it. ``0`` disables caching (every lookup is a
        miss and nothing is stored).
    max_bytes:
        Byte budget over the cached match arrays (a ``within`` result
        near the index ST can carry every qualifying subsequence's
        values — entry counts alone would not bound memory in a
        long-lived server). Least recently used entries are evicted
        beyond it, and a single result larger than the whole budget is
        served but never stored.
    """

    DEFAULT_MAX_BYTES = 256 * 1024 * 1024

    def __init__(
        self, capacity: int = 1024, max_bytes: int | None = None
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.max_bytes = (
            self.DEFAULT_MAX_BYTES if max_bytes is None else int(max_bytes)
        )
        if self.max_bytes < 0:
            raise ValueError(f"cache max_bytes must be >= 0, got {max_bytes}")
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()  # guarded-by: _lock
        self._sizes: dict[Hashable, int] = {}  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @staticmethod
    def make_key(values: np.ndarray, **params: object) -> tuple:
        """Cache key: query digest + the parameters shaping the result."""
        return (
            query_digest(values),
            int(np.asarray(values).shape[0]),
            tuple(sorted(params.items())),
        )

    def get(self, key: Hashable) -> Any | None:
        """The cached result for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    @staticmethod
    def _result_bytes(value: Any) -> int:
        """Approximate footprint of a cached result (match value arrays)."""
        total = 0
        for item in value if isinstance(value, (tuple, list)) else (value,):
            values = getattr(item, "values", None)
            total += values.nbytes if isinstance(values, np.ndarray) else 64
        return total + 128  # key + tuple overhead, roughly

    def put(self, key: Hashable, value: Any) -> None:
        """Store a result, evicting least-recently-used entries if full."""
        if self.capacity == 0:
            return
        size = self._result_bytes(value)
        if size > self.max_bytes:
            return  # larger than the whole budget: serve it, don't keep it
        with self._lock:
            if key in self._entries:
                self._bytes -= self._sizes[key]
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._sizes[key] = size
            self._bytes += size
            while (
                len(self._entries) > self.capacity
                or self._bytes > self.max_bytes
            ):
                evicted_key, _ = self._entries.popitem(last=False)
                self._bytes -= self._sizes.pop(evicted_key)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        """Hit/miss counters plus occupancy, as one JSON-friendly dict."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._entries)
            cached_bytes = self._bytes
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "capacity": self.capacity,
            "bytes": cached_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        # One lock acquisition for a consistent (entries, hits, misses)
        # snapshot — the previous unguarded counter reads were the
        # lockset checker's (ONEX301) first real catch.
        with self._lock:
            entries, hits, misses = len(self._entries), self.hits, self.misses
        return (
            f"<ResultCache {entries}/{self.capacity} "
            f"hits={hits} misses={misses}>"
        )
