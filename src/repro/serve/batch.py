"""True batched execution of Class I similarity queries.

``OnexIndex.query_batch`` historically looped ``query`` over its inputs
— the batch-kernel payloads were amortized, but every query still paid
its own representative scan (one Python-level DP sweep per query) and
its own in-group refinement, serially. The executor here makes the
batch real, in two moves:

1. **Length-grouped stacked scans.** Incoming queries are grouped by
   resolved length — queries of one length visit the same buckets in
   the same §5.3 order — and each group selects its buckets through
   :meth:`~repro.core.query_processor.QueryProcessor.assign_buckets_stacked`,
   the single owner of the sweep semantics (it lives next to
   ``best_match`` so the per-query and batched paths cannot drift).
   Underneath, the scan is one stacked kernel pass per bucket: the full
   (query, representative) lower-bound matrix in a few NumPy
   reductions, then fused :func:`~repro.distances.batch.dtw_pairs`
   sweeps whose Python-level DP loop is paid per chunk stage instead of
   per query.
2. **Fanned refinement.** The per-query in-group searches that follow
   are independent, so they run across a thread pool; the underlying
   payload construction is build-once-under-contention (bucket payload
   locks), so workers share stacks instead of rebuilding them, and each
   worker's thread-local stats merge back into the caller's.

The result is **bit-identical** to the sequential per-query loop
(``benchmarks/bench_serving.py`` asserts both the identity and the
throughput win).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

import numpy as np

from repro.core.query_processor import QueryStats
from repro.core.results import Match
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


def default_workers() -> int:
    """Default refinement fan-out: the core count, bounded sanely."""
    return max(1, min(32, os.cpu_count() or 1))


def execute_batch(
    index,
    queries: Sequence[np.ndarray],
    length: int | None = None,
    k: int = 1,
    normalized: bool = True,
    stop_at_half_st: bool = True,
    pool: ThreadPoolExecutor | None = None,
    max_workers: int | None = None,
) -> list[list[Match]]:
    """Answer a batch of Q1 queries through the grouped executor.

    Parameters mirror :meth:`repro.core.onex.OnexIndex.query_batch`;
    ``pool`` lets a long-lived caller (:class:`~repro.serve.service.OnexService`)
    reuse its thread pool, otherwise a transient pool of ``max_workers``
    threads (default: :func:`default_workers`) refines the groups.
    Returns one match list per query, in input order — bit-identical to
    the sequential per-query loop.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    prepared = []
    for query in queries:
        query = as_float_array(query, "query")
        if not normalized:
            query = index.normalize_query(query)
        prepared.append(query)
    if not prepared:
        return []
    processor = index.processor
    processor.last_stats = QueryStats()

    # Group queries by resolved length: an explicit Exact(L) pins every
    # query to bucket L; Match=Any queries of one sample length share
    # the same §5.3 length order, so they sweep together.
    groups: dict[int, list[int]] = {}
    for position, query in enumerate(prepared):
        groups.setdefault(query.shape[0], []).append(position)

    assignments: list[tuple | None] = [None] * len(prepared)
    for positions in groups.values():
        matrix = np.stack([prepared[position] for position in positions])
        assigned = processor.assign_buckets_stacked(
            matrix, length=length, stop_at_half_st=stop_at_half_st
        )
        for position, assignment in zip(positions, assigned, strict=True):
            assignments[position] = assignment

    # Refinement runs on pool threads whose thread-local stats would be
    # discarded; give each task fresh counters and merge them back so
    # the caller's ``last_stats`` reflects the whole batch's work.
    caller_stats = processor.last_stats
    merge_lock = threading.Lock()

    def refine(position: int) -> list[Match]:
        bucket, scans = assignments[position]
        if processor.last_stats is caller_stats:
            return processor.search_groups(bucket, scans, prepared[position], k)
        processor.last_stats = task_stats = QueryStats()
        matches = processor.search_groups(bucket, scans, prepared[position], k)
        with merge_lock:
            caller_stats.merge(task_stats)
        return matches

    order = range(len(prepared))
    if pool is not None:
        return list(pool.map(refine, order))
    workers = default_workers() if max_workers is None else int(max_workers)
    workers = min(max(1, workers), len(prepared))
    if workers <= 1:
        return [refine(position) for position in order]
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="onex-batch"
    ) as transient:
        return list(transient.map(refine, order))
