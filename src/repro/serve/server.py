"""JSON-lines request/response loop behind ``onex serve``.

One request per input line, one JSON response per output line — the
simplest protocol that lets a supervisor (or a shell pipe) drive the
thread-safe service. Requests are objects with an ``op`` field; any
``id`` field is echoed back so callers can multiplex:

``{"op": "query", "values": [...], "length": 12, "k": 3}``
    Q1 best match. Send ``"queries": [[...], ...]`` instead of
    ``values`` to answer a whole batch through the grouped executor.
    ``"normalized": false`` marks raw-scale inputs.
``{"op": "within", "values": [...], "st": 0.3}``
    Q1 range form.
``{"op": "seasonal", "length": 12, "series": 0}``
    Q2 (omit ``series`` for the data-driven variant).
``{"op": "recommend", "degree": "S"}``
    Q3 (omit ``degree`` for all three).
``{"op": "info"}``
    Index statistics plus live cache hit/miss counters.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``;
the loop never dies on a bad request. ``inf`` thresholds serialize as
``null`` (strict-JSON friendly).
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable
from typing import IO

from repro.core.results import Match, SeasonalResult, ThresholdRecommendation
from repro.serve.service import OnexService


def match_to_dict(match: Match) -> dict:
    """JSON-friendly view of one Q1 match (values elided: ids suffice)."""
    return {
        "series": match.ssid.series,
        "start": match.ssid.start,
        "length": match.ssid.length,
        "dtw": match.dtw,
        "dtw_normalized": match.dtw_normalized,
        "group": list(match.group),
    }


def _seasonal_to_dict(result: SeasonalResult) -> dict:
    return {
        "length": result.length,
        "series": result.series,
        "groups": [
            {
                "group_index": group.group_index,
                "members": [
                    [ssid.series, ssid.start, ssid.length]
                    for ssid in group.members
                ],
            }
            for group in result
        ],
    }


def _recommendation_to_dict(rec: ThresholdRecommendation) -> dict:
    return {
        "degree": rec.degree,
        "low": rec.low,
        "high": None if math.isinf(rec.high) else rec.high,
        "length": rec.length,
    }


def handle_request(service: OnexService, request: dict) -> dict:
    """Dispatch one decoded request; exceptions become error responses."""
    op = request.get("op")
    # timeout_ms is validated (shared error text with the cluster
    # router) but not enforced single-process: one process has no
    # subrequests to budget, and compute here is bounded by design.
    raw_timeout = request.get("timeout_ms")
    if raw_timeout is not None and not float(raw_timeout) > 0:
        raise ValueError(f"timeout_ms must be > 0, got {raw_timeout}")
    if op == "query":
        kwargs = {
            "length": request.get("length"),
            "k": int(request.get("k", 1)),
            "normalized": bool(request.get("normalized", True)),
        }
        if "values" not in request and "queries" not in request:
            raise ValueError("query op requires 'values' or 'queries'")
        if "queries" in request:
            results = service.query_batch(request["queries"], **kwargs)
            return {
                "ok": True,
                "results": [
                    [match_to_dict(match) for match in matches]
                    for matches in results
                ],
            }
        matches = service.query(request["values"], **kwargs)
        return {"ok": True, "matches": [match_to_dict(m) for m in matches]}
    if op == "within":
        matches = service.within(
            request["values"],
            st=request.get("st"),
            length=request.get("length"),
            normalized=bool(request.get("normalized", True)),
            lengths=request.get("lengths"),
        )
        return {"ok": True, "matches": [match_to_dict(m) for m in matches]}
    if op == "seasonal":
        result = service.seasonal(
            int(request["length"]),
            series=request.get("series"),
            min_members=int(request.get("min_members", 2)),
        )
        return {"ok": True, "seasonal": _seasonal_to_dict(result)}
    if op == "recommend":
        recs = service.recommend(
            degree=request.get("degree"), length=request.get("length")
        )
        return {
            "ok": True,
            "recommendations": [_recommendation_to_dict(r) for r in recs],
        }
    if op == "info":
        return {"ok": True, "info": service.info()}
    if op == "ping":
        return {"ok": True, "pong": True}
    return {"ok": False, "error": f"unknown op {op!r}"}


def respond(service: OnexService, request: dict) -> dict:
    """Answer one decoded request, owning id echo and error mapping.

    Every response — success *or* failure — carries the request's
    ``id`` when one was given, so multiplexing clients can correlate
    failures too. This is the single entry point shared by the
    JSON-lines loop below and the cluster shard workers.
    """
    request_id = None
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        request_id = request.get("id")
        response = handle_request(service, request)
    except Exception as exc:  # noqa: BLE001 — one bad request must
        # never take down the long-lived server (OverflowError from
        # an absurd k, AttributeError from a malformed degree, ...);
        # KeyboardInterrupt/SystemExit still propagate.
        response = {"ok": False, "error": str(exc) or repr(exc)}
    if request_id is not None:
        response["id"] = request_id
    return response


def serve_lines(service: OnexService, lines: Iterable[str]) -> Iterable[str]:
    """Map request lines to response lines (blank lines are skipped)."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError as exc:
            # The id is unrecoverable from an unparseable line.
            yield json.dumps({"ok": False, "error": str(exc) or repr(exc)})
            continue
        yield json.dumps(respond(service, request))


def serve_forever(
    service: OnexService, input_stream: IO[str], output_stream: IO[str]
) -> int:
    """Run the loop until EOF on ``input_stream``; returns an exit code."""
    for response in serve_lines(service, input_stream):
        output_stream.write(response + "\n")
        output_stream.flush()
    return 0
