"""The thread-safe ONEX serving front end.

:class:`OnexService` wraps a built (or lazily loaded v3)
:class:`~repro.core.onex.OnexIndex` for concurrent multi-user traffic —
the online half of the paper run as a long-lived process rather than a
one-shot script. It adds exactly three things on top of the index:

* **Safe concurrency.** All lazily-built query state — v3 bucket
  hydration, representative envelope stacks, member-matrix stacks, store
  views — is build-once-under-contention (per-bucket/per-payload locks
  in the core), so any number of threads may call :meth:`query`,
  :meth:`within`, :meth:`seasonal` or :meth:`recommend` simultaneously
  and receive results bit-identical to serial execution.
* **An LRU result cache** (:class:`~repro.serve.cache.ResultCache`)
  keyed by query digest plus the parameters that shape the answer
  (length constraint, ``k``, the index's ST). Hit/miss statistics are
  surfaced through :meth:`info` and the ``info`` op of ``onex serve``.
* **A real batch executor**: :meth:`query_batch` groups queries by
  resolved length and runs stacked representative scans plus thread-pool
  refinement (:mod:`repro.serve.batch`) over a pool owned by the
  service, so the pool's threads are reused across requests.
* **A warm kernel backend**: construction resolves the active kernel
  backend (:mod:`repro.distances.backend`) and warms it up — for the
  JIT backend that means compiling every kernel *now*, so the first
  query never eats compile latency. The backend identity, warmup time,
  and the per-stage cascade counters accumulated across all queries
  (merged from every worker thread) are surfaced through :meth:`info`.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

import numpy as np

from repro.core.query_processor import QueryStats, _RepScan
from repro.core.results import (
    Match,
    SeasonalResult,
    ThresholdRecommendation,
)
from repro.distances.backend import get_backend
from repro.serve.batch import default_workers, execute_batch
from repro.serve.cache import ResultCache
from repro.utils.validation import as_float_array


class OnexService:
    """Serve one :class:`~repro.core.onex.OnexIndex` to many callers.

    Parameters
    ----------
    index:
        The built index to serve (commonly a lazily-loaded v3
        directory: buckets hydrate on first demand, exactly once, even
        under concurrent first queries).
    max_workers:
        Threads in the service's refinement pool (default:
        :func:`~repro.serve.batch.default_workers`).
    cache_size:
        Entry capacity of the LRU result cache; ``0`` disables caching.
    cache_bytes:
        Byte budget over the cached match arrays (default
        :data:`~repro.serve.cache.ResultCache.DEFAULT_MAX_BYTES`).
    """

    def __init__(
        self,
        index,
        max_workers: int | None = None,
        cache_size: int = 1024,
        cache_bytes: int | None = None,
    ) -> None:
        self.index = index
        self.max_workers = (
            default_workers() if max_workers is None else max(1, int(max_workers))
        )
        self.cache = ResultCache(cache_size, max_bytes=cache_bytes)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="onex-serve"
        )
        self._closed = False
        # Warm the refinement kernels now: a JIT backend compiles on
        # first use, and that latency belongs to startup, not to the
        # first user's query.
        self.backend = get_backend()
        self.backend_warmup_seconds = self.backend.warmup()
        # Service-lifetime work counters, merged from every thread that
        # answered a query (the batch executor already folds its
        # workers' counters into the calling thread's).
        self._stats_lock = threading.Lock()
        self._query_stats = QueryStats()  # guarded-by: _stats_lock

    def _absorb_query_stats(self) -> None:
        """Fold the calling thread's last-query counters into the totals."""
        stats = self.index.processor.last_stats
        with self._stats_lock:
            self._query_stats.merge(stats)

    # ------------------------------------------------------------------
    # Class I
    # ------------------------------------------------------------------
    def _prepare(self, values: np.ndarray, normalized: bool) -> np.ndarray:
        values = as_float_array(values, "query")
        if not normalized:
            values = self.index.normalize_query(values)
        return values

    def query(
        self,
        values: np.ndarray,
        length: int | None = None,
        k: int = 1,
        normalized: bool = True,
        stop_at_half_st: bool = True,
    ) -> list[Match]:
        """Best match(es) for one sample sequence (Q1), cached."""
        values = self._prepare(values, normalized)
        key = ResultCache.make_key(
            values,
            kind="query",
            length=length,
            k=int(k),
            st=self.index.st,
            stop=bool(stop_at_half_st),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        matches = self.index.query(
            values, length=length, k=k, stop_at_half_st=stop_at_half_st
        )
        self._absorb_query_stats()
        self.cache.put(key, tuple(matches))
        return matches

    def query_batch(
        self,
        queries: Sequence[np.ndarray],
        length: int | None = None,
        k: int = 1,
        normalized: bool = True,
        stop_at_half_st: bool = True,
    ) -> list[list[Match]]:
        """Answer a batch of Q1 queries through the grouped executor.

        Cache hits are answered immediately; the remaining queries run
        length-grouped over the service pool, and their results are
        cached for the next request.
        """
        prepared = [self._prepare(values, normalized) for values in queries]
        keys = [
            ResultCache.make_key(
                values,
                kind="query",
                length=length,
                k=int(k),
                st=self.index.st,
                stop=bool(stop_at_half_st),
            )
            for values in prepared
        ]
        results: list[list[Match] | None] = [
            None if (hit := self.cache.get(key)) is None else list(hit)
            for key in keys
        ]
        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            if self.index.processor.use_batch_kernels:
                fresh = execute_batch(
                    self.index,
                    [prepared[i] for i in missing],
                    length=length,
                    k=k,
                    normalized=True,
                    stop_at_half_st=stop_at_half_st,
                    pool=self._pool,
                )
                self._absorb_query_stats()
            else:
                # Scalar-reference configuration: honour it (the stacked
                # executor is a batch-kernel path), exactly like
                # OnexIndex.query_batch's grouped guard.
                fresh = []
                for i in missing:
                    fresh.append(
                        self.index.query(
                            prepared[i],
                            length=length,
                            k=k,
                            stop_at_half_st=stop_at_half_st,
                        )
                    )
                    self._absorb_query_stats()
            for i, matches in zip(missing, fresh, strict=True):
                self.cache.put(keys[i], tuple(matches))
                results[i] = matches
        return results  # type: ignore[return-value]

    def within(
        self,
        values: np.ndarray,
        st: float | None = None,
        length: int | None = None,
        normalized: bool = True,
        refine: bool = True,
        lengths: Sequence[int] | None = None,
    ) -> list[Match]:
        """All subsequences within ``st`` of the sample (Q1 range form).

        ``lengths`` restricts the sweep to a subset of indexed lengths
        (the cluster tier sends each shard worker its owned lengths);
        mutually exclusive with ``length``.
        """
        values = self._prepare(values, normalized)
        key = ResultCache.make_key(
            values,
            kind="within",
            st=self.index.st if st is None else float(st),
            length=length,
            refine=bool(refine),
            lengths=None if lengths is None else tuple(sorted(lengths)),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        matches = self.index.processor.within_threshold(
            values, st=st, length=length, refine=refine, lengths=lengths
        )
        self.cache.put(key, tuple(matches))
        return matches

    # ------------------------------------------------------------------
    # Cluster scatter-gather primitives (see repro.serve.cluster)
    # ------------------------------------------------------------------
    def scan(
        self,
        values: np.ndarray,
        lengths: Sequence[int],
        normalized: bool = True,
    ) -> dict[int, list[tuple[int, float, float]]]:
        """Open-bound representative scans of ``lengths`` for one query.

        Returns ``{length: [(group_index, dtw_raw, dtw_normalized),
        ...]}`` — the shard worker's half of a ``Match = Any`` query.
        Each length's scan is cached independently, so a repeated query
        costs one dict lookup per owned length.
        """
        values = self._prepare(values, normalized)
        result: dict[int, list[tuple[int, float, float]]] = {}
        for length in lengths:
            length = int(length)
            key = ResultCache.make_key(
                values, kind="scan", length=length, st=self.index.st
            )
            cached = self.cache.get(key)
            if cached is None:
                scans = self.index.processor.scan_length(length, values)
                self._absorb_query_stats()
                cached = tuple(
                    (scan.group_index, scan.dtw_raw, scan.dtw_normalized)
                    for scan in scans
                )
                self.cache.put(key, cached)
            result[length] = list(cached)
        return result

    def refine(
        self,
        values: np.ndarray,
        length: int,
        scans: Sequence[tuple[int, float, float]],
        k: int = 1,
        normalized: bool = True,
    ) -> list[Match]:
        """In-group refinement for a sweep the router already replayed.

        ``scans`` is the winning length's scan list exactly as
        :meth:`scan` returned it; the answer is exactly what
        :meth:`query` would return for this query when the §5.3 sweep
        selects ``length``.
        """
        values = self._prepare(values, normalized)
        scan_objs = [
            _RepScan(
                group_index=int(group_index),
                dtw_raw=float(dtw_raw),
                dtw_normalized=float(dtw_normalized),
            )
            for group_index, dtw_raw, dtw_normalized in scans
        ]
        key = ResultCache.make_key(
            values,
            kind="refine",
            length=int(length),
            k=int(k),
            st=self.index.st,
            scans=tuple(
                (scan.group_index, scan.dtw_raw) for scan in scan_objs
            ),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        matches = self.index.processor.refine_scans(
            length, scan_objs, values, k=k
        )
        self._absorb_query_stats()
        self.cache.put(key, tuple(matches))
        return matches

    def shard_info(self, lengths: Sequence[int] | None = None) -> dict:
        """Lightweight per-shard introspection (no full hydration).

        Unlike :meth:`info`, this never touches buckets outside
        ``lengths`` — :meth:`info` calls ``index.stats()``, which
        hydrates *every* length and would defeat shard isolation.
        """
        owned = (
            self.index.rspace.lengths
            if lengths is None
            else sorted(int(length) for length in lengths)
        )
        with self._stats_lock:
            query_stats = dataclasses.asdict(self._query_stats)
        return {
            "dataset": self.index.dataset.name,
            "st": self.index.st,
            "lengths": owned,
            "hydrated_lengths": [
                length
                for length in self.index.rspace.hydrated_lengths
                if length in owned
            ],
            "workers": self.max_workers,
            "cache": self.cache.stats,
            "backend": {
                "name": self.backend.name,
                "jit": self.backend.jit,
                "warmup_seconds": self.backend_warmup_seconds,
            },
            "query_stats": query_stats,
        }

    # ------------------------------------------------------------------
    # Classes II and III (already read-only; locks in the core make the
    # lazy hydration they trigger safe under concurrency)
    # ------------------------------------------------------------------
    def seasonal(
        self, length: int, series: int | None = None, min_members: int = 2
    ) -> SeasonalResult:
        return self.index.seasonal(length, series=series, min_members=min_members)

    def recommend(
        self, degree=None, length: int | None = None
    ) -> list[ThresholdRecommendation]:
        return self.index.recommend(degree=degree, length=length)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Index statistics plus live serving counters, JSON-friendly.

        ``backend`` names the active kernel backend and its startup
        warmup time; ``query_stats`` holds the service-lifetime work
        counters (including the per-stage cascade kills:
        ``cascade_kim`` / ``cascade_keogh`` / ``cascade_keogh_reverse``
        / ``cascade_dtw_abandon``), merged across every serve worker.
        Cache hits do no refinement work and therefore add nothing.
        ``build`` mirrors that for the construction path: the backend
        that ran the assignment loops plus per-length assign throughput
        from the build profile.
        """
        stats = self.index.stats()
        with self._stats_lock:
            query_stats = dataclasses.asdict(self._query_stats)
        return {
            "dataset": stats.dataset,
            "st": stats.st,
            "n_series": stats.n_series,
            "lengths": self.index.rspace.lengths,
            "hydrated_lengths": self.index.rspace.hydrated_lengths,
            "n_groups": stats.n_groups,
            "n_representatives": stats.n_representatives,
            "n_subsequences": stats.n_subsequences,
            "size_mb": stats.size_mb,
            "workers": self.max_workers,
            "cache": self.cache.stats,
            "backend": {
                "name": self.backend.name,
                "jit": self.backend.jit,
                "warmup_seconds": self.backend_warmup_seconds,
            },
            "build": {
                "backend": getattr(self.index, "build_backend", "numpy"),
                "assign_mode": getattr(
                    self.index, "assign_mode", "sequential"
                ),
                "seconds": stats.build_seconds,
                "profile": [
                    {
                        **entry,
                        "rows_per_second": (
                            entry["n_subsequences"] / entry["seconds"]
                            if entry.get("seconds")
                            else None
                        ),
                    }
                    for entry in getattr(self.index, "build_profile", [])
                ],
            },
            "query_stats": query_stats,
        }

    def close(self) -> None:
        """Shut the refinement pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "OnexService":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<OnexService {self.index.dataset.name!r} "
            f"workers={self.max_workers} cache={len(self.cache)}>"
        )
