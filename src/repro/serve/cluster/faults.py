"""Fault-injection harness for chaos-testing the sharded serving tier.

A :class:`FaultInjector` lives inside every shard worker process and,
when **enabled**, intercepts the worker's reply path to simulate the
failure modes the router must survive (DESIGN.md §15):

``die``
    Exit the process abruptly (``os._exit``) *before* replying — the
    router sees a dead pipe mid-request, exactly like a SIGKILL.
``delay``
    Sleep ``delay_ms`` before replying — a slow shard that should trip
    per-replica timeouts and deadline budgets.
``drop``
    Swallow the response entirely — the request's future strands until
    a deadline (or the worker's death) resolves it.
``corrupt``
    Emit a non-JSON frame instead of the response — exercises the
    router's corrupt-line handling plus deadline-based recovery.

Injection is **off by default** and double-gated: the worker only arms
faults when the ``ONEX_FAULTS=1`` environment variable is set, and the
router refuses to forward the test-only ``inject_fault`` op unless it
sees the same flag. Faults are armed per-op with a finite ``count``,
so a chaos test can say "kill this replica on its next ``scan``" and
the harness disarms itself afterwards. Nothing in this module touches
the serving data path when disabled — ``match`` is a single attribute
check.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Mapping

#: Environment flag that must be ``"1"`` for fault injection to arm.
ENV_FLAG = "ONEX_FAULTS"

#: The failure modes the harness can simulate.
FAULT_KINDS = ("die", "delay", "drop", "corrupt")


@dataclasses.dataclass
class Fault:
    """One armed fault: fires on matching ops until ``remaining`` hits 0."""

    kind: str
    ops: frozenset[str] | None  # None matches every op
    remaining: int
    delay_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ops": None if self.ops is None else sorted(self.ops),
            "remaining": self.remaining,
            "delay_ms": self.delay_ms,
        }


class FaultInjector:
    """Holds armed faults and matches them against request ops.

    The injector is deliberately dumb: it neither sleeps nor exits
    itself — the worker's reply path interprets the matched
    :class:`Fault` so the side effects stay in one auditable place.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._faults: list[Fault] = []

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> FaultInjector:
        """Build an injector gated on ``ONEX_FAULTS=1``."""
        source = os.environ if env is None else env
        return cls(enabled=source.get(ENV_FLAG, "") == "1")

    def arm(
        self,
        kind: str,
        ops: list[str] | None = None,
        count: int = 1,
        delay_ms: float = 0.0,
    ) -> dict:
        """Arm one fault; returns the armed-fault summary for the client."""
        if not self.enabled:
            raise RuntimeError(
                f"fault injection is disabled (set {ENV_FLAG}=1 to enable)"
            )
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (known: {list(FAULT_KINDS)})"
            )
        count = int(count)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        delay_ms = float(delay_ms)
        if kind == "delay" and delay_ms <= 0:
            raise ValueError("delay faults need delay_ms > 0")
        fault = Fault(
            kind=kind,
            ops=None if ops is None else frozenset(str(op) for op in ops),
            remaining=count,
            delay_ms=delay_ms,
        )
        self._faults.append(fault)
        return {"armed": fault.to_dict(), "faults": self.list_faults()}

    def match(self, op: str) -> Fault | None:
        """The first armed fault covering ``op``, consuming one charge.

        ``inject_fault`` itself never matches — the control channel must
        stay usable while faults are armed.
        """
        if not self.enabled or op == "inject_fault":
            return None
        for fault in self._faults:
            if fault.remaining > 0 and (fault.ops is None or op in fault.ops):
                fault.remaining -= 1
                if fault.remaining == 0:
                    self._faults.remove(fault)
                return fault
        return None

    def list_faults(self) -> list[dict]:
        return [fault.to_dict() for fault in self._faults]
