"""Asyncio scatter-gather router over replicated shard worker processes.

The router owns the public serving endpoint (stdio pipe or TCP), spawns
``R`` :mod:`~repro.serve.cluster.worker` processes per shard of the
:mod:`~repro.serve.cluster.shardmap` partition, and answers every
client op by fanning out to the owning shard(s) and merging:

* ``query`` with an explicit ``length`` (and exact-length batches)
  forwards whole to the owning shard — the worker runs the very same
  ``OnexService.query`` a single process would.
* ``query`` with ``Match = Any`` scatters an open-bound ``scan`` to
  every shard, replays the §5.3 length sweep over the gathered
  per-length minima (:func:`replay_sweep`), then sends one targeted
  ``refine`` to the winning length's owner — bit-identical to the
  single-process sweep (see ``QueryProcessor.scan_length``).
* ``within`` without a length fans out with each shard's owned lengths
  and merges by stable sort on normalized distance; because shards own
  contiguous ascending length ranges, shard-order concatenation *is*
  the single-process generation order, so the stable sort reproduces
  the single-process ordering exactly (ties included).
* ``recommend`` routes to shard 0: the SP-Space thresholds are global
  manifest state every worker restores identically.

Fault tolerance (DESIGN.md §15) is router-side and replica-based.
Every shard is served by a :class:`ShardReplicas` set of ``R`` workers
restoring the identical length range over the same mmap'd directory,
so any replica answers bit-identically and failover is invisible to
clients. A shard RPC that dies (worker death) or times out fails over
to another replica with exponential backoff + deterministic-seeded
jitter, bounded by the request's **deadline budget**: every compute op
accepts ``timeout_ms``, the router propagates the remaining budget to
each subrequest (``budget_ms``), and a spent budget answers a
structured ``deadline_exceeded`` error. Consecutive per-worker
failures open a :class:`CircuitBreaker` (half-open probes on a timer)
that steers traffic away from a flapping replica. When *every* replica
of a shard is down, scatter ops honour ``allow_partial=true`` by
answering with the surviving shards plus a ``degraded`` flag naming
the missing ones; without it the request fails ``shard_unavailable``.

Admission control is a bounded in-flight counter: past
``max_inflight``, compute ops are rejected immediately with a
structured ``busy`` error (429 semantics) instead of queueing — the
router's memory stays bounded no matter the offered load. ``health`` /
``metrics`` / ``ping`` / job ops bypass admission so operators can
always see in. Workers are supervised: a dead worker fails its
in-flight requests (triggering failover) and is respawned with
exponential backoff — a crash-looping worker backs off up to
``respawn_backoff_cap`` seconds and is surfaced as ``crash_looping``
in ``health`` instead of respawning in a tight loop. ``drain()`` stops
admission, lets in-flight requests finish, then shuts workers down
cleanly.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import os
import random
import sys
import time

from repro.core.persistence import read_manifest
from repro.core.rspace import search_length_order
from repro.serve.cluster.faults import FaultInjector
from repro.serve.cluster.jobs import JobQueue
from repro.serve.cluster.metrics import ClusterMetrics, LatencyHistogram
from repro.serve.cluster.shardmap import (
    ShardMap,
    assign_replicas,
    shard_map_from_manifest,
)

_NO_REP_ERROR = "no representative reachable; widen the DTW window"

# Ops answered (or enqueued) without touching shard compute capacity:
# observability and job bookkeeping must work even under overload.
_ADMISSION_EXEMPT = frozenset(
    {"ping", "health", "metrics", "submit", "job_status", "jobs"}
)


class ShardUnavailable(Exception):
    """Every replica of a shard failed (or was down) for our request."""

    def __init__(self, shard_index: int):
        super().__init__(f"shard {shard_index} unavailable")
        self.shard_index = shard_index


class DeadlineExceeded(Exception):
    """A request's ``timeout_ms`` budget ran out before it completed."""

    def __init__(self, timeout_ms: float):
        super().__init__(f"deadline of {timeout_ms:g} ms exceeded")
        self.timeout_ms = timeout_ms


def parse_timeout_ms(request: dict) -> float | None:
    """Validate and return ``timeout_ms`` from a request (``None`` if absent).

    The error text is shared verbatim with the single-process server so
    the rejection stays bit-identical across tiers.
    """
    raw = request.get("timeout_ms")
    if raw is None:
        return None
    timeout_ms = float(raw)
    if not timeout_ms > 0:
        raise ValueError(f"timeout_ms must be > 0, got {raw}")
    return timeout_ms


class Budget:
    """A request's remaining deadline, propagated to shard subrequests.

    A child subrequest can never receive more budget than its parent
    has left: ``remaining_seconds`` is measured against one fixed
    deadline instant, so every propagation is monotonically
    non-increasing.
    """

    def __init__(self, timeout_ms: float, clock=time.monotonic) -> None:
        self.timeout_ms = float(timeout_ms)
        self._clock = clock
        self._deadline_time = clock() + self.timeout_ms / 1000.0

    def remaining_seconds(self) -> float:
        return self._deadline_time - self._clock()

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.remaining_seconds() <= 0:
            raise DeadlineExceeded(self.timeout_ms)


class CircuitBreaker:
    """Per-worker breaker: ``closed`` → ``open`` → ``half_open`` → ...

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_after`` seconds it half-opens and admits exactly one probe
    request — success closes it, failure re-opens it (restarting the
    timer). The router's replica picker skips workers whose breaker
    refuses, steering traffic away from a flapping replica without any
    shared state beyond this object (single event loop, no lock).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 5.0,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_after = float(reset_after)
        self._clock = clock
        self._on_transition = on_transition
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_time: float | None = None
        self._probe_inflight = False
        self.transitions: dict[str, int] = {}

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions[state] = self.transitions.get(state, 0) + 1
        if self._on_transition is not None:
            self._on_transition(state)

    def allows(self) -> bool:
        """Whether a request may be routed to this worker right now."""
        if self.state == "closed":
            return True
        if self.state == "open":
            elapsed = self._clock() - self._opened_time
            if elapsed >= self.reset_after:
                self._transition("half_open")
                self._probe_inflight = True
                return True
            return False
        # half_open: exactly one probe at a time.
        if not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self._probe_inflight = False
        self.consecutive_failures = 0
        if self.state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        self._probe_inflight = False
        self.consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_time = self._clock()
            self._transition("open")
        elif self.state == "open":
            self._opened_time = self._clock()

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "transitions": dict(self.transitions),
        }


def respawn_delay(
    consecutive_crashes: int, base: float, cap: float
) -> float:
    """Exponential backoff between respawns of a crashing worker."""
    return min(float(cap), float(base) * 2 ** max(0, consecutive_crashes - 1))


def replay_sweep(
    scans_by_length: dict[int, list],
    lengths: list[int],
    query_length: int,
    st: float,
) -> tuple[int, list] | None:
    """Replay the §5.3 length sweep over gathered open-bound scans.

    Mirrors ``QueryProcessor.best_match``'s ``Match = Any`` loop
    exactly: visit lengths in sweep order, keep the strictly-best
    per-length top scan, stop once a representative is within ``ST/2``.
    A length whose open-bound top does not beat the carried bound
    contributes nothing — precisely the lengths whose bounded scan
    would have come back empty in-process. Returns ``(best_length,
    best_scans)`` or ``None`` when no representative is reachable.
    """
    best_length: int | None = None
    best_scans: list | None = None
    bound = math.inf
    for length in search_length_order(lengths, query_length):
        scans = scans_by_length.get(length) or []
        if not scans:
            continue
        top = scans[0][2]
        if best_scans is None or top < bound:
            best_length, best_scans, bound = length, scans, top
        if top <= st / 2.0:
            break
        # A top above the carried bound is exactly an in-process empty
        # bounded scan: no update, and no half-ST stop check can fire
        # (the bound is already above ST/2 or the sweep would have
        # stopped at the length that set it).
    if best_scans is None:
        return None
    return best_length, best_scans


def merge_within(shard_results: list[list[dict]]) -> list[dict]:
    """Merge per-shard ``within`` matches into single-process order.

    ``shard_results`` must be in shard order (contiguous ascending
    length ranges). Stable-sorting the concatenation on normalized
    distance reproduces the single-process ordering exactly: each shard
    list is itself a stable sort of a contiguous block of the global
    generation order, and stable sort of stably-sorted contiguous
    blocks equals the stable sort of the whole. Omitting a whole
    (degraded) shard removes one contiguous block and leaves the
    relative order of the survivors intact.
    """
    merged = [match for matches in shard_results for match in matches]
    merged.sort(key=lambda match: match["dtw_normalized"])
    return merged


class WorkerHandle:
    """One supervised shard-replica worker process plus its plumbing."""

    def __init__(
        self,
        shard_index: int,
        replica_index: int,
        lengths: tuple[int, ...],
        index_path: str,
        metrics: ClusterMetrics,
        cache_size: int = 1024,
        threads: int | None = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        respawn_backoff: float = 0.2,
        respawn_backoff_cap: float = 10.0,
        crash_loop_threshold: int = 3,
        healthy_uptime: float = 5.0,
        ping_timeout: float = 60.0,
    ) -> None:
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.lengths = lengths
        self.index_path = index_path
        self.metrics = metrics
        self.cache_size = cache_size
        self.threads = threads
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.crash_loop_threshold = max(1, int(crash_loop_threshold))
        self.healthy_uptime = healthy_uptime
        self.ping_timeout = ping_timeout
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_failure_threshold,
            reset_after=breaker_reset_seconds,
            on_transition=metrics.record_breaker_transition,
        )
        self.process: asyncio.subprocess.Process | None = None
        self.restarts = 0
        self.consecutive_crashes = 0
        self.last_ping_ms: float | None = None
        self.latency = LatencyHistogram()  # per-replica round-trip times
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._stopping = False
        self._started_time: float | None = None
        self._reader_task: asyncio.Task | None = None
        self._monitor_task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def crash_looping(self) -> bool:
        """Whether this worker is dying faster than it can serve."""
        return self.consecutive_crashes >= self.crash_loop_threshold

    def _spawn_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # The worker must import repro from the same tree as the router.
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    async def start(self) -> None:
        cmd = [
            sys.executable,
            "-m",
            "repro.serve.cluster.worker",
            self.index_path,
            "--shard",
            str(self.shard_index),
            "--replica",
            str(self.replica_index),
            "--lengths",
            ",".join(str(length) for length in self.lengths),
            "--cache-size",
            str(self.cache_size),
        ]
        if self.threads is not None:
            cmd += ["--threads", str(self.threads)]
        self.process = await asyncio.create_subprocess_exec(
            *cmd,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # worker banner/tracebacks share our stderr
            env=self._spawn_env(),
        )
        self._started_time = time.monotonic()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def _read_loop(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        stdout = self.process.stdout
        while True:
            line = await stdout.readline()
            if not line:
                break
            try:
                response = json.loads(line)
            except ValueError:
                # A corrupt frame can only strand its future; the
                # sender's deadline budget (or the worker's death)
                # resolves the stranded request (DESIGN.md §15).
                continue
            future = self._pending.pop(response.get("id"), None)
            if future is not None and not future.done():
                future.set_result(response)

    async def _monitor(self) -> None:
        """Fail in-flight requests on worker death; respawn with backoff.

        A worker that dies within ``healthy_uptime`` seconds of its
        spawn counts as a consecutive crash: each one doubles the
        respawn delay (capped) so a crash-looping binary cannot pin a
        CPU respawning, and past ``crash_loop_threshold`` the worker is
        surfaced as ``crash_looping`` in ``health``.
        """
        assert self.process is not None
        await self.process.wait()
        self._fail_pending()
        if self._stopping:
            return
        uptime = time.monotonic() - (self._started_time or 0.0)
        if uptime < self.healthy_uptime:
            self.consecutive_crashes += 1
        else:
            self.consecutive_crashes = 1
        if self.crash_looping:
            self.metrics.record_crash_loop()
        self.restarts += 1
        self.metrics.record_worker_restart()
        await asyncio.sleep(
            respawn_delay(
                self.consecutive_crashes,
                self.respawn_backoff,
                self.respawn_backoff_cap,
            )
        )
        if not self._stopping:
            await self.start()

    def _fail_pending(self) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ShardUnavailable(self.shard_index))

    async def request(self, payload: dict) -> dict:
        """One round-trip; raises :class:`ShardUnavailable` on worker death.

        Callers in this package must bound the await with
        ``asyncio.wait_for`` (ONEX504): an unbounded shard RPC waits
        forever on a dropped frame or a hung worker.
        """
        if not self.alive or self.process.stdin is None:
            raise ShardUnavailable(self.shard_index)
        request_id = self._next_id
        self._next_id += 1
        payload = {**payload, "id": request_id}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        started = time.perf_counter()
        try:
            self.process.stdin.write((json.dumps(payload) + "\n").encode())
            await self.process.stdin.drain()
        except (ConnectionError, BrokenPipeError, RuntimeError) as exc:
            self._pending.pop(request_id, None)
            raise ShardUnavailable(self.shard_index) from exc
        try:
            response = await future
        finally:
            self._pending.pop(request_id, None)
        self.latency.observe(time.perf_counter() - started)
        response.pop("id", None)
        return response

    async def ping(self) -> float:
        """Round-trip a ping, recording and returning the RTT in ms."""
        started = time.perf_counter()
        try:
            await asyncio.wait_for(
                self.request({"op": "ping"}), timeout=self.ping_timeout
            )
        except asyncio.TimeoutError:
            raise ShardUnavailable(self.shard_index) from None
        rtt_ms = (time.perf_counter() - started) * 1000.0
        self.last_ping_ms = rtt_ms
        return rtt_ms

    async def stop(self) -> None:
        self._stopping = True
        if self.alive and self.process.stdin is not None:
            with contextlib.suppress(Exception):
                self.process.stdin.write(
                    (json.dumps({"op": "shutdown"}) + "\n").encode()
                )
                await self.process.stdin.drain()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self.process.wait(), timeout=5)
        if self.alive:
            self.process.kill()
            await self.process.wait()
        for task in (self._reader_task, self._monitor_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task

    def health(self) -> dict:
        return {
            "shard": self.shard_index,
            "replica": self.replica_index,
            "lengths": list(self.lengths),
            "alive": self.alive,
            "pid": self.pid,
            "restarts": self.restarts,
            "consecutive_crashes": self.consecutive_crashes,
            "crash_looping": self.crash_looping,
            "breaker": self.breaker.to_dict(),
            "last_ping_ms": self.last_ping_ms,
        }


class ShardReplicas:
    """The replica set serving one shard, with failover + retry.

    ``call`` is the only compute path into a shard: it picks the first
    live replica whose breaker admits traffic (replica 0 preferred —
    keeping one replica hot maximises its scan/refine cache hits), and
    on worker death or per-replica timeout retries on the next pick
    with exponential backoff + jitter, bounded by the request's
    deadline budget. Results are bit-identical whichever replica
    answers, because every replica restores the identical shard.
    """

    def __init__(
        self,
        shard_index: int,
        replicas: list[WorkerHandle],
        metrics: ClusterMetrics,
        rng: random.Random,
        replica_timeout: float | None = None,
        retry_base: float = 0.02,
        retry_cap: float = 0.5,
    ) -> None:
        self.shard_index = shard_index
        self.replicas = replicas
        self.metrics = metrics
        self._rng = rng
        self.replica_timeout = replica_timeout
        self.retry_base = retry_base
        self.retry_cap = retry_cap

    @property
    def lengths(self) -> tuple[int, ...]:
        return self.replicas[0].lengths

    def pick(self) -> WorkerHandle | None:
        """First live replica whose breaker admits traffic, else None."""
        for worker in self.replicas:
            if worker.alive and worker.breaker.allows():
                return worker
        return None

    def _attempt_timeout(self, budget: Budget | None) -> float | None:
        candidates = [
            timeout
            for timeout in (
                self.replica_timeout,
                budget.remaining_seconds() if budget is not None else None,
            )
            if timeout is not None
        ]
        return min(candidates) if candidates else None

    async def call(self, payload: dict, budget: Budget | None = None) -> dict:
        """One shard RPC with replica failover, retry, and deadlines."""
        max_attempts = 2 * len(self.replicas)
        previous: WorkerHandle | None = None
        attempts = 0
        while True:
            if budget is not None:
                budget.check()
            worker = self.pick()
            if worker is None:
                raise ShardUnavailable(self.shard_index)
            if (worker is not previous and previous is not None) or (
                previous is None and worker is not self.replicas[0]
            ):
                # Served away from the primary replica — whether the
                # switch happened mid-request (retry) or the primary
                # was already down when the request arrived.
                self.metrics.record_failover()
            attempt_payload = payload
            if budget is not None:
                # Child budget <= parent budget, by construction.
                attempt_payload = {
                    **payload,
                    "budget_ms": max(
                        0.0, budget.remaining_seconds() * 1000.0
                    ),
                }
            try:
                response = await asyncio.wait_for(
                    worker.request(attempt_payload),
                    timeout=self._attempt_timeout(budget),
                )
            except (ShardUnavailable, asyncio.TimeoutError) as exc:
                worker.breaker.record_failure()
                self.metrics.record_shard_error()
                if isinstance(exc, asyncio.TimeoutError):
                    self.metrics.record_replica_timeout()
                attempts += 1
                previous = worker
                if budget is not None and budget.remaining_seconds() <= 0:
                    raise DeadlineExceeded(budget.timeout_ms) from exc
                if attempts >= max_attempts:
                    raise ShardUnavailable(self.shard_index) from exc
                self.metrics.record_retry()
                backoff = min(
                    self.retry_cap, self.retry_base * 2 ** (attempts - 1)
                )
                # Jitter in [0.5x, 1.5x) from a seeded RNG: spreads
                # synchronized retries without nondeterministic state.
                backoff *= 0.5 + self._rng.random()
                if budget is not None:
                    backoff = min(
                        backoff, max(0.0, budget.remaining_seconds())
                    )
                if backoff > 0:
                    await asyncio.sleep(backoff)
                continue
            worker.breaker.record_success()
            return response


class ClusterRouter:
    """The scatter-gather front for one sharded, replicated index."""

    def __init__(
        self,
        index_path: str,
        n_shards: int,
        n_replicas: int = 1,
        max_inflight: int = 64,
        cache_size: int = 1024,
        worker_threads: int | None = None,
        ping_interval: float = 5.0,
        replica_timeout_ms: float | None = None,
        retry_base_ms: float = 20.0,
        retry_cap_ms: float = 500.0,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        respawn_backoff: float = 0.2,
        respawn_backoff_cap: float = 10.0,
        crash_loop_threshold: int = 3,
    ) -> None:
        self.index_path = os.fspath(index_path)
        self.manifest = read_manifest(self.index_path)
        self.shard_map: ShardMap = shard_map_from_manifest(
            self.manifest, n_shards
        )
        self.n_replicas = max(1, int(n_replicas))
        self.replica_slots = assign_replicas(self.shard_map, self.n_replicas)
        self.st = float(self.manifest["st"])
        self.max_inflight = max(1, int(max_inflight))
        self.ping_interval = float(ping_interval)
        self.metrics = ClusterMetrics()
        self.jobs = JobQueue()
        self.faults = FaultInjector.from_env()
        # Retry jitter only spreads backoff sleeps — seeding keeps the
        # router free of process-global RNG state (ONEX602 discipline).
        self._rng = random.Random(0x0ECF)
        replica_timeout = (
            None if replica_timeout_ms is None else replica_timeout_ms / 1000.0
        )
        self.shards = [
            ShardReplicas(
                shard_index,
                [
                    WorkerHandle(
                        shard_index,
                        replica_index,
                        owned,
                        self.index_path,
                        self.metrics,
                        cache_size=cache_size,
                        threads=worker_threads,
                        breaker_failure_threshold=breaker_failure_threshold,
                        breaker_reset_seconds=breaker_reset_seconds,
                        respawn_backoff=respawn_backoff,
                        respawn_backoff_cap=respawn_backoff_cap,
                        crash_loop_threshold=crash_loop_threshold,
                    )
                    for replica_index in range(self.n_replicas)
                ],
                self.metrics,
                self._rng,
                replica_timeout=replica_timeout,
                retry_base=retry_base_ms / 1000.0,
                retry_cap=retry_cap_ms / 1000.0,
            )
            for shard_index, owned in enumerate(self.shard_map.shards)
        ]
        self._inflight = 0
        self.draining = False
        self._ping_task: asyncio.Task | None = None

    @property
    def workers(self) -> list[WorkerHandle]:
        """Every worker, shard-major (replicas of shard 0 first)."""
        return [
            worker
            for replica_set in self.shards
            for worker in replica_set.replicas
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn all workers and wait until each answers a ping."""
        await asyncio.gather(*(worker.start() for worker in self.workers))
        await asyncio.gather(*(worker.ping() for worker in self.workers))
        self._ping_task = asyncio.ensure_future(self._ping_loop())

    async def _ping_loop(self) -> None:
        while True:
            await asyncio.sleep(self.ping_interval)
            for worker in self.workers:
                if worker.alive:
                    with contextlib.suppress(ShardUnavailable):
                        await worker.ping()

    async def drain(self) -> None:
        """Stop admitting work, wait out in-flight requests, stop workers."""
        self.draining = True
        while self._inflight > 0:
            await asyncio.sleep(0.02)
        if self._ping_task is not None:
            self._ping_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ping_task
        await asyncio.gather(*(worker.stop() for worker in self.workers))
        # jobs.close() joins the worker thread (up to 30s): run it off
        # the loop so a long-running build can't freeze the drain.
        await asyncio.get_running_loop().run_in_executor(
            None, self.jobs.close
        )

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    async def process_line(self, line: str) -> str | None:
        """One JSON line in, one JSON line out (None for blank input)."""
        line = line.strip()
        if not line:
            return None
        started = time.perf_counter()
        try:
            request = json.loads(line)
        except ValueError as exc:
            self.metrics.stages["parse"].observe(time.perf_counter() - started)
            return json.dumps({"ok": False, "error": str(exc) or repr(exc)})
        self.metrics.stages["parse"].observe(time.perf_counter() - started)
        return json.dumps(await self.process_request(request))

    async def process_request(self, request: dict) -> dict:
        """Admission control + dispatch + id echo for one request."""
        request_id = None
        route_started = time.perf_counter()
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            self.metrics.record_op(str(op))
            if op in _ADMISSION_EXEMPT:
                self.metrics.stages["route"].observe(
                    time.perf_counter() - route_started
                )
                response = await self._dispatch_exempt(op, request)
            elif self.draining:
                self.metrics.record_error("draining")
                response = {
                    "ok": False,
                    "error": "server is draining",
                    "code": "draining",
                }
            elif self._inflight >= self.max_inflight:
                self.metrics.record_busy()
                response = {
                    "ok": False,
                    "error": (
                        f"too many in-flight requests "
                        f"(max_inflight={self.max_inflight})"
                    ),
                    "code": "busy",
                }
            else:
                timeout_ms = parse_timeout_ms(request)
                budget = None if timeout_ms is None else Budget(timeout_ms)
                self._inflight += 1
                self.metrics.stages["route"].observe(
                    time.perf_counter() - route_started
                )
                try:
                    response = await self._dispatch(op, request, budget)
                finally:
                    self._inflight -= 1
        except DeadlineExceeded as exc:
            self.metrics.record_deadline_exceeded()
            response = {
                "ok": False,
                "error": str(exc),
                "code": "deadline_exceeded",
            }
        except ShardUnavailable as exc:
            self.metrics.record_error("shard_unavailable")
            response = {
                "ok": False,
                "error": str(exc),
                "code": "shard_unavailable",
            }
        except Exception as exc:  # noqa: BLE001 — same contract as the
            # single-process loop: a bad request answers, never crashes.
            response = {"ok": False, "error": str(exc) or repr(exc)}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_exempt(self, op: str, request: dict) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "health":
            return {"ok": True, "health": self._health()}
        if op == "metrics":
            return {"ok": True, "metrics": await self._metrics()}
        if op == "submit":
            return {
                "ok": True,
                **self.jobs.submit(
                    str(request.get("kind")), request.get("params", {})
                ),
            }
        if op == "job_status":
            return {"ok": True, **self.jobs.status(request["job"])}
        if op == "jobs":
            return {
                "ok": True,
                "jobs": self.jobs.list_jobs(),
                "closed_clean": self.jobs.closed_clean,
            }
        raise ValueError(f"unhandled exempt op {op!r}")

    async def _dispatch(
        self, op: str, request: dict, budget: Budget | None
    ) -> dict:
        if op == "query":
            return await self._op_query(request, budget)
        if op == "within":
            return await self._op_within(request, budget)
        if op == "seasonal":
            return await self._forward_length_op(
                request, request.get("length"), budget
            )
        if op == "recommend":
            return await self._forward(0, request, budget)
        if op == "info":
            return {"ok": True, "info": await self._info()}
        if op == "shard_sleep":
            # Test/debug aid: hold one replica busy (fault injection).
            # Routed directly (no retry) — replaying a sleep on another
            # replica would defeat its purpose as a fault primitive.
            return await self._direct_replica_op(request, "sleep", budget)
        if op == "inject_fault":
            if not self.faults.enabled:
                raise ValueError(
                    "fault injection is disabled (set ONEX_FAULTS=1 "
                    "on the router and workers to enable)"
                )
            return await self._direct_replica_op(request, "inject_fault", budget)
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _direct_replica_op(
        self, request: dict, op: str, budget: Budget | None
    ) -> dict:
        """Forward to one addressed replica with no retry or failover."""
        shard = int(request.get("shard", 0))
        replica = int(request.get("replica", 0))
        worker = self.shards[shard].replicas[replica]
        payload = {
            key: value
            for key, value in request.items()
            if key not in ("id", "shard", "replica", "timeout_ms")
        }
        payload["op"] = op
        if budget is not None:
            payload["budget_ms"] = max(
                0.0, budget.remaining_seconds() * 1000.0
            )
        started = time.perf_counter()
        try:
            try:
                return await asyncio.wait_for(
                    worker.request(payload),
                    timeout=(
                        None if budget is None else budget.remaining_seconds()
                    ),
                )
            except asyncio.TimeoutError:
                self.metrics.record_replica_timeout()
                raise DeadlineExceeded(budget.timeout_ms) from None
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )

    async def _forward(
        self, shard_index: int, request: dict, budget: Budget | None
    ) -> dict:
        payload = {
            key: value
            for key, value in request.items()
            if key not in ("id", "timeout_ms", "allow_partial")
        }
        return await self._shard_call(self.shards[shard_index], payload, budget)

    async def _shard_call(
        self,
        replica_set: ShardReplicas,
        payload: dict,
        budget: Budget | None,
    ) -> dict:
        started = time.perf_counter()
        try:
            return await replica_set.call(payload, budget)
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )

    def _owner_or_zero(self, length: int) -> int:
        """Owning shard, or shard 0 for unindexed lengths.

        Shard 0 then raises the very error a single process would for
        that length — identical error text, no router-side duplicate of
        the core's validation.
        """
        try:
            return self.shard_map.owner(int(length))
        except (KeyError, TypeError, ValueError):
            return 0

    async def _forward_length_op(
        self, request: dict, length, budget: Budget | None
    ) -> dict:
        if length is None:
            raise KeyError("length")
        return await self._forward(self._owner_or_zero(length), request, budget)

    # ------------------------------------------------------------------
    # query (the scatter-gather centrepiece)
    # ------------------------------------------------------------------
    async def _op_query(self, request: dict, budget: Budget | None) -> dict:
        if "values" not in request and "queries" not in request:
            raise ValueError("query op requires 'values' or 'queries'")
        length = request.get("length")
        if length is not None:
            # Exact-length: whole request belongs to one shard.
            return await self._forward(
                self._owner_or_zero(length), request, budget
            )
        k = int(request.get("k", 1))
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        normalized = bool(request.get("normalized", True))
        allow_partial = bool(request.get("allow_partial", False))
        if "queries" in request:
            return await self._query_any_batch(
                list(request["queries"]), k, normalized, budget, allow_partial
            )
        return await self._query_any(
            request["values"], k, normalized, budget, allow_partial
        )

    async def _scatter(
        self,
        payload_for_shard,
        budget: Budget | None,
        allow_partial: bool,
    ) -> tuple[list[tuple[ShardReplicas, dict]], list[int]]:
        """Fan one op out to every shard through its replica set.

        Returns the (replica_set, response) pairs that succeeded, in
        shard order, plus the shard indices that were entirely
        unavailable. Without ``allow_partial``, any unavailable shard
        (or spent deadline) propagates as the failure it is.
        """
        started = time.perf_counter()
        try:
            outcomes = await asyncio.gather(
                *(
                    replica_set.call(payload_for_shard(replica_set), budget)
                    for replica_set in self.shards
                ),
                return_exceptions=True,
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        available: list[tuple[ShardReplicas, dict]] = []
        missing: list[int] = []
        for replica_set, outcome in zip(self.shards, outcomes, strict=True):
            if isinstance(outcome, ShardUnavailable):
                if not allow_partial:
                    raise outcome
                missing.append(replica_set.shard_index)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                available.append((replica_set, outcome))
        for _, response in available:
            if not response.get("ok"):
                raise ValueError(response.get("error", "scan failed"))
        return available, missing

    def _sweep(self, scans_by_length: dict[int, list], query_length: int):
        """Replay the sweep over merged per-shard scans (timed)."""
        started = time.perf_counter()
        winner = replay_sweep(
            scans_by_length, self.shard_map.lengths, query_length, self.st
        )
        self.metrics.stages["merge"].observe(time.perf_counter() - started)
        return winner

    @staticmethod
    def _merge_scans(per_shard_scans: list[dict]) -> dict[int, list]:
        return {
            int(length): scans
            for shard_scans in per_shard_scans
            for length, scans in shard_scans.items()
        }

    async def _refine_with_fallback(
        self,
        values: list,
        k: int,
        normalized: bool,
        scans_by_length: dict[int, list],
        budget: Budget | None,
        allow_partial: bool,
        degraded: set[int],
    ) -> list[dict]:
        """Sweep + refine, re-sweeping past shards that die mid-request.

        When the winning length's shard loses its last replica between
        the scan and the refine, ``allow_partial`` re-runs the sweep
        without that shard's lengths — graceful degradation instead of
        an error. The scans dict is mutated to drop dead shards so a
        batch sharing it converges too.
        """
        while True:
            winner = self._sweep(scans_by_length, len(values))
            if winner is None:
                raise ValueError(_NO_REP_ERROR)
            best_length, best_scans = winner
            owner = self.shard_map.owner(best_length)
            job = {
                "values": values,
                "length": best_length,
                "scans": best_scans,
                "k": k,
                "normalized": normalized,
            }
            try:
                refined = await self._shard_call(
                    self.shards[owner], {"op": "refine", "jobs": [job]}, budget
                )
            except ShardUnavailable:
                if not allow_partial:
                    raise
                degraded.add(owner)
                for length in self.shards[owner].lengths:
                    scans_by_length.pop(length, None)
                continue
            if not refined.get("ok"):
                raise ValueError(refined.get("error", "refine failed"))
            return refined["results"][0]

    async def _query_any(
        self,
        values: list,
        k: int,
        normalized: bool,
        budget: Budget | None,
        allow_partial: bool,
    ) -> dict:
        available, missing = await self._scatter(
            lambda replica_set: {
                "op": "scan",
                "values": values,
                "lengths": list(replica_set.lengths),
                "normalized": normalized,
            },
            budget,
            allow_partial,
        )
        degraded = set(missing)
        scans_by_length = self._merge_scans(
            [response["scans"] for _, response in available]
        )
        matches = await self._refine_with_fallback(
            values, k, normalized, scans_by_length, budget, allow_partial,
            degraded,
        )
        response = {"ok": True, "matches": matches}
        return self._mark_degraded(response, degraded)

    def _mark_degraded(self, response: dict, degraded: set[int]) -> dict:
        if degraded:
            self.metrics.record_degraded()
            response["degraded"] = True
            response["missing_shards"] = sorted(degraded)
            response["missing_lengths"] = sorted(
                length
                for shard in degraded
                for length in self.shards[shard].lengths
            )
        return response

    async def _query_any_batch(
        self,
        queries: list,
        k: int,
        normalized: bool,
        budget: Budget | None,
        allow_partial: bool,
    ) -> dict:
        available, missing = await self._scatter(
            lambda replica_set: {
                "op": "scan",
                "queries": queries,
                "lengths": list(replica_set.lengths),
                "normalized": normalized,
            },
            budget,
            allow_partial,
        )
        degraded = set(missing)
        per_query_scans = [
            self._merge_scans(
                [response["scans_batch"][index] for _, response in available]
            )
            for index in range(len(queries))
        ]
        # jobs_by_shard: shard -> list of (query_index, job)
        jobs_by_shard: dict[int, list[tuple[int, dict]]] = {}
        for index, values in enumerate(queries):
            winner = self._sweep(per_query_scans[index], len(values))
            if winner is None:
                raise ValueError(_NO_REP_ERROR)
            best_length, best_scans = winner
            jobs_by_shard.setdefault(
                self.shard_map.owner(best_length), []
            ).append(
                (
                    index,
                    {
                        "values": values,
                        "length": best_length,
                        "scans": best_scans,
                        "k": k,
                        "normalized": normalized,
                    },
                )
            )
        shard_indices = sorted(jobs_by_shard)
        started = time.perf_counter()
        try:
            refined = await asyncio.gather(
                *(
                    self.shards[shard].call(
                        {
                            "op": "refine",
                            "jobs": [job for _, job in jobs_by_shard[shard]],
                        },
                        budget,
                    )
                    for shard in shard_indices
                ),
                return_exceptions=True,
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        merge_started = time.perf_counter()
        results: list = [None] * len(queries)
        fallback: list[int] = []
        for shard, response in zip(shard_indices, refined, strict=True):
            if isinstance(response, ShardUnavailable):
                if not allow_partial:
                    raise response
                degraded.add(shard)
                fallback.extend(index for index, _ in jobs_by_shard[shard])
                continue
            if isinstance(response, BaseException):
                raise response
            if not response.get("ok"):
                raise ValueError(response.get("error", "refine failed"))
            for (index, _), matches in zip(
                jobs_by_shard[shard], response["results"], strict=True
            ):
                results[index] = matches
        self.metrics.stages["merge"].observe(
            time.perf_counter() - merge_started
        )
        for index in fallback:
            for shard in sorted(degraded):
                for length in self.shards[shard].lengths:
                    per_query_scans[index].pop(length, None)
            results[index] = await self._refine_with_fallback(
                queries[index], k, normalized, per_query_scans[index],
                budget, allow_partial, degraded,
            )
        response = {"ok": True, "results": results}
        return self._mark_degraded(response, degraded)

    # ------------------------------------------------------------------
    # within
    # ------------------------------------------------------------------
    async def _op_within(self, request: dict, budget: Budget | None) -> dict:
        if request.get("length") is not None:
            # Explicit single length: whole request belongs to one shard.
            return await self._forward(
                self._owner_or_zero(request["length"]), request, budget
            )
        allow_partial = bool(request.get("allow_partial", False))
        base = {
            key: value
            for key, value in request.items()
            if key not in ("id", "lengths", "timeout_ms", "allow_partial")
        }
        requested = request.get("lengths")
        wanted = (
            None if requested is None else {int(length) for length in requested}
        )
        if wanted is not None and not wanted <= set(self.shard_map.lengths):
            # An unindexed length must raise the single-process error;
            # let shard 0's core validation produce it verbatim.
            return await self._forward(0, request, budget)
        fan_out = [
            (replica_set, owned)
            for replica_set in self.shards
            for owned in [
                list(replica_set.lengths)
                if wanted is None
                else sorted(set(replica_set.lengths) & wanted)
            ]
            if owned
        ]
        started = time.perf_counter()
        try:
            outcomes = await asyncio.gather(
                *(
                    replica_set.call({**base, "lengths": owned}, budget)
                    for replica_set, owned in fan_out
                ),
                return_exceptions=True,
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        responses = []
        degraded: set[int] = set()
        for (replica_set, _), outcome in zip(fan_out, outcomes, strict=True):
            if isinstance(outcome, ShardUnavailable):
                if not allow_partial:
                    raise outcome
                degraded.add(replica_set.shard_index)
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            responses.append(outcome)
        for response in responses:
            if not response.get("ok"):
                raise ValueError(response.get("error", "within failed"))
        merge_started = time.perf_counter()
        merged = merge_within([response["matches"] for response in responses])
        self.metrics.stages["merge"].observe(
            time.perf_counter() - merge_started
        )
        return self._mark_degraded({"ok": True, "matches": merged}, degraded)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        workers = [worker.health() for worker in self.workers]
        shard_live = [
            any(worker.alive for worker in replica_set.replicas)
            for replica_set in self.shards
        ]
        crash_looping = [
            {"shard": worker.shard_index, "replica": worker.replica_index}
            for worker in self.workers
            if worker.crash_looping
        ]
        if self.draining:
            status = "draining"
        elif not all(shard_live):
            status = "unavailable"
        elif crash_looping or not all(entry["alive"] for entry in workers):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "draining": self.draining,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "n_replicas": self.n_replicas,
            "shard_map": self.shard_map.to_dict(),
            "replica_slots": [list(slots) for slots in self.replica_slots],
            "shards": workers,
            "crash_looping": crash_looping,
            "shard_latency": [
                worker.latency.to_dict() for worker in self.workers
            ],
        }

    async def _shard_infos(self) -> list[dict]:
        outcomes = await asyncio.gather(
            *(
                replica_set.call({"op": "shard_info"})
                for replica_set in self.shards
            ),
            return_exceptions=True,
        )
        infos = []
        for replica_set, outcome in zip(self.shards, outcomes, strict=True):
            if isinstance(outcome, ShardUnavailable):
                # Observability must degrade, not fail, when a whole
                # shard is down — operators need the remaining picture.
                infos.append(
                    {"shard": replica_set.shard_index, "unavailable": True}
                )
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            if not outcome.get("ok"):
                raise ValueError(outcome.get("error", "shard_info failed"))
            infos.append(outcome["info"])
        return infos

    async def _metrics(self) -> dict:
        infos = await self._shard_infos()
        cache = {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        cascade: dict[str, float] = {}
        for info in infos:
            for key in cache:
                cache[key] += int(info.get("cache", {}).get(key, 0))
            for key, value in info.get("query_stats", {}).items():
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    cascade[key] = cascade.get(key, 0) + value
        return {
            **self.metrics.to_dict(),
            "shard_latency": [
                worker.latency.to_dict() for worker in self.workers
            ],
            "breakers": [worker.breaker.to_dict() for worker in self.workers],
            "cache": cache,
            "query_stats": cascade,
            "per_shard": infos,
        }

    async def _info(self) -> dict:
        infos = await self._shard_infos()
        return {
            "dataset": self.manifest.get("dataset_name"),
            "st": self.st,
            "lengths": self.shard_map.lengths,
            "n_shards": self.shard_map.n_shards,
            "n_replicas": self.n_replicas,
            "shard_map": self.shard_map.to_dict(),
            "shards": infos,
        }

    # ------------------------------------------------------------------
    # Serving loops
    # ------------------------------------------------------------------
    async def serve_stdio(self) -> int:
        """Serve JSON lines from stdin until EOF, then drain."""
        loop = asyncio.get_event_loop()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def answer(line: str) -> None:
            response = await self.process_line(line)
            if response is not None:
                async with write_lock:
                    sys.stdout.write(response + "\n")
                    sys.stdout.flush()

        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            task = asyncio.ensure_future(answer(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.drain()
        return 0

    async def serve_tcp(self, host: str, port: int) -> int:
        """Serve JSON lines per TCP connection until cancelled."""

        async def handle(reader: asyncio.StreamReader, writer) -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    response = await self.process_line(line.decode())
                    if response is not None:
                        writer.write((response + "\n").encode())
                        await writer.drain()
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        server = await asyncio.start_server(handle, host, port)
        address = ", ".join(
            str(sock.getsockname()) for sock in server.sockets
        )
        print(f"onex-cluster listening on {address}", file=sys.stderr)
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        await self.drain()
        return 0
