"""Asyncio scatter-gather router over N shard worker processes.

The router owns the public serving endpoint (stdio pipe or TCP), spawns
one :mod:`~repro.serve.cluster.worker` process per shard of the
:mod:`~repro.serve.cluster.shardmap` partition, and answers every
client op by fanning out to the owning shard(s) and merging:

* ``query`` with an explicit ``length`` (and exact-length batches)
  forwards whole to the owning shard — the worker runs the very same
  ``OnexService.query`` a single process would.
* ``query`` with ``Match = Any`` scatters an open-bound ``scan`` to
  every shard, replays the §5.3 length sweep over the gathered
  per-length minima (:func:`replay_sweep`), then sends one targeted
  ``refine`` to the winning length's owner — bit-identical to the
  single-process sweep (see ``QueryProcessor.scan_length``).
* ``within`` without a length fans out with each shard's owned lengths
  and merges by stable sort on normalized distance; because shards own
  contiguous ascending length ranges, shard-order concatenation *is*
  the single-process generation order, so the stable sort reproduces
  the single-process ordering exactly (ties included).
* ``recommend`` routes to shard 0: the SP-Space thresholds are global
  manifest state every worker restores identically.

Admission control is a bounded in-flight counter: past
``max_inflight``, compute ops are rejected immediately with a
structured ``busy`` error (429 semantics) instead of queueing — the
router's memory stays bounded no matter the offered load. ``health`` /
``metrics`` / ``ping`` / job ops bypass admission so operators can
always see in. Workers are supervised: a dead worker fails its
in-flight requests with ``shard_unavailable`` and is respawned
automatically; ``drain()`` stops admission, lets in-flight requests
finish, then shuts workers down cleanly.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import os
import sys
import time

from repro.core.persistence import read_manifest
from repro.core.rspace import search_length_order
from repro.serve.cluster.jobs import JobQueue
from repro.serve.cluster.metrics import ClusterMetrics, LatencyHistogram
from repro.serve.cluster.shardmap import ShardMap, shard_map_from_manifest

_NO_REP_ERROR = "no representative reachable; widen the DTW window"

# Ops answered (or enqueued) without touching shard compute capacity:
# observability and job bookkeeping must work even under overload.
_ADMISSION_EXEMPT = frozenset(
    {"ping", "health", "metrics", "submit", "job_status", "jobs"}
)


class ShardUnavailable(Exception):
    """A worker died (or was still down) while holding our request."""

    def __init__(self, shard_index: int):
        super().__init__(f"shard {shard_index} unavailable")
        self.shard_index = shard_index


def replay_sweep(
    scans_by_length: dict[int, list],
    lengths: list[int],
    query_length: int,
    st: float,
) -> tuple[int, list] | None:
    """Replay the §5.3 length sweep over gathered open-bound scans.

    Mirrors ``QueryProcessor.best_match``'s ``Match = Any`` loop
    exactly: visit lengths in sweep order, keep the strictly-best
    per-length top scan, stop once a representative is within ``ST/2``.
    A length whose open-bound top does not beat the carried bound
    contributes nothing — precisely the lengths whose bounded scan
    would have come back empty in-process. Returns ``(best_length,
    best_scans)`` or ``None`` when no representative is reachable.
    """
    best_length: int | None = None
    best_scans: list | None = None
    bound = math.inf
    for length in search_length_order(lengths, query_length):
        scans = scans_by_length.get(length) or []
        if not scans:
            continue
        top = scans[0][2]
        if best_scans is None or top < bound:
            best_length, best_scans, bound = length, scans, top
        if top <= st / 2.0:
            break
        # A top above the carried bound is exactly an in-process empty
        # bounded scan: no update, and no half-ST stop check can fire
        # (the bound is already above ST/2 or the sweep would have
        # stopped at the length that set it).
    if best_scans is None:
        return None
    return best_length, best_scans


def merge_within(shard_results: list[list[dict]]) -> list[dict]:
    """Merge per-shard ``within`` matches into single-process order.

    ``shard_results`` must be in shard order (contiguous ascending
    length ranges). Stable-sorting the concatenation on normalized
    distance reproduces the single-process ordering exactly: each shard
    list is itself a stable sort of a contiguous block of the global
    generation order, and stable sort of stably-sorted contiguous
    blocks equals the stable sort of the whole.
    """
    merged = [match for matches in shard_results for match in matches]
    merged.sort(key=lambda match: match["dtw_normalized"])
    return merged


class WorkerHandle:
    """One supervised shard worker process plus its request plumbing."""

    def __init__(
        self,
        shard_index: int,
        lengths: tuple[int, ...],
        index_path: str,
        metrics: ClusterMetrics,
        cache_size: int = 1024,
        threads: int | None = None,
    ) -> None:
        self.shard_index = shard_index
        self.lengths = lengths
        self.index_path = index_path
        self.metrics = metrics
        self.cache_size = cache_size
        self.threads = threads
        self.process: asyncio.subprocess.Process | None = None
        self.restarts = 0
        self.last_ping_ms: float | None = None
        self.latency = LatencyHistogram()  # per-shard round-trip times
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._stopping = False
        self._reader_task: asyncio.Task | None = None
        self._monitor_task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def _spawn_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # The worker must import repro from the same tree as the router.
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    async def start(self) -> None:
        cmd = [
            sys.executable,
            "-m",
            "repro.serve.cluster.worker",
            self.index_path,
            "--shard",
            str(self.shard_index),
            "--lengths",
            ",".join(str(length) for length in self.lengths),
            "--cache-size",
            str(self.cache_size),
        ]
        if self.threads is not None:
            cmd += ["--threads", str(self.threads)]
        self.process = await asyncio.create_subprocess_exec(
            *cmd,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # worker banner/tracebacks share our stderr
            env=self._spawn_env(),
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def _read_loop(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        stdout = self.process.stdout
        while True:
            line = await stdout.readline()
            if not line:
                break
            try:
                response = json.loads(line)
            except ValueError:
                continue  # a corrupt line can only strand its future
            future = self._pending.pop(response.get("id"), None)
            if future is not None and not future.done():
                future.set_result(response)

    async def _monitor(self) -> None:
        """Fail in-flight requests on worker death; respawn unless stopping."""
        assert self.process is not None
        await self.process.wait()
        self._fail_pending()
        if self._stopping:
            return
        self.restarts += 1
        self.metrics.record_worker_restart()
        await asyncio.sleep(0.2)
        if not self._stopping:
            await self.start()

    def _fail_pending(self) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ShardUnavailable(self.shard_index))

    async def request(self, payload: dict) -> dict:
        """One round-trip; raises :class:`ShardUnavailable` on worker death."""
        if not self.alive or self.process.stdin is None:
            raise ShardUnavailable(self.shard_index)
        request_id = self._next_id
        self._next_id += 1
        payload = {**payload, "id": request_id}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        started = time.perf_counter()
        try:
            self.process.stdin.write((json.dumps(payload) + "\n").encode())
            await self.process.stdin.drain()
        except (ConnectionError, BrokenPipeError, RuntimeError) as exc:
            self._pending.pop(request_id, None)
            raise ShardUnavailable(self.shard_index) from exc
        try:
            response = await future
        finally:
            self._pending.pop(request_id, None)
        self.latency.observe(time.perf_counter() - started)
        response.pop("id", None)
        return response

    async def ping(self) -> float:
        """Round-trip a ping, recording and returning the RTT in ms."""
        started = time.perf_counter()
        await self.request({"op": "ping"})
        rtt_ms = (time.perf_counter() - started) * 1000.0
        self.last_ping_ms = rtt_ms
        return rtt_ms

    async def stop(self) -> None:
        self._stopping = True
        if self.alive and self.process.stdin is not None:
            with contextlib.suppress(Exception):
                self.process.stdin.write(
                    (json.dumps({"op": "shutdown"}) + "\n").encode()
                )
                await self.process.stdin.drain()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self.process.wait(), timeout=5)
        if self.alive:
            self.process.kill()
            await self.process.wait()
        for task in (self._reader_task, self._monitor_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task

    def health(self) -> dict:
        return {
            "shard": self.shard_index,
            "lengths": list(self.lengths),
            "alive": self.alive,
            "pid": self.pid,
            "restarts": self.restarts,
            "last_ping_ms": self.last_ping_ms,
        }


class ClusterRouter:
    """The scatter-gather front for one sharded index."""

    def __init__(
        self,
        index_path: str,
        n_shards: int,
        max_inflight: int = 64,
        cache_size: int = 1024,
        worker_threads: int | None = None,
        ping_interval: float = 5.0,
    ) -> None:
        self.index_path = os.fspath(index_path)
        self.manifest = read_manifest(self.index_path)
        self.shard_map: ShardMap = shard_map_from_manifest(
            self.manifest, n_shards
        )
        self.st = float(self.manifest["st"])
        self.max_inflight = max(1, int(max_inflight))
        self.ping_interval = float(ping_interval)
        self.metrics = ClusterMetrics()
        self.jobs = JobQueue()
        self.workers = [
            WorkerHandle(
                shard_index,
                owned,
                self.index_path,
                self.metrics,
                cache_size=cache_size,
                threads=worker_threads,
            )
            for shard_index, owned in enumerate(self.shard_map.shards)
        ]
        self._inflight = 0
        self.draining = False
        self._ping_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn all workers and wait until each answers a ping."""
        await asyncio.gather(*(worker.start() for worker in self.workers))
        await asyncio.gather(*(worker.ping() for worker in self.workers))
        self._ping_task = asyncio.ensure_future(self._ping_loop())

    async def _ping_loop(self) -> None:
        while True:
            await asyncio.sleep(self.ping_interval)
            for worker in self.workers:
                if worker.alive:
                    with contextlib.suppress(ShardUnavailable):
                        await worker.ping()

    async def drain(self) -> None:
        """Stop admitting work, wait out in-flight requests, stop workers."""
        self.draining = True
        while self._inflight > 0:
            await asyncio.sleep(0.02)
        if self._ping_task is not None:
            self._ping_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ping_task
        await asyncio.gather(*(worker.stop() for worker in self.workers))
        # jobs.close() joins the worker thread (up to 30s): run it off
        # the loop so a long-running build can't freeze the drain.
        await asyncio.get_running_loop().run_in_executor(
            None, self.jobs.close
        )

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    async def process_line(self, line: str) -> str | None:
        """One JSON line in, one JSON line out (None for blank input)."""
        line = line.strip()
        if not line:
            return None
        started = time.perf_counter()
        try:
            request = json.loads(line)
        except ValueError as exc:
            self.metrics.stages["parse"].observe(time.perf_counter() - started)
            return json.dumps({"ok": False, "error": str(exc) or repr(exc)})
        self.metrics.stages["parse"].observe(time.perf_counter() - started)
        return json.dumps(await self.process_request(request))

    async def process_request(self, request: dict) -> dict:
        """Admission control + dispatch + id echo for one request."""
        request_id = None
        route_started = time.perf_counter()
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            self.metrics.record_op(str(op))
            if op in _ADMISSION_EXEMPT:
                self.metrics.stages["route"].observe(
                    time.perf_counter() - route_started
                )
                response = await self._dispatch_exempt(op, request)
            elif self.draining:
                self.metrics.record_error("draining")
                response = {
                    "ok": False,
                    "error": "server is draining",
                    "code": "draining",
                }
            elif self._inflight >= self.max_inflight:
                self.metrics.record_busy()
                response = {
                    "ok": False,
                    "error": (
                        f"too many in-flight requests "
                        f"(max_inflight={self.max_inflight})"
                    ),
                    "code": "busy",
                }
            else:
                self._inflight += 1
                self.metrics.stages["route"].observe(
                    time.perf_counter() - route_started
                )
                try:
                    response = await self._dispatch(op, request)
                finally:
                    self._inflight -= 1
        except ShardUnavailable as exc:
            self.metrics.record_shard_error()
            self.metrics.record_error("shard_unavailable")
            response = {
                "ok": False,
                "error": str(exc),
                "code": "shard_unavailable",
            }
        except Exception as exc:  # noqa: BLE001 — same contract as the
            # single-process loop: a bad request answers, never crashes.
            response = {"ok": False, "error": str(exc) or repr(exc)}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_exempt(self, op: str, request: dict) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "health":
            return {"ok": True, "health": self._health()}
        if op == "metrics":
            return {"ok": True, "metrics": await self._metrics()}
        if op == "submit":
            return {
                "ok": True,
                **self.jobs.submit(
                    str(request.get("kind")), request.get("params", {})
                ),
            }
        if op == "job_status":
            return {"ok": True, **self.jobs.status(request["job"])}
        if op == "jobs":
            return {"ok": True, "jobs": self.jobs.list_jobs()}
        raise ValueError(f"unhandled exempt op {op!r}")

    async def _dispatch(self, op: str, request: dict) -> dict:
        if op == "query":
            return await self._op_query(request)
        if op == "within":
            return await self._op_within(request)
        if op == "seasonal":
            return await self._forward_length_op(
                request, request.get("length")
            )
        if op == "recommend":
            return await self._forward(0, request)
        if op == "info":
            return {"ok": True, "info": await self._info()}
        if op == "shard_sleep":
            # Test/debug aid: hold one shard busy (fault injection).
            shard = int(request.get("shard", 0))
            payload = {
                "op": "sleep",
                "seconds": float(request.get("seconds", 1.0)),
            }
            return await self._timed_request(self.workers[shard], payload)
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _forward(self, shard_index: int, request: dict) -> dict:
        payload = {key: value for key, value in request.items() if key != "id"}
        return await self._timed_request(self.workers[shard_index], payload)

    async def _timed_request(self, worker: WorkerHandle, payload: dict) -> dict:
        started = time.perf_counter()
        try:
            return await worker.request(payload)
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )

    def _owner_or_zero(self, length: int) -> int:
        """Owning shard, or shard 0 for unindexed lengths.

        Shard 0 then raises the very error a single process would for
        that length — identical error text, no router-side duplicate of
        the core's validation.
        """
        try:
            return self.shard_map.owner(int(length))
        except (KeyError, TypeError, ValueError):
            return 0

    async def _forward_length_op(self, request: dict, length) -> dict:
        if length is None:
            raise KeyError("length")
        return await self._forward(self._owner_or_zero(length), request)

    # ------------------------------------------------------------------
    # query (the scatter-gather centrepiece)
    # ------------------------------------------------------------------
    async def _op_query(self, request: dict) -> dict:
        if "values" not in request and "queries" not in request:
            raise ValueError("query op requires 'values' or 'queries'")
        length = request.get("length")
        if length is not None:
            # Exact-length: whole request belongs to one shard.
            return await self._forward(self._owner_or_zero(length), request)
        k = int(request.get("k", 1))
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        normalized = bool(request.get("normalized", True))
        if "queries" in request:
            return await self._query_any_batch(
                list(request["queries"]), k, normalized
            )
        matches = await self._query_any(request["values"], k, normalized)
        return {"ok": True, "matches": matches}

    async def _scatter_scans(self, payload_for_shard) -> list[dict]:
        """Send one scan op per shard; gather raw worker responses."""
        started = time.perf_counter()
        try:
            responses = await asyncio.gather(
                *(
                    worker.request(payload_for_shard(worker))
                    for worker in self.workers
                )
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        for response in responses:
            if not response.get("ok"):
                raise ValueError(response.get("error", "scan failed"))
        return responses

    def _sweep(self, per_shard_scans: list[dict], query_length: int):
        """Merge per-shard scan dicts and replay the sweep (timed)."""
        started = time.perf_counter()
        scans_by_length = {
            int(length): scans
            for shard_scans in per_shard_scans
            for length, scans in shard_scans.items()
        }
        winner = replay_sweep(
            scans_by_length, self.shard_map.lengths, query_length, self.st
        )
        self.metrics.stages["merge"].observe(time.perf_counter() - started)
        return winner

    async def _query_any(
        self, values: list, k: int, normalized: bool
    ) -> list[dict]:
        responses = await self._scatter_scans(
            lambda worker: {
                "op": "scan",
                "values": values,
                "lengths": list(worker.lengths),
                "normalized": normalized,
            }
        )
        winner = self._sweep(
            [response["scans"] for response in responses], len(values)
        )
        if winner is None:
            raise ValueError(_NO_REP_ERROR)
        best_length, best_scans = winner
        refined = await self._timed_request(
            self.workers[self.shard_map.owner(best_length)],
            {
                "op": "refine",
                "jobs": [
                    {
                        "values": values,
                        "length": best_length,
                        "scans": best_scans,
                        "k": k,
                        "normalized": normalized,
                    }
                ],
            },
        )
        if not refined.get("ok"):
            raise ValueError(refined.get("error", "refine failed"))
        return refined["results"][0]

    async def _query_any_batch(
        self, queries: list, k: int, normalized: bool
    ) -> dict:
        responses = await self._scatter_scans(
            lambda worker: {
                "op": "scan",
                "queries": queries,
                "lengths": list(worker.lengths),
                "normalized": normalized,
            }
        )
        # jobs_by_shard: shard -> list of (query_index, job)
        jobs_by_shard: dict[int, list[tuple[int, dict]]] = {}
        for index, values in enumerate(queries):
            winner = self._sweep(
                [response["scans_batch"][index] for response in responses],
                len(values),
            )
            if winner is None:
                raise ValueError(_NO_REP_ERROR)
            best_length, best_scans = winner
            jobs_by_shard.setdefault(
                self.shard_map.owner(best_length), []
            ).append(
                (
                    index,
                    {
                        "values": values,
                        "length": best_length,
                        "scans": best_scans,
                        "k": k,
                        "normalized": normalized,
                    },
                )
            )
        shard_indices = sorted(jobs_by_shard)
        started = time.perf_counter()
        try:
            refined = await asyncio.gather(
                *(
                    self.workers[shard].request(
                        {
                            "op": "refine",
                            "jobs": [job for _, job in jobs_by_shard[shard]],
                        }
                    )
                    for shard in shard_indices
                )
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        merge_started = time.perf_counter()
        results: list = [None] * len(queries)
        for shard, response in zip(shard_indices, refined, strict=True):
            if not response.get("ok"):
                raise ValueError(response.get("error", "refine failed"))
            for (index, _), matches in zip(
                jobs_by_shard[shard], response["results"], strict=True
            ):
                results[index] = matches
        self.metrics.stages["merge"].observe(
            time.perf_counter() - merge_started
        )
        return {"ok": True, "results": results}

    # ------------------------------------------------------------------
    # within
    # ------------------------------------------------------------------
    async def _op_within(self, request: dict) -> dict:
        if request.get("length") is not None:
            # Explicit single length: whole request belongs to one shard.
            return await self._forward(
                self._owner_or_zero(request["length"]), request
            )
        base = {
            key: value
            for key, value in request.items()
            if key not in ("id", "lengths")
        }
        requested = request.get("lengths")
        wanted = (
            None if requested is None else {int(length) for length in requested}
        )
        if wanted is not None and not wanted <= set(self.shard_map.lengths):
            # An unindexed length must raise the single-process error;
            # let shard 0's core validation produce it verbatim.
            return await self._forward(0, request)
        fan_out = [
            (worker, owned)
            for worker in self.workers
            for owned in [
                list(worker.lengths)
                if wanted is None
                else sorted(set(worker.lengths) & wanted)
            ]
            if owned
        ]
        started = time.perf_counter()
        try:
            responses = await asyncio.gather(
                *(
                    worker.request({**base, "lengths": owned})
                    for worker, owned in fan_out
                )
            )
        finally:
            self.metrics.stages["shard_compute"].observe(
                time.perf_counter() - started
            )
        for response in responses:
            if not response.get("ok"):
                raise ValueError(response.get("error", "within failed"))
        merge_started = time.perf_counter()
        merged = merge_within([response["matches"] for response in responses])
        self.metrics.stages["merge"].observe(
            time.perf_counter() - merge_started
        )
        return {"ok": True, "matches": merged}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        shards = [worker.health() for worker in self.workers]
        status = "ok" if all(shard["alive"] for shard in shards) else "degraded"
        if self.draining:
            status = "draining"
        return {
            "status": status,
            "draining": self.draining,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "shard_map": self.shard_map.to_dict(),
            "shards": shards,
            "shard_latency": [
                worker.latency.to_dict() for worker in self.workers
            ],
        }

    async def _shard_infos(self) -> list[dict]:
        responses = await asyncio.gather(
            *(worker.request({"op": "shard_info"}) for worker in self.workers)
        )
        infos = []
        for response in responses:
            if not response.get("ok"):
                raise ValueError(response.get("error", "shard_info failed"))
            infos.append(response["info"])
        return infos

    async def _metrics(self) -> dict:
        infos = await self._shard_infos()
        cache = {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        cascade: dict[str, float] = {}
        for info in infos:
            for key in cache:
                cache[key] += int(info.get("cache", {}).get(key, 0))
            for key, value in info.get("query_stats", {}).items():
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    cascade[key] = cascade.get(key, 0) + value
        return {
            **self.metrics.to_dict(),
            "shard_latency": [
                worker.latency.to_dict() for worker in self.workers
            ],
            "cache": cache,
            "query_stats": cascade,
            "per_shard": infos,
        }

    async def _info(self) -> dict:
        infos = await self._shard_infos()
        return {
            "dataset": self.manifest.get("dataset_name"),
            "st": self.st,
            "lengths": self.shard_map.lengths,
            "n_shards": self.shard_map.n_shards,
            "shard_map": self.shard_map.to_dict(),
            "shards": infos,
        }

    # ------------------------------------------------------------------
    # Serving loops
    # ------------------------------------------------------------------
    async def serve_stdio(self) -> int:
        """Serve JSON lines from stdin until EOF, then drain."""
        loop = asyncio.get_event_loop()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def answer(line: str) -> None:
            response = await self.process_line(line)
            if response is not None:
                async with write_lock:
                    sys.stdout.write(response + "\n")
                    sys.stdout.flush()

        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            task = asyncio.ensure_future(answer(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.drain()
        return 0

    async def serve_tcp(self, host: str, port: int) -> int:
        """Serve JSON lines per TCP connection until cancelled."""

        async def handle(reader: asyncio.StreamReader, writer) -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    response = await self.process_line(line.decode())
                    if response is not None:
                        writer.write((response + "\n").encode())
                        await writer.drain()
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        server = await asyncio.start_server(handle, host, port)
        address = ", ".join(
            str(sock.getsockname()) for sock in server.sockets
        )
        print(f"onex-cluster listening on {address}", file=sys.stderr)
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        await self.drain()
        return 0
