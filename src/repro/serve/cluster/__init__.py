"""Horizontally sharded serving tier: router, workers, jobs, metrics.

The cluster package turns one mmap'd v3 index directory into an
N-process serving fleet:

* :mod:`~repro.serve.cluster.shardmap` — deterministic contiguous
  partition of the length grid, computed from the v3 manifest.
* :mod:`~repro.serve.cluster.worker` — one shard process hosting an
  :class:`~repro.serve.service.OnexService` restricted to its owned
  lengths, speaking JSON-lines over stdio.
* :mod:`~repro.serve.cluster.router` — the asyncio scatter-gather
  front: admission control, fan-out, bit-identical merges, health
  checks with automatic worker restart, graceful drain.
* :mod:`~repro.serve.cluster.jobs` — background queue for long-running
  ops (``build``, ``compact``) with ``submit``/``status`` polling.
* :mod:`~repro.serve.cluster.metrics` — per-stage latency histograms
  and counters behind the ``metrics`` op.
"""

from repro.serve.cluster.metrics import ClusterMetrics, LatencyHistogram
from repro.serve.cluster.shardmap import ShardMap, compute_shard_map

__all__ = [
    "ClusterMetrics",
    "LatencyHistogram",
    "ShardMap",
    "compute_shard_map",
]
