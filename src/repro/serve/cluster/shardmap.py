"""Deterministic shard maps over a v3 index's length grid.

A shard owns a **contiguous ascending range of indexed lengths**. Two
properties make that the right unit:

* The §5.3 sweep and the ``within`` merge both iterate lengths in a
  globally defined order, so contiguous ranges let the router
  concatenate shard results in shard order and reproduce the
  single-process iteration order exactly (bit-identity).
* Every worker mmaps the same v3 directory; a shard's marginal memory
  is only the buckets it hydrates, so partitioning by length is the
  partition the storage format already paid for.

The partition is the classic contiguous-balanced DP: minimise the
maximum shard weight, where a length's weight is its subsequence count
from the manifest (every member is a refinement candidate, so this
tracks worst-case per-shard work). The DP is deterministic — ties break
toward the earliest split — so every router that reads the same
manifest computes the same map, which is why persisting the strategy
name in the manifest (``sharding`` block) pins the layout.
"""

from __future__ import annotations

import dataclasses

from repro.core.persistence import read_manifest


@dataclasses.dataclass(frozen=True)
class ShardMap:
    """An immutable assignment of index lengths to shard workers."""

    strategy: str
    shards: tuple[tuple[int, ...], ...]  # shard -> owned lengths, ascending
    weights: tuple[int, ...]  # shard -> total subsequence weight

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def lengths(self) -> list[int]:
        return [length for shard in self.shards for length in shard]

    def owner(self, length: int) -> int:
        """Shard index owning ``length`` (raises ``KeyError`` if unowned)."""
        for shard_index, owned in enumerate(self.shards):
            if length in owned:
                return shard_index
        raise KeyError(f"length {length} is not owned by any shard")

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "shards": [list(owned) for owned in self.shards],
            "weights": list(self.weights),
        }


def _min_max_partition(weights: list[int], n_parts: int) -> list[int]:
    """Split points minimising the max part sum over contiguous parts.

    Returns the exclusive end index of each part. Pure DP, O(n^2 k);
    the length grid is tens of entries, so clarity beats cleverness.
    Ties break toward earlier splits (the DP scans split points in
    ascending order and keeps the first optimum), making the result a
    pure function of its inputs.
    """
    n = len(weights)
    prefix = [0]
    for weight in weights:
        prefix.append(prefix[-1] + weight)
    # best[k][i]: minimal max-sum splitting weights[:i] into k parts.
    best = [[float("inf")] * (n + 1) for _ in range(n_parts + 1)]
    split = [[0] * (n + 1) for _ in range(n_parts + 1)]
    best[0][0] = 0.0
    for k in range(1, n_parts + 1):
        for i in range(k, n + 1):
            for j in range(k - 1, i):
                candidate = max(best[k - 1][j], prefix[i] - prefix[j])
                if candidate < best[k][i]:
                    best[k][i] = candidate
                    split[k][i] = j
    ends = []
    i = n
    for k in range(n_parts, 0, -1):
        ends.append(i)
        i = split[k][i]
    return ends[::-1]


def compute_shard_map(
    lengths: list[int], weights: list[int], n_shards: int
) -> ShardMap:
    """Partition ``lengths`` (with per-length ``weights``) into shards.

    ``n_shards`` is clamped to the number of lengths — a shard with no
    lengths would answer nothing and only waste a process.
    """
    if not lengths:
        raise ValueError("cannot shard an index with no lengths")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    order = sorted(range(len(lengths)), key=lambda i: lengths[i])
    lengths = [int(lengths[i]) for i in order]
    weights = [int(weights[i]) for i in order]
    n_shards = min(int(n_shards), len(lengths))
    ends = _min_max_partition(weights, n_shards)
    shards = []
    shard_weights = []
    start = 0
    for end in ends:
        shards.append(tuple(lengths[start:end]))
        shard_weights.append(sum(weights[start:end]))
        start = end
    return ShardMap(
        strategy="contiguous-balanced",
        shards=tuple(shards),
        weights=tuple(shard_weights),
    )


def assign_replicas(
    shard_map: ShardMap, n_replicas: int
) -> tuple[tuple[int, ...], ...]:
    """Global worker-slot ids per shard for an R-replicated cluster.

    Every replica of shard ``i`` restores the identical length range
    (``shard_map.shards[i]``) over the same mmap'd v3 directory, so
    replication is purely a placement concern: slot ``shard * R +
    replica`` in the router's shard-major spawn order. Deterministic by
    construction — every router reading the same manifest with the same
    ``--replicas`` computes the same placement, which is what makes
    router-side failover transparent (any replica answers
    bit-identically).
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    replicas = int(n_replicas)
    return tuple(
        tuple(shard * replicas + replica for replica in range(replicas))
        for shard in range(shard_map.n_shards)
    )


def shard_map_from_manifest(manifest: dict, n_shards: int) -> ShardMap:
    """Compute the shard map a v3 manifest pins for ``n_shards``."""
    entries = manifest["lengths"]
    lengths = [int(entry["length"]) for entry in entries]
    weights = [int(entry.get("n_subsequences", 1)) for entry in entries]
    strategy = manifest.get("sharding", {}).get(
        "strategy", "contiguous-balanced"
    )
    if strategy != "contiguous-balanced":
        raise ValueError(f"unknown sharding strategy {strategy!r}")
    return compute_shard_map(lengths, weights, n_shards)


def shard_map_for_index(path: str, n_shards: int) -> ShardMap:
    """Read ``path``'s manifest and compute its shard map."""
    return shard_map_from_manifest(read_manifest(path), n_shards)
