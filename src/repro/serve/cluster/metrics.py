"""Structured serving metrics: per-stage latency histograms + counters.

The router times every request through four stages — ``parse`` (line →
request dict), ``route`` (admission + shard selection), ``shard_compute``
(time inside worker round-trips), ``merge`` (reassembling the final
response) — and exposes the histograms through the ``metrics`` op.
Buckets are fixed log-spaced milliseconds so histograms from different
processes (or different runs) merge by plain element-wise addition.
"""

from __future__ import annotations

import threading

# Upper bucket edges in milliseconds; the implicit last bucket is +inf.
# 0.05 ms .. 51.2 s in powers of two — wide enough for a JIT warmup
# outlier, fine enough to see a cache hit vs a cold scan.
DEFAULT_BUCKETS_MS: tuple[float, ...] = tuple(
    0.05 * 2**i for i in range(21)
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (thread-safe, mergeable)."""

    def __init__(self, buckets_ms: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        self.buckets_ms = tuple(float(edge) for edge in buckets_ms)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets_ms) + 1)  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum_seconds = 0.0  # guarded-by: _lock
        self._max_seconds = 0.0  # guarded-by: _lock

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        slot = len(self.buckets_ms)
        for i, edge in enumerate(self.buckets_ms):
            if ms <= edge:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum_seconds += seconds
            if seconds > self._max_seconds:
                self._max_seconds = seconds

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum_seconds": self._sum_seconds,
                "max_seconds": self._max_seconds,
                "buckets": [
                    {"le_ms": edge, "count": count}
                    for edge, count in zip(
                        list(self.buckets_ms) + [None],
                        self._counts,
                        strict=True,
                    )
                ],
            }

    def merge_dict(self, other: dict) -> None:
        """Fold a serialized histogram (same bucket grid) into this one."""
        counts = [entry["count"] for entry in other.get("buckets", [])]
        with self._lock:
            if len(counts) != len(self._counts):
                raise ValueError(
                    "histogram bucket grids differ; cannot merge"
                )
            for i, count in enumerate(counts):
                self._counts[i] += int(count)
            self._count += int(other.get("count", 0))
            self._sum_seconds += float(other.get("sum_seconds", 0.0))
            self._max_seconds = max(
                self._max_seconds, float(other.get("max_seconds", 0.0))
            )


STAGES = ("parse", "route", "shard_compute", "merge")


class ClusterMetrics:
    """All router-side observability state behind the ``metrics`` op."""

    def __init__(self) -> None:
        self.stages = {stage: LatencyHistogram() for stage in STAGES}
        self._lock = threading.Lock()
        self._ops: dict[str, int] = {}  # guarded-by: _lock
        self._errors: dict[str, int] = {}  # guarded-by: _lock
        self._busy_rejected = 0  # guarded-by: _lock
        self._shard_errors = 0  # guarded-by: _lock
        self._worker_restarts = 0  # guarded-by: _lock
        self._failovers = 0  # guarded-by: _lock
        self._retries = 0  # guarded-by: _lock
        self._replica_timeouts = 0  # guarded-by: _lock
        self._deadline_exceeded = 0  # guarded-by: _lock
        self._degraded_responses = 0  # guarded-by: _lock
        self._crash_loops = 0  # guarded-by: _lock
        self._breaker_transitions: dict[str, int] = {}  # guarded-by: _lock

    def record_op(self, op: str) -> None:
        with self._lock:
            self._ops[op] = self._ops.get(op, 0) + 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] = self._errors.get(code, 0) + 1

    def record_busy(self) -> None:
        with self._lock:
            self._busy_rejected += 1
            self._errors["busy"] = self._errors.get("busy", 0) + 1

    def record_shard_error(self) -> None:
        with self._lock:
            self._shard_errors += 1

    def record_worker_restart(self) -> None:
        with self._lock:
            self._worker_restarts += 1

    def record_failover(self) -> None:
        with self._lock:
            self._failovers += 1

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def record_replica_timeout(self) -> None:
        with self._lock:
            self._replica_timeouts += 1

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self._deadline_exceeded += 1
            self._errors["deadline_exceeded"] = (
                self._errors.get("deadline_exceeded", 0) + 1
            )

    def record_degraded(self) -> None:
        with self._lock:
            self._degraded_responses += 1

    def record_crash_loop(self) -> None:
        with self._lock:
            self._crash_loops += 1

    def record_breaker_transition(self, state: str) -> None:
        with self._lock:
            self._breaker_transitions[state] = (
                self._breaker_transitions.get(state, 0) + 1
            )

    @property
    def busy_rejected(self) -> int:
        with self._lock:
            return self._busy_rejected

    @property
    def worker_restarts(self) -> int:
        with self._lock:
            return self._worker_restarts

    @property
    def failovers(self) -> int:
        with self._lock:
            return self._failovers

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    def to_dict(self) -> dict:
        with self._lock:
            snapshot = {
                "ops": dict(self._ops),
                "errors": dict(self._errors),
                "busy_rejected": self._busy_rejected,
                "shard_errors": self._shard_errors,
                "worker_restarts": self._worker_restarts,
                "failovers": self._failovers,
                "retries": self._retries,
                "replica_timeouts": self._replica_timeouts,
                "deadline_exceeded": self._deadline_exceeded,
                "degraded_responses": self._degraded_responses,
                "crash_loops": self._crash_loops,
                "breaker_transitions": dict(self._breaker_transitions),
            }
        snapshot["stages"] = {
            stage: histogram.to_dict()
            for stage, histogram in self.stages.items()
        }
        return snapshot
