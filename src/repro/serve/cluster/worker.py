"""One shard worker: an ``OnexService`` over its owned lengths.

Spawned by the router as ``python -m repro.serve.cluster.worker INDEX
--shard I --lengths 6,12``. The worker mmaps the same v3 directory as
every other shard but only ever hydrates the buckets it owns, so N
workers cost one index's worth of page cache plus N small hydrated
slices. It speaks the same JSON-lines protocol as ``onex serve`` (all
standard ops are delegated to :func:`repro.serve.server.respond`), plus
four cluster-internal ops:

``scan``
    Open-bound representative scans of the owned lengths for one query
    (``values``) or a batch (``queries``) — the shard half of the §5.3
    sweep the router replays.
``refine``
    A list of refinement jobs ``{values, length, scans, k}`` for
    lengths this shard won; returns serialized matches per job.
``shard_info``
    Lightweight stats over the owned lengths only (never hydrates
    foreign buckets, unlike the full ``info`` op).
``sleep``
    Debug/test aid: hold the worker busy for ``seconds`` so fault
    injection can kill it mid-request.

Requests are processed sequentially — concurrency lives in the router's
fan-out across workers and each service's internal thread pool.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.onex import OnexIndex
from repro.serve.server import match_to_dict, respond
from repro.serve.service import OnexService


def handle_worker_request(
    service: OnexService, lengths: list[int], request: dict
) -> dict:
    """Dispatch one request, cluster-internal ops first."""
    op = request.get("op")
    if op == "scan":
        kwargs = {"normalized": bool(request.get("normalized", True))}
        owned = request.get("lengths", lengths)
        if "queries" in request:
            batch = [
                {
                    str(length): scans
                    for length, scans in service.scan(
                        values, owned, **kwargs
                    ).items()
                }
                for values in request["queries"]
            ]
            return {"ok": True, "scans_batch": batch}
        scans = service.scan(request["values"], owned, **kwargs)
        return {
            "ok": True,
            "scans": {str(length): result for length, result in scans.items()},
        }
    if op == "refine":
        results = []
        for job in request["jobs"]:
            matches = service.refine(
                job["values"],
                int(job["length"]),
                [tuple(scan) for scan in job["scans"]],
                k=int(job.get("k", 1)),
                normalized=bool(job.get("normalized", True)),
            )
            results.append([match_to_dict(match) for match in matches])
        return {"ok": True, "results": results}
    if op == "shard_info":
        return {"ok": True, "info": service.shard_info(lengths)}
    if op == "sleep":
        time.sleep(float(request.get("seconds", 1.0)))
        return {"ok": True, "slept": float(request.get("seconds", 1.0))}
    return respond(service, request)


def worker_respond(
    service: OnexService, lengths: list[int], request: dict
) -> dict:
    """Error-mapped, id-echoing wrapper around the worker dispatch."""
    request_id = None
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        request_id = request.get("id")
        response = handle_worker_request(service, lengths, request)
    except Exception as exc:  # noqa: BLE001 — same contract as the
        # single-process loop: bad requests answer, never crash.
        response = {"ok": False, "error": str(exc) or repr(exc)}
    if request_id is not None and "id" not in response:
        response["id"] = request_id
    return response


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.cluster.worker")
    parser.add_argument("index", help="v3 index directory (shared, mmap'd)")
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument(
        "--lengths",
        required=True,
        help="comma-separated lengths this shard owns",
    )
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--threads", type=int, default=None)
    args = parser.parse_args(argv)

    lengths = sorted(int(part) for part in args.lengths.split(",") if part)
    index = OnexIndex.load(args.index)
    service = OnexService(
        index, max_workers=args.threads, cache_size=args.cache_size
    )
    print(
        f"onex-worker shard={args.shard} lengths={lengths} "
        f"backend={service.backend.name} ready",
        file=sys.stderr,
        flush=True,
    )
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                response = {"ok": False, "error": str(exc) or repr(exc)}
            else:
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    response = {"ok": True, "bye": True}
                    if request.get("id") is not None:
                        response["id"] = request["id"]
                    print(json.dumps(response), flush=True)
                    break
                response = worker_respond(service, lengths, request)
            print(json.dumps(response), flush=True)
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
