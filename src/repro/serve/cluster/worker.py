"""One shard worker: an ``OnexService`` over its owned lengths.

Spawned by the router as ``python -m repro.serve.cluster.worker INDEX
--shard I --lengths 6,12``. The worker mmaps the same v3 directory as
every other shard but only ever hydrates the buckets it owns, so N
workers cost one index's worth of page cache plus N small hydrated
slices. It speaks the same JSON-lines protocol as ``onex serve`` (all
standard ops are delegated to :func:`repro.serve.server.respond`), plus
four cluster-internal ops:

``scan``
    Open-bound representative scans of the owned lengths for one query
    (``values``) or a batch (``queries``) — the shard half of the §5.3
    sweep the router replays.
``refine``
    A list of refinement jobs ``{values, length, scans, k}`` for
    lengths this shard won; returns serialized matches per job.
``shard_info``
    Lightweight stats over the owned lengths only (never hydrates
    foreign buckets, unlike the full ``info`` op).
``sleep``
    Debug/test aid: hold the worker busy for ``seconds`` so fault
    injection can kill it mid-request; echoes the ``budget_ms`` the
    router propagated so tests can observe deadline propagation.
``inject_fault``
    Chaos-test control channel (armed only under ``ONEX_FAULTS=1``,
    see :mod:`repro.serve.cluster.faults`): arms a fault that the
    reply path applies to a later matching request.

Requests are processed sequentially — concurrency lives in the router's
fan-out across workers and each service's internal thread pool.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.onex import OnexIndex
from repro.serve.cluster.faults import FaultInjector
from repro.serve.server import match_to_dict, respond
from repro.serve.service import OnexService


def handle_worker_request(
    service: OnexService,
    lengths: list[int],
    request: dict,
    faults: FaultInjector | None = None,
) -> dict:
    """Dispatch one request, cluster-internal ops first."""
    op = request.get("op")
    if op == "scan":
        kwargs = {"normalized": bool(request.get("normalized", True))}
        owned = request.get("lengths", lengths)
        if "queries" in request:
            batch = [
                {
                    str(length): scans
                    for length, scans in service.scan(
                        values, owned, **kwargs
                    ).items()
                }
                for values in request["queries"]
            ]
            return {"ok": True, "scans_batch": batch}
        scans = service.scan(request["values"], owned, **kwargs)
        return {
            "ok": True,
            "scans": {str(length): result for length, result in scans.items()},
        }
    if op == "refine":
        results = []
        for job in request["jobs"]:
            matches = service.refine(
                job["values"],
                int(job["length"]),
                [tuple(scan) for scan in job["scans"]],
                k=int(job.get("k", 1)),
                normalized=bool(job.get("normalized", True)),
            )
            results.append([match_to_dict(match) for match in matches])
        return {"ok": True, "results": results}
    if op == "shard_info":
        return {"ok": True, "info": service.shard_info(lengths)}
    if op == "sleep":
        time.sleep(float(request.get("seconds", 1.0)))
        response = {"ok": True, "slept": float(request.get("seconds", 1.0))}
        if "budget_ms" in request:
            # Echo the propagated budget so deadline-propagation tests
            # can assert child budget <= parent budget.
            response["budget_ms"] = float(request["budget_ms"])
        return response
    if op == "inject_fault":
        if faults is None:
            raise ValueError("fault injection is not wired in this worker")
        if request.get("action") == "list":
            return {"ok": True, "faults": faults.list_faults()}
        return {
            "ok": True,
            **faults.arm(
                str(request.get("kind")),
                ops=request.get("ops"),
                count=int(request.get("count", 1)),
                delay_ms=float(request.get("delay_ms", 0.0)),
            ),
        }
    return respond(service, request)


def worker_respond(
    service: OnexService,
    lengths: list[int],
    request: dict,
    faults: FaultInjector | None = None,
) -> dict:
    """Error-mapped, id-echoing wrapper around the worker dispatch."""
    request_id = None
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        request_id = request.get("id")
        response = handle_worker_request(service, lengths, request, faults)
    except Exception as exc:  # noqa: BLE001 — same contract as the
        # single-process loop: bad requests answer, never crash.
        response = {"ok": False, "error": str(exc) or repr(exc)}
    if request_id is not None and "id" not in response:
        response["id"] = request_id
    return response


def apply_fault(fault, response_line: str) -> str | None:
    """Interpret a matched fault in the reply path.

    Returns the line to emit (possibly corrupted), or ``None`` to drop
    the reply entirely. ``die`` never returns.
    """
    if fault.kind == "die":
        # os._exit skips atexit/flush — the router sees a dead pipe
        # mid-request, indistinguishable from a SIGKILL.
        os._exit(86)
    if fault.kind == "delay":
        time.sleep(fault.delay_ms / 1000.0)
        return response_line
    if fault.kind == "drop":
        return None
    if fault.kind == "corrupt":
        return "\x00corrupt-frame\x00 not json {"
    return response_line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.cluster.worker")
    parser.add_argument("index", help="v3 index directory (shared, mmap'd)")
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--replica", type=int, default=0)
    parser.add_argument(
        "--lengths",
        required=True,
        help="comma-separated lengths this shard owns",
    )
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--threads", type=int, default=None)
    args = parser.parse_args(argv)

    lengths = sorted(int(part) for part in args.lengths.split(",") if part)
    index = OnexIndex.load(args.index)
    service = OnexService(
        index, max_workers=args.threads, cache_size=args.cache_size
    )
    faults = FaultInjector.from_env()
    print(
        f"onex-worker shard={args.shard} replica={args.replica} "
        f"lengths={lengths} backend={service.backend.name} ready",
        file=sys.stderr,
        flush=True,
    )
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                response = {"ok": False, "error": str(exc) or repr(exc)}
                request = {}
            else:
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    response = {"ok": True, "bye": True}
                    if request.get("id") is not None:
                        response["id"] = request["id"]
                    print(json.dumps(response), flush=True)
                    break
                response = worker_respond(service, lengths, request, faults)
            out = json.dumps(response)
            fault = (
                faults.match(str(request.get("op")))
                if isinstance(request, dict)
                else None
            )
            if fault is not None:
                out = apply_fault(fault, out)
                if out is None:
                    continue
            print(out, flush=True)
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
