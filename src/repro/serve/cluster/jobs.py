"""Background job queue for long-running ops (build, compact).

The serving path must never block on minutes-long work, so ``build``
and ``compact`` requests become queued jobs executed by one daemon
thread; clients poll with ``{"op": "job_status", "job": "job-3"}``.
One worker thread is deliberate: construction saturates the kernel
backend on its own, and serialising jobs keeps index directories from
racing each other. The shape follows the task-queue pattern of the
journals pipeline (submit returns a ticket; status is a poll).
"""

from __future__ import annotations

import dataclasses
import queue
import sys
import threading
import time
import traceback


@dataclasses.dataclass
class Job:
    """One queued unit of background work."""

    job_id: str
    kind: str
    params: dict
    status: str = "queued"  # queued | running | done | error
    result: dict | None = None
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    def to_dict(self) -> dict:
        return {
            "job": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def _run_build(params: dict) -> dict:
    """Build an index from a synthetic-dataset spec and save it (v3)."""
    from repro.core.onex import OnexIndex
    from repro.core.persistence import save_index
    from repro.data.normalize import min_max_normalize_dataset
    from repro.data.synthetic import make_dataset

    spec = dict(params.get("dataset", {}))
    dataset = make_dataset(
        spec.get("name", "synthetic"),
        n_series=int(spec.get("n_series", 8)),
        length=int(spec.get("length", 32)),
        seed=int(spec.get("seed", 0)),
    )
    if spec.get("normalize", True):
        dataset = min_max_normalize_dataset(dataset)
    index = OnexIndex.build(
        dataset,
        st=float(params.get("st", 0.2)),
        lengths=params.get("lengths"),
        normalize=False,
        seed=int(params.get("seed", 0)),
    )
    path = params["path"]
    save_index(index, path)
    return {
        "path": path,
        "n_groups": sum(b.n_groups for b in index.rspace),
        "lengths": index.rspace.lengths,
    }


def _run_compact(params: dict) -> dict:
    """Rewrite an index directory in place (fresh, fully packed v3)."""
    from repro.core.onex import OnexIndex
    from repro.core.persistence import save_index

    path = params["path"]
    index = OnexIndex.load(path)
    # Force full hydration so the rewrite sees every bucket.
    index.stats()
    save_index(index, path)
    return {"path": path, "lengths": index.rspace.lengths}


_RUNNERS = {"build": _run_build, "compact": _run_compact}


class JobQueue:
    """A single-threaded FIFO of background jobs with polling."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._order: list[str] = []  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._closed_clean: bool | None = None  # guarded-by: _lock
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name="onex-jobs", daemon=True
        )
        self._thread.start()

    def submit(self, kind: str, params: dict) -> dict:
        if kind not in _RUNNERS:
            raise ValueError(
                f"unknown job kind {kind!r} (known: {sorted(_RUNNERS)})"
            )
        with self._lock:
            if self._closed:
                # The worker is gone; accepting the job would park it
                # in "queued" forever with no thread to run it.
                raise RuntimeError("job queue is closed")
            job_id = f"job-{self._next_id}"
            self._next_id += 1
            job = Job(
                job_id=job_id,
                kind=kind,
                params=dict(params),
                submitted_at=time.time(),
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._queue.put(job)
        return {"job": job_id, "status": "queued"}

    def status(self, job_id: str) -> dict:
        # Snapshot under the lock: the worker flips status/result/error
        # together under the same lock, so a poll can never observe
        # "done" with a missing result.
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.to_dict()
        raise KeyError(f"unknown job {job_id!r}")

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self._jobs[job_id].to_dict() for job_id in self._order]

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                job.status = "running"
                job.started_at = time.time()
            try:
                result = _RUNNERS[job.kind](job.params)
            except Exception as exc:  # noqa: BLE001 — a failed job must
                # surface through status polling, not kill the queue.
                traceback.print_exc()
                with self._lock:
                    job.status = "error"
                    job.error = str(exc) or repr(exc)
                    job.finished_at = time.time()
            else:
                with self._lock:
                    job.result = result
                    job.status = "done"
                    job.finished_at = time.time()

    @property
    def closed_clean(self) -> bool | None:
        """Whether ``close`` joined cleanly (``None`` before any close)."""
        with self._lock:
            return self._closed_clean

    def close(self, join_timeout: float = 30.0) -> bool:
        """Stop the worker thread after in-flight jobs finish.

        Idempotent: only the first call enqueues the sentinel, so a
        double close can't leave a stray ``None`` for a queue that was
        reopened-by-accident elsewhere; every call joins the thread.
        A join timeout (a job still running past ``join_timeout``
        seconds) leaks the daemon thread by design — but loudly: it is
        logged to stderr and reported as ``closed_clean: false`` in the
        ``jobs`` status so operators can tell a clean drain from a
        stuck build. Returns whether the join completed.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            self._queue.put(None)
        self._thread.join(timeout=join_timeout)
        clean = not self._thread.is_alive()
        if not clean:
            print(
                f"onex-jobs: close() join timed out after {join_timeout:g}s; "
                "worker thread leaked (job still running)",
                file=sys.stderr,
                flush=True,
            )
        with self._lock:
            # Sticky-false: a later clean-looking join (the leaked
            # thread eventually finished) must not mask the timeout.
            self._closed_clean = (
                clean if self._closed_clean is None
                else self._closed_clean and clean
            )
        return clean
