"""The ONEX serving layer: thread-safe, cached, truly batched queries.

The paper's promise is *interactive online* exploration; this package
is the piece that lets one built index answer many users at once.
:class:`~repro.serve.service.OnexService` wraps an index with
build-once-under-contention hydration, an LRU result cache, and a
length-grouped batch executor (:mod:`repro.serve.batch`);
:mod:`repro.serve.server` speaks the JSON-lines protocol behind the
``onex serve`` CLI mode. See ``DESIGN.md`` §9.
"""

from repro.serve.batch import default_workers, execute_batch
from repro.serve.cache import ResultCache, query_digest
from repro.serve.server import handle_request, serve_forever, serve_lines
from repro.serve.service import OnexService

__all__ = [
    "OnexService",
    "ResultCache",
    "default_workers",
    "execute_batch",
    "handle_request",
    "query_digest",
    "serve_forever",
    "serve_lines",
]
