"""Synthetic ECG.

The UCR *ECG200* dataset contains single heartbeats (96 points) in two
classes: normal beats and myocardial-infarction beats. A heartbeat is
classically modelled as a sum of Gaussian deflections — the P wave, the
QRS complex (Q dip, R spike, S dip) and the T wave. Abnormal beats here
get a depressed R amplitude, an elevated/inverted T and baseline drift,
which mirrors the morphology difference between the two UCR classes.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, gaussian_bump, make_rng, time_warp
from repro.data.timeseries import TimeSeries


def _heartbeat(length: int, abnormal: bool, rng: np.random.Generator) -> np.ndarray:
    """One beat built from P, Q, R, S and T deflections."""
    scale = length / 96.0
    r_center = length * 0.45 + rng.normal(0.0, 1.5 * scale)
    p_wave = gaussian_bump(length, r_center - 22 * scale, 4.5 * scale, 0.18)
    q_dip = gaussian_bump(length, r_center - 4 * scale, 1.6 * scale, -0.25)
    r_amp = 0.65 if abnormal else 1.0
    r_spike = gaussian_bump(length, r_center, 2.2 * scale, r_amp)
    s_dip = gaussian_bump(length, r_center + 4.5 * scale, 2.0 * scale, -0.35)
    t_amp = -0.25 if abnormal else 0.32
    t_wave = gaussian_bump(length, r_center + 22 * scale, 7.0 * scale, t_amp)
    beat = p_wave + q_dip + r_spike + s_dip + t_wave
    if abnormal:
        drift = 0.12 * np.sin(np.linspace(0.0, np.pi, length) + rng.uniform(0, np.pi))
        beat = beat + drift
    beat = time_warp(beat, rng, strength=0.05)
    beat += rng.normal(0.0, 0.025, size=length)
    return beat


def make_ecg(n_series: int = 30, length: int = 96, seed: int | None = 11) -> Dataset:
    """Generate an ECG200-like dataset of single heartbeats.

    Parameters
    ----------
    n_series:
        Number of beats (UCR ECG200: 200).
    length:
        Points per beat (UCR: 96).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        abnormal = index % 3 == 0  # ~1/3 abnormal, like ECG200's imbalance
        values = _heartbeat(length, abnormal, rng)
        series.append(
            TimeSeries(values, name=f"beat-{index}", label=-1 if abnormal else 1)
        )
    return Dataset(series, name="ECG")
