"""Shared building blocks for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a seeded NumPy generator (seed ``None`` draws from entropy)."""
    return np.random.default_rng(seed)


def check_generator_args(n_series: int, length: int) -> None:
    """Validate the two arguments every generator shares."""
    if n_series < 1:
        raise DataError(f"n_series must be >= 1, got {n_series}")
    if length < 8:
        raise DataError(f"length must be >= 8 for a meaningful waveform, got {length}")


def smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Box-filter smoothing with edge padding; window <= 1 is a no-op."""
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    padded = np.pad(values, (window // 2, window - 1 - window // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def time_warp(values: np.ndarray, rng: np.random.Generator, strength: float) -> np.ndarray:
    """Resample ``values`` along a smoothly perturbed time axis.

    This injects exactly the kind of local misalignment that makes DTW
    outperform ED, which the paper's datasets all exhibit. ``strength`` is
    the maximum relative displacement of any time point (e.g. ``0.05`` for
    5% of the series length).
    """
    n = len(values)
    if strength <= 0 or n < 3:
        return values.copy()
    n_knots = max(3, n // 16)
    knot_positions = np.linspace(0.0, n - 1.0, n_knots)
    jitter = rng.normal(0.0, strength * n / 3.0, size=n_knots)
    jitter[0] = jitter[-1] = 0.0
    warped_knots = np.clip(knot_positions + jitter, 0.0, n - 1.0)
    warped_knots = np.maximum.accumulate(warped_knots)  # keep time monotone
    warped_axis = np.interp(np.arange(n), knot_positions, warped_knots)
    return np.interp(warped_axis, np.arange(n), values)


def gaussian_bump(
    n: int, center: float, width: float, amplitude: float
) -> np.ndarray:
    """A Gaussian-shaped bump evaluated on integer time steps ``0..n-1``."""
    t = np.arange(n, dtype=np.float64)
    return amplitude * np.exp(-0.5 * ((t - center) / width) ** 2)


def random_walk(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """A zero-anchored Gaussian random walk of length ``n``."""
    return np.cumsum(rng.normal(0.0, scale, size=n))
