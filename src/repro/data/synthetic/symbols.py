"""Synthetic Symbols.

The UCR *Symbols* dataset captures pen trajectories of people drawing six
symbol shapes (398 points per trace). Traces of one symbol share a smooth
low-frequency shape but differ in drawing speed — local stretches and
compressions of the time axis — making it a canonical DTW workload. We
synthesize each symbol as a smooth composite of sinusoidal strokes and
apply per-instance time warping to emulate drawing-speed variation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, make_rng, smooth, time_warp
from repro.data.timeseries import TimeSeries


def _symbol_template(length: int, symbol: int) -> np.ndarray:
    """Deterministic smooth template for one of the six symbol classes."""
    t = np.linspace(0.0, 1.0, length)
    templates = (
        np.sin(2 * np.pi * t) + 0.4 * np.sin(6 * np.pi * t),
        np.cos(2 * np.pi * t) - 0.5 * np.cos(4 * np.pi * t),
        2.0 * np.abs(2 * t - 1.0) - 1.0 + 0.3 * np.sin(8 * np.pi * t),
        np.sin(3 * np.pi * t) * (1.0 - t),
        np.tanh(6 * (t - 0.5)) + 0.25 * np.sin(10 * np.pi * t),
        np.sin(2 * np.pi * t**2) + 0.2 * np.cos(5 * np.pi * t),
    )
    return templates[symbol % len(templates)]


def _symbol_instance(
    length: int, symbol: int, rng: np.random.Generator
) -> np.ndarray:
    """One drawing of a symbol: warped, scaled and noisy template."""
    template = _symbol_template(length, symbol)
    scale = rng.uniform(0.85, 1.15)
    offset = rng.normal(0.0, 0.05)
    values = scale * template + offset
    values = time_warp(values, rng, strength=0.08)  # drawing-speed variation
    values = smooth(values, window=max(1, length // 100))
    values += rng.normal(0.0, 0.02, size=length)
    return values


def make_symbols(
    n_series: int = 24, length: int = 128, seed: int | None = 19
) -> Dataset:
    """Generate a Symbols-like dataset of pen-trajectory traces.

    Parameters
    ----------
    n_series:
        Number of drawings (UCR: 1020 of length 398).
    length:
        Points per drawing (UCR: 398; shorter defaults keep pure-Python
        DTW tractable — pass 398 to match UCR exactly).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        symbol = index % 6
        values = _symbol_instance(length, symbol, rng)
        series.append(TimeSeries(values, name=f"symbol-{index}", label=symbol + 1))
    return Dataset(series, name="Symbols")
