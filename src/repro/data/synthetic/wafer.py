"""Synthetic Wafer.

The UCR *Wafer* dataset holds inline process-control measurements from
semiconductor fabrication (152 points): largely piecewise-constant traces
with sharp transitions between process stages, plus a minority class of
defective wafers whose traces show spikes and level anomalies. The
generator builds a staged step profile shared by all normal wafers and
injects spike/level faults into the abnormal minority.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, make_rng, smooth, time_warp
from repro.data.timeseries import TimeSeries

_STAGE_LEVELS = (0.1, 0.75, 0.4, 0.9, 0.25, 0.6)


def _wafer_trace(length: int, defective: bool, rng: np.random.Generator) -> np.ndarray:
    """A staged process trace, optionally carrying fault artifacts."""
    n_stages = len(_STAGE_LEVELS)
    boundaries = np.linspace(0, length, n_stages + 1).astype(int)
    trace = np.empty(length)
    for stage, level in enumerate(_STAGE_LEVELS):
        start, stop = boundaries[stage], boundaries[stage + 1]
        wobble = rng.normal(0.0, 0.02)
        trace[start:stop] = level + wobble
    trace = smooth(trace, window=max(3, length // 50))
    if defective:
        # A fault: one stage drifts and a transient spike appears.
        stage = int(rng.integers(1, n_stages))
        start, stop = boundaries[stage], boundaries[stage + 1]
        trace[start:stop] += rng.choice([-1.0, 1.0]) * rng.uniform(0.15, 0.35)
        spike_at = int(rng.integers(length // 8, length - length // 8))
        width = max(1, length // 60)
        trace[spike_at : spike_at + width] += rng.choice([-1.0, 1.0]) * rng.uniform(0.4, 0.8)
    trace = time_warp(trace, rng, strength=0.03)
    trace += rng.normal(0.0, 0.015, size=length)
    return trace


def make_wafer(n_series: int = 30, length: int = 152, seed: int | None = 17) -> Dataset:
    """Generate a Wafer-like dataset of process-control traces.

    Parameters
    ----------
    n_series:
        Number of wafers (UCR: 7164, ~10% defective).
    length:
        Points per trace (UCR: 152).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        defective = index % 10 == 0  # ~10% abnormal, like UCR's imbalance
        values = _wafer_trace(length, defective, rng)
        series.append(
            TimeSeries(values, name=f"wafer-{index}", label=-1 if defective else 1)
        )
    return Dataset(series, name="Wafer")
