"""Synthetic TwoPatterns.

The UCR *TwoPatterns* dataset (128 points, four classes) embeds two
transient patterns — each either an upward or a downward step pulse —
at random positions in a noisy baseline. The class is the ordered pair
of pattern directions: UU, UD, DU, DD. Random pattern positions make the
classes impossible to separate without time-warping, which is precisely
why the paper includes it.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, make_rng
from repro.data.timeseries import TimeSeries

_CLASSES = ((1, 1), (1, -1), (-1, 1), (-1, -1))  # (first, second) directions


def _step_pulse(length: int, start: int, width: int, direction: int) -> np.ndarray:
    """A rectangular up-down (or down-up) pulse of the given direction."""
    pulse = np.zeros(length)
    half = max(1, width // 2)
    stop_first = min(length, start + half)
    stop_second = min(length, start + width)
    pulse[start:stop_first] = direction * 1.0
    pulse[stop_first:stop_second] = -direction * 1.0
    return pulse


def _two_pattern_series(
    length: int, klass: int, rng: np.random.Generator
) -> np.ndarray:
    """Noise plus two directed pulses at random non-overlapping positions."""
    first_dir, second_dir = _CLASSES[klass % len(_CLASSES)]
    width = max(4, length // 8)
    first_start = int(rng.integers(0, length // 2 - width))
    second_start = int(rng.integers(length // 2, length - width))
    values = rng.normal(0.0, 0.1, size=length)
    values += _step_pulse(length, first_start, width, first_dir)
    values += _step_pulse(length, second_start, width, second_dir)
    return values


def make_two_pattern(
    n_series: int = 24, length: int = 128, seed: int | None = 23
) -> Dataset:
    """Generate a TwoPatterns-like dataset.

    Parameters
    ----------
    n_series:
        Number of series (UCR: 5000).
    length:
        Points per series (UCR: 128).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        klass = index % len(_CLASSES)
        values = _two_pattern_series(length, klass, rng)
        series.append(TimeSeries(values, name=f"tp-{index}", label=klass + 1))
    return Dataset(series, name="TwoPattern")
