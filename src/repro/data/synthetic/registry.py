"""Name-based access to every synthetic dataset generator."""

from __future__ import annotations

from collections.abc import Callable

from repro.data.dataset import Dataset
from repro.data.synthetic.italy_power import make_italy_power
from repro.data.synthetic.ecg import make_ecg
from repro.data.synthetic.face import make_face
from repro.data.synthetic.wafer import make_wafer
from repro.data.synthetic.symbols import make_symbols
from repro.data.synthetic.two_pattern import make_two_pattern
from repro.data.synthetic.starlight import make_starlight
from repro.exceptions import DataError

DATASET_GENERATORS: dict[str, Callable[..., Dataset]] = {
    "ItalyPower": make_italy_power,
    "ECG": make_ecg,
    "Face": make_face,
    "Wafer": make_wafer,
    "Symbols": make_symbols,
    "TwoPattern": make_two_pattern,
    "StarLightCurves": make_starlight,
}

# The six datasets of the paper's main experiments (Figs. 2, 4-8, Tables 1-4),
# in the order the paper plots them.
PAPER_DATASETS: tuple[str, ...] = (
    "ItalyPower",
    "ECG",
    "Face",
    "Wafer",
    "Symbols",
    "TwoPattern",
)


def make_dataset(name: str, **kwargs) -> Dataset:
    """Instantiate a synthetic dataset by its paper name.

    ``kwargs`` are forwarded to the generator (``n_series``, ``length``,
    ``seed``, ...). Name lookup is case-insensitive.
    """
    for known, generator in DATASET_GENERATORS.items():
        if known.lower() == name.lower():
            return generator(**kwargs)
    known_names = ", ".join(sorted(DATASET_GENERATORS))
    raise DataError(f"unknown dataset {name!r}; known datasets: {known_names}")
