"""Synthetic ItalyPowerDemand.

The UCR *ItalyPowerDemand* dataset records the hourly electrical power
demand of Italy: 24-point daily profiles in two classes (October-March
vs. April-September). Winter days show a pronounced evening peak on top
of the morning one; summer days are flatter with a midday plateau.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, gaussian_bump, make_rng, time_warp
from repro.data.timeseries import TimeSeries


def _daily_profile(length: int, season: int, rng: np.random.Generator) -> np.ndarray:
    """One day of demand: baseline + morning/evening peaks, season-shaped."""
    hours = np.linspace(0.0, 24.0, length, endpoint=False)
    base = 0.6 + 0.15 * np.sin((hours - 15.0) * np.pi / 12.0)
    morning = gaussian_bump(length, center=length * 8.5 / 24.0, width=length / 16.0, amplitude=0.5)
    if season == 0:  # winter: strong evening peak (lighting + heating)
        evening = gaussian_bump(length, center=length * 19.0 / 24.0, width=length / 14.0, amplitude=0.8)
    else:  # summer: midday plateau (cooling), weak evening
        evening = gaussian_bump(length, center=length * 13.5 / 24.0, width=length / 8.0, amplitude=0.45)
    night_dip = gaussian_bump(length, center=length * 3.0 / 24.0, width=length / 12.0, amplitude=-0.35)
    profile = base + morning + evening + night_dip
    profile = time_warp(profile, rng, strength=0.04)
    profile += rng.normal(0.0, 0.03, size=length)
    return profile


def make_italy_power(
    n_series: int = 30, length: int = 24, seed: int | None = 7
) -> Dataset:
    """Generate an ItalyPowerDemand-like dataset.

    Parameters
    ----------
    n_series:
        Number of daily profiles (UCR: 1096).
    length:
        Points per day (UCR: 24).
    seed:
        RNG seed for reproducibility.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        season = index % 2
        values = _daily_profile(length, season, rng)
        series.append(TimeSeries(values, name=f"day-{index}", label=season + 1))
    return Dataset(series, name="ItalyPower")
