"""Seeded synthetic stand-ins for the UCR datasets used in the paper.

The paper evaluates on seven UCR archive datasets (ItalyPower, ECG, Face,
Wafer, Symbols, TwoPattern, StarLightCurves). The archive is not
available offline, so each generator here reproduces the documented
*character* of its dataset — series length, class structure, waveform
shape, alignment jitter — which is what drives both the ED-based grouping
and the DTW search cost. See DESIGN.md §5 for the substitution rationale.
"""

from repro.data.synthetic.italy_power import make_italy_power
from repro.data.synthetic.ecg import make_ecg
from repro.data.synthetic.face import make_face
from repro.data.synthetic.wafer import make_wafer
from repro.data.synthetic.symbols import make_symbols
from repro.data.synthetic.two_pattern import make_two_pattern
from repro.data.synthetic.starlight import make_starlight
from repro.data.synthetic.registry import DATASET_GENERATORS, make_dataset

__all__ = [
    "make_italy_power",
    "make_ecg",
    "make_face",
    "make_wafer",
    "make_symbols",
    "make_two_pattern",
    "make_starlight",
    "make_dataset",
    "DATASET_GENERATORS",
]
