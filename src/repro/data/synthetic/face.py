"""Synthetic Face (FaceAll / FaceFour style).

The UCR face datasets map the outline of a head to a one-dimensional
"centroid distance" profile: the distance from the outline to its center
as a function of angle. Different subjects produce different harmonic
signatures (chin, nose, forehead bumps at characteristic angles), and
instances of the same subject differ by small rotations (phase shifts)
and noise — exactly the misalignment DTW absorbs.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, make_rng, time_warp
from repro.data.timeseries import TimeSeries


def _subject_signature(rng: np.random.Generator, n_harmonics: int = 6) -> np.ndarray:
    """Random per-subject harmonic amplitudes/phases defining a face outline."""
    amplitudes = rng.uniform(0.05, 0.35, size=n_harmonics) / np.arange(1, n_harmonics + 1)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n_harmonics)
    return np.stack([amplitudes, phases])


def _face_profile(
    length: int, signature: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Centroid-distance profile for one face instance of a subject."""
    angles = np.linspace(0.0, 2.0 * np.pi, length, endpoint=False)
    rotation = rng.uniform(-0.15, 0.15)  # small head rotation = phase shift
    profile = np.ones(length)
    amplitudes, phases = signature
    for k, (amp, phase) in enumerate(zip(amplitudes, phases, strict=True), start=1):
        profile += amp * np.cos(k * (angles + rotation) + phase)
    profile = time_warp(profile, rng, strength=0.04)
    profile += rng.normal(0.0, 0.02, size=length)
    return profile


def make_face(
    n_series: int = 28,
    length: int = 128,
    n_subjects: int = 4,
    seed: int | None = 13,
) -> Dataset:
    """Generate a FaceFour/FaceAll-like dataset of outline profiles.

    Parameters
    ----------
    n_series:
        Number of face instances (UCR FaceAll: 2250 of length 131).
    length:
        Points per profile (UCR: 131; default rounded to 128).
    n_subjects:
        Number of distinct subjects (classes).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    signatures = [_subject_signature(rng) for _ in range(max(1, n_subjects))]
    series = []
    for index in range(n_series):
        subject = index % len(signatures)
        values = _face_profile(length, signatures[subject], rng)
        series.append(TimeSeries(values, name=f"face-{index}", label=subject + 1))
    return Dataset(series, name="Face")
