"""Synthetic StarLightCurves.

The UCR *StarLightCurves* dataset (9236 series of length 1024) contains
phase-folded brightness curves of variable stars in three classes:
Cepheids (asymmetric saw-tooth pulsation), eclipsing binaries (two dips
per period) and RR Lyrae (sharp rise, slow decay). The paper uses it for
the scalability experiment (Fig. 3) with subsets of series truncated to
length 100. The generator reproduces the three morphologies with
per-instance phase shifts and noise.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic.base import check_generator_args, gaussian_bump, make_rng, time_warp
from repro.data.timeseries import TimeSeries


def _cepheid(length: int, phase: float) -> np.ndarray:
    """Asymmetric saw-tooth pulsation: fast rise, slow decline."""
    t = (np.linspace(0.0, 1.0, length) + phase) % 1.0
    rise = np.clip(t / 0.2, 0.0, 1.0)
    decline = np.clip((1.0 - t) / 0.8, 0.0, 1.0)
    return np.minimum(rise, decline)


def _eclipsing_binary(length: int, phase: float) -> np.ndarray:
    """Flat brightness with a deep primary and shallow secondary eclipse."""
    primary_center = (0.25 + phase) % 1.0 * length
    secondary_center = (0.75 + phase) % 1.0 * length
    curve = np.ones(length)
    curve += gaussian_bump(length, primary_center, length / 24.0, -0.8)
    curve += gaussian_bump(length, secondary_center, length / 24.0, -0.35)
    return curve


def _rr_lyrae(length: int, phase: float) -> np.ndarray:
    """Sharp rise then exponential-like decay, repeated once per window."""
    t = (np.linspace(0.0, 1.0, length) + phase) % 1.0
    return np.exp(-3.0 * t) * (1.0 - np.exp(-30.0 * t))


_MORPHOLOGIES = (_cepheid, _eclipsing_binary, _rr_lyrae)


def make_starlight(
    n_series: int = 30, length: int = 100, seed: int | None = 29
) -> Dataset:
    """Generate a StarLightCurves-like dataset.

    Parameters
    ----------
    n_series:
        Number of light curves (UCR: 9236; Fig. 3 uses 1000..5000 subsets).
    length:
        Points per curve (UCR: 1024; the paper's Fig. 3 truncates to 100,
        which is also the default here).
    seed:
        RNG seed.
    """
    check_generator_args(n_series, length)
    rng = make_rng(seed)
    series = []
    for index in range(n_series):
        klass = index % len(_MORPHOLOGIES)
        phase = float(rng.uniform(0.0, 0.1))
        values = _MORPHOLOGIES[klass](length, phase)
        values = time_warp(values, rng, strength=0.03)
        values = values + rng.normal(0.0, 0.02, size=length)
        series.append(TimeSeries(values, name=f"star-{index}", label=klass + 1))
    return Dataset(series, name="StarLightCurves")
