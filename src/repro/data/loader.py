"""Reading and writing datasets in the UCR archive text format.

The UCR Time Series Archive distributes each dataset as plain text: one
series per line, the first field being the integer class label, the rest
the observations, separated by commas or whitespace. The paper's
experiments all run on UCR datasets, so this loader lets users drop in
real UCR files when they have them; our benchmarks fall back to the
synthetic generators in :mod:`repro.data.synthetic`.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.data.dataset import Dataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DataError


def _split_fields(line: str) -> list[str]:
    """Split a UCR line on commas or arbitrary whitespace."""
    if "," in line:
        return [field for field in line.split(",") if field.strip()]
    return line.split()


def load_ucr_file(
    path: str | os.PathLike,
    name: str = "",
    has_labels: bool = True,
    max_series: int | None = None,
) -> Dataset:
    """Load a UCR-format text file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read.
    name:
        Dataset name; defaults to the file's stem.
    has_labels:
        When ``True`` (the UCR convention) the first field of every line is
        an integer class label.
    max_series:
        Optional cap on the number of series read (useful for sampling big
        archives).
    """
    path = os.fspath(path)
    series: list[TimeSeries] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = _split_fields(line)
            label: int | None = None
            if has_labels:
                if len(fields) < 2:
                    raise DataError(
                        f"{path}:{line_no}: expected a label and at least one value"
                    )
                try:
                    label = int(float(fields[0]))
                except ValueError as exc:
                    raise DataError(
                        f"{path}:{line_no}: label {fields[0]!r} is not numeric"
                    ) from exc
                fields = fields[1:]
            try:
                values = [float(field) for field in fields]
            except ValueError as exc:
                raise DataError(f"{path}:{line_no}: non-numeric value: {exc}") from exc
            series.append(
                TimeSeries(values, name=f"{name or 'series'}-{len(series)}", label=label)
            )
            if max_series is not None and len(series) >= max_series:
                break
    if not series:
        raise DataError(f"{path}: no series found")
    if not name:
        name = os.path.splitext(os.path.basename(path))[0]
    return Dataset(series, name=name)


def save_ucr_file(
    dataset: Dataset | Iterable[TimeSeries],
    path: str | os.PathLike,
    with_labels: bool = True,
) -> None:
    """Write series to UCR text format (comma separated).

    Series without a label are written with label ``0`` when
    ``with_labels`` is set, mirroring the archive's convention that every
    line starts with a class id.
    """
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        for series in dataset:
            fields: list[str] = []
            if with_labels:
                fields.append(str(series.label if series.label is not None else 0))
            fields.extend(f"{value:.10g}" for value in series.values)
            handle.write(",".join(fields) + "\n")
