"""Normalization schemes.

The paper (§6.1) normalizes *each sequence based on the maximum and
minimum values in each dataset*: ``x' = (x - min) / (max - min)`` with the
extrema taken dataset-wide. That scheme is implemented by
:func:`min_max_normalize_dataset`. Per-series min-max and the more common
z-normalization are provided as extras (Trillion's native setting is
z-normalization; our Trillion baseline works on whatever scale the harness
gives it so all systems see identical data).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError


def min_max_normalize(values: np.ndarray, minimum: float, maximum: float) -> np.ndarray:
    """Scale ``values`` by the affine map sending [minimum, maximum] to [0, 1].

    A constant dataset (``maximum == minimum``) maps to all zeros, matching
    the convention that a flat series carries no shape information.
    """
    values = np.asarray(values, dtype=np.float64)
    span = maximum - minimum
    if span < 0:
        raise DataError(f"maximum ({maximum}) must be >= minimum ({minimum})")
    if span == 0:
        return np.zeros_like(values)
    return (values - minimum) / span


def min_max_normalize_dataset(dataset: Dataset) -> Dataset:
    """Normalize with the paper's dataset-global min-max scheme (§6.1)."""
    minimum, maximum = dataset.value_range
    return dataset.map(lambda values: min_max_normalize(values, minimum, maximum))


def min_max_normalize_per_series(dataset: Dataset) -> Dataset:
    """Normalize each series independently to [0, 1]."""

    def _scale(values: np.ndarray) -> np.ndarray:
        return min_max_normalize(values, float(values.min()), float(values.max()))

    return dataset.map(_scale)


def z_normalize(values: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Shift/scale ``values`` to zero mean and unit standard deviation.

    Series with (near-)zero variance are returned as all zeros rather than
    dividing by ~0.
    """
    values = np.asarray(values, dtype=np.float64)
    std = float(values.std())
    if std < epsilon:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def z_normalize_dataset(dataset: Dataset) -> Dataset:
    """Apply per-series z-normalization to a whole dataset."""
    return dataset.map(z_normalize)
