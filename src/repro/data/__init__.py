"""Time-series containers, normalization, loading and synthetic datasets."""

from repro.data.timeseries import TimeSeries, SubsequenceId
from repro.data.dataset import Dataset
from repro.data.normalize import (
    min_max_normalize,
    min_max_normalize_dataset,
    z_normalize,
    z_normalize_dataset,
)
from repro.data.loader import load_ucr_file, save_ucr_file
from repro.data.store import LengthView, SubsequenceStore

__all__ = [
    "TimeSeries",
    "SubsequenceId",
    "Dataset",
    "SubsequenceStore",
    "LengthView",
    "min_max_normalize",
    "min_max_normalize_dataset",
    "z_normalize",
    "z_normalize_dataset",
    "load_ucr_file",
    "save_ucr_file",
]
