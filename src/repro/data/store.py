"""Columnar subsequence storage: zero-copy windows over concatenated series.

The paper's base construction enumerates every subsequence of every
length — materializing each one as its own array is what made the seed
implementation allocation-bound. The :class:`SubsequenceStore` instead
concatenates all series values into one flat array and exposes, per
length ``L``, a :class:`LengthView`: a zero-copy
``sliding_window_view`` window matrix plus parallel ``series`` /
``starts`` id columns, so a subsequence is just a **row index**. Groups
and buckets hold row-index arrays; values are gathered on demand with
one fancy-index instead of per-member Python loops.

Row order within a view is identical to
:meth:`repro.data.dataset.Dataset.subsequences`: series-major, starting
positions ascending (strided by ``start_step``). Windows that would
cross a series boundary are never enumerated — the flat window matrix
contains them, but no valid row maps to one.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.exceptions import DataError


class LengthView:
    """All subsequences of one length as columns over the flat store.

    Attributes
    ----------
    length, start_step:
        The enumeration parameters.
    series, starts:
        Per-row parent series index and starting offset (``int32``).
    window_rows:
        Per-row index into the zero-copy sliding-window matrix.
    """

    __slots__ = (
        "length",
        "start_step",
        "series",
        "starts",
        "window_rows",
        "_windows",
        "_row_offsets",
        "_sq_norms",
    )

    def __init__(self, store: "SubsequenceStore", length: int) -> None:
        if length < 2:
            raise DataError(f"subsequence length must be >= 2, got {length}")
        if length > store.flat_values.shape[0]:
            raise DataError(
                f"subsequence length {length} exceeds the store's "
                f"{store.flat_values.shape[0]} total points"
            )
        step = store.start_step
        self.length = int(length)
        self.start_step = step
        # Zero-copy: one strided view over the concatenated values.
        self._windows = sliding_window_view(store.flat_values, length)

        counts = np.maximum(store.series_lengths - length + 1, 0)
        counts = -(-counts // step)  # ceil-div: strided start positions
        self._row_offsets = np.concatenate([[0], np.cumsum(counts)])
        self.series = np.repeat(
            np.arange(len(counts), dtype=np.int32), counts
        )
        self.starts = (
            np.arange(self.n_rows, dtype=np.int64)
            - self._row_offsets[self.series]
        ).astype(np.int32) * step
        self.window_rows = store.series_offsets[self.series] + self.starts
        self._sq_norms: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self._row_offsets[-1])

    def __len__(self) -> int:
        return self.n_rows

    def values(self, rows: np.ndarray | slice | None = None) -> np.ndarray:
        """Gather the window matrix for ``rows`` (all rows when ``None``).

        A single row index returns a zero-copy view into the flat value
        array; index arrays materialize the gathered rows (one
        vectorized fancy-index, no per-member Python loop).
        """
        if rows is None:
            rows = slice(None)
        return self._windows[self.window_rows[rows]]

    def row_values(self, row: int) -> np.ndarray:
        """Zero-copy view of one subsequence's values."""
        return self._windows[self.window_rows[row]]

    @property
    def flat_windows(self) -> np.ndarray:
        """The strided sliding-window matrix backing this view.

        Row ``r``'s values live at ``flat_windows[window_rows[r]]``.
        Zero-copy (and possibly read-only when the store wraps an
        on-disk mmap); the kernel-facing construction path reads it
        directly instead of materializing gathered rows.
        """
        return self._windows

    def sq_norms(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Cached squared ED norms ``||s||^2`` per row.

        Computed once per view directly over the strided window matrix
        (no materialization); backs the norm-difference lower bound of
        the construction engine.
        """
        if self._sq_norms is None:
            if 2 * self.n_rows >= self._windows.shape[0]:
                # Dense enumeration: reduce over the strided view (no
                # materialization) and gather the enumerated rows.
                all_norms = np.einsum("ij,ij->i", self._windows, self._windows)
                self._sq_norms = all_norms[self.window_rows]
            else:
                # Sparse (start_step-strided) enumeration: reducing every
                # flat window would do ~start_step times the needed work.
                gathered = self._windows[self.window_rows]
                self._sq_norms = np.einsum("ij,ij->i", gathered, gathered)
        if rows is None:
            return self._sq_norms
        return self._sq_norms[rows]

    # ------------------------------------------------------------------
    def ssid(self, row: int) -> SubsequenceId:
        """The :class:`SubsequenceId` addressed by one row."""
        return SubsequenceId(
            int(self.series[row]), int(self.starts[row]), self.length
        )

    def ids(self, rows: np.ndarray) -> list[SubsequenceId]:
        """Materialize :class:`SubsequenceId` objects for an index array."""
        length = self.length
        return [
            SubsequenceId(int(p), int(j), length)
            for p, j in zip(
                self.series[rows].tolist(),
                self.starts[rows].tolist(),
                strict=True,
            )
        ]

    def rows_of(
        self, series: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        """Row indices of ``(series, start)`` pairs (vectorized inverse).

        Raises :class:`~repro.exceptions.DataError` when a pair does not
        address an enumerated row (out of range, or a start that is not
        a multiple of ``start_step``).
        """
        series = np.asarray(series, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        if series.size and (
            series.min() < 0 or series.max() >= len(self._row_offsets) - 1
        ):
            raise DataError("series index out of range for this store")
        quotient, remainder = np.divmod(starts, self.start_step)
        rows = self._row_offsets[series] + quotient
        valid = (
            (remainder == 0)
            & (starts >= 0)
            & (rows < self._row_offsets[series + 1])
        )
        if not bool(valid.all()):
            bad = int(np.flatnonzero(~valid)[0])
            raise DataError(
                f"({int(series[bad])}, {int(starts[bad])}) does not address "
                f"an enumerated subsequence of length {self.length} "
                f"(start_step={self.start_step})"
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"<LengthView L={self.length} rows={self.n_rows} "
            f"step={self.start_step}>"
        )


class SubsequenceStore:
    """Columnar storage of a dataset's subsequences, one view per length.

    Parameters
    ----------
    dataset:
        The (already normalized) dataset to decompose. The store keeps a
        reference; series values are concatenated once into a flat array
        every :class:`LengthView` windows over.
    start_step:
        Stride over starting positions shared by every view.
    """

    def __init__(self, dataset: Dataset, start_step: int = 1) -> None:
        if start_step < 1:
            raise DataError(f"start_step must be >= 1, got {start_step}")
        self.dataset = dataset
        self.start_step = int(start_step)
        self.flat_values = np.concatenate([s.values for s in dataset])
        lengths = np.array([len(s) for s in dataset], dtype=np.int64)
        self.series_lengths = lengths
        self.series_offsets = np.concatenate([[0], np.cumsum(lengths)])[:-1]
        self._views: dict[int, LengthView] = {}  # guarded-by: _views_lock
        self._views_lock = threading.Lock()

    @classmethod
    def from_flat(
        cls,
        flat_values: np.ndarray,
        series_lengths: np.ndarray,
        start_step: int = 1,
        dataset: Dataset | None = None,
    ) -> "SubsequenceStore":
        """A store over an existing flat value array, without re-copying.

        ``flat_values`` may be a read-only buffer — in particular a
        ``numpy.memmap`` over an on-disk ``.npy`` file (the v3
        persistence format and the process-parallel build workers both
        window directly over such a mapping, so subsequence values are
        paged in on demand and never pickled or duplicated per process).
        ``series_lengths`` delimits the concatenated series. ``dataset``
        is optional; worker-side stores have none.
        """
        if start_step < 1:
            raise DataError(f"start_step must be >= 1, got {start_step}")
        flat_values = np.asarray(flat_values)
        if flat_values.ndim != 1:
            raise DataError(
                f"flat_values must be 1-D, got shape {flat_values.shape}"
            )
        lengths = np.asarray(series_lengths, dtype=np.int64)
        if int(lengths.sum()) != flat_values.shape[0]:
            raise DataError(
                f"series_lengths sum to {int(lengths.sum())} but flat_values "
                f"has {flat_values.shape[0]} points"
            )
        store = cls.__new__(cls)
        store.dataset = dataset
        store.start_step = int(start_step)
        store.flat_values = flat_values
        store.series_lengths = lengths
        store.series_offsets = np.concatenate([[0], np.cumsum(lengths)])[:-1]
        store._views = {}
        store._views_lock = threading.Lock()
        return store

    def view(self, length: int) -> LengthView:
        """The (cached) per-length view of every subsequence.

        Thread-safe: concurrent bucket hydrations of different lengths
        share one store, and each view is constructed exactly once.
        """
        # Deliberate lock-free fast path: a hit reads a fully-built
        # view already published under the lock (GIL-atomic read).
        view = self._views.get(length)  # onex: ignore[ONEX301]
        if view is None:
            with self._views_lock:
                view = self._views.get(length)
                if view is None:
                    view = LengthView(self, length)
                    self._views[length] = view
        return view

    @property
    def total_points(self) -> int:
        return int(self.flat_values.shape[0])

    def __repr__(self) -> str:
        n = len(self.series_lengths)
        return (
            f"<SubsequenceStore N={n} "
            f"points={self.total_points} step={self.start_step}>"
        )
