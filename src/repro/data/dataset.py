"""The :class:`Dataset` container: a collection of time series.

A dataset ``D = {X1, ..., XN}`` (paper §2) plus the subsequence
enumeration used by the ONEX base construction. The paper decomposes
series into *all* possible lengths and starting positions; real
deployments (and our benchmarks) bound both through ``lengths`` grids and
a ``start_step`` stride, which the enumeration here supports directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import DataError
from repro.utils.validation import check_lengths


class Dataset:
    """An ordered collection of :class:`~repro.data.timeseries.TimeSeries`.

    Parameters
    ----------
    series:
        Iterable of :class:`TimeSeries` (or raw arrays, which are wrapped).
    name:
        Dataset label used in reports ("ItalyPower", "ECG", ...).
    """

    def __init__(self, series: Iterable[Any], name: str = "") -> None:
        wrapped: list[TimeSeries] = []
        for index, item in enumerate(series):
            if isinstance(item, TimeSeries):
                wrapped.append(item)
            else:
                wrapped.append(TimeSeries(item, name=f"series-{index}"))
        if not wrapped:
            raise DataError("a dataset requires at least one time series")
        self._series = wrapped
        self.name = str(name)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __getitem__(self, index: int) -> TimeSeries:
        return self._series[index]

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"<Dataset{name} N={len(self)} lengths={self.min_length}..{self.max_length}>"

    # ------------------------------------------------------------------
    # Shape statistics
    # ------------------------------------------------------------------
    @property
    def min_length(self) -> int:
        """Length of the shortest series."""
        return min(len(series) for series in self._series)

    @property
    def max_length(self) -> int:
        """Length of the longest series."""
        return max(len(series) for series in self._series)

    @property
    def value_range(self) -> tuple[float, float]:
        """Global ``(min, max)`` over every point of every series."""
        minimum = min(float(series.values.min()) for series in self._series)
        maximum = max(float(series.values.max()) for series in self._series)
        return minimum, maximum

    def total_points(self) -> int:
        """Total number of observations across all series."""
        return sum(len(series) for series in self._series)

    # ------------------------------------------------------------------
    # Subsequence enumeration (paper Def. 1)
    # ------------------------------------------------------------------
    def subsequence(self, ssid: SubsequenceId) -> np.ndarray:
        """Materialize the values of an identified subsequence."""
        return self._series[ssid.series].subsequence(ssid.start, ssid.length)

    def subsequences(
        self, length: int, start_step: int = 1
    ) -> Iterator[tuple[SubsequenceId, np.ndarray]]:
        """Yield every ``(id, values)`` pair of the given ``length``.

        ``start_step`` strides the starting positions; ``1`` enumerates all
        ``n - length + 1`` windows per series exactly as the paper assumes.
        """
        if length < 2:
            raise DataError(f"subsequence length must be >= 2, got {length}")
        if start_step < 1:
            raise DataError(f"start_step must be >= 1, got {start_step}")
        for p, series in enumerate(self._series):
            values = series.values
            for j in range(0, len(series) - length + 1, start_step):
                yield SubsequenceId(p, j, length), values[j : j + length]

    def n_subsequences(self, length: int, start_step: int = 1) -> int:
        """Count subsequences of ``length`` without materializing them."""
        return sum(series.n_subsequences(length, start_step) for series in self._series)

    def total_subsequences(
        self, lengths: Sequence[int] | None = None, start_step: int = 1
    ) -> int:
        """Total subsequence count over a grid of lengths.

        With ``lengths=None`` and ``start_step=1`` this equals the paper's
        ``N * n * (n - 1) / 2`` cardinality for equal-length series.
        """
        grid = self.default_lengths() if lengths is None else list(lengths)
        return sum(self.n_subsequences(length, start_step) for length in grid)

    def default_lengths(self, length_step: int = 1, min_length: int = 2) -> list[int]:
        """All lengths from ``min_length`` to the shortest series, strided."""
        top = self.min_length
        if min_length > top:
            raise DataError(
                f"min_length {min_length} exceeds shortest series length {top}"
            )
        lengths = list(range(min_length, top + 1, max(1, length_step)))
        if lengths[-1] != top:
            lengths.append(top)
        return check_lengths(lengths, self.max_length)

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def map(self, transform: Any, name: str | None = None) -> "Dataset":
        """Apply ``transform(values) -> values`` to every series."""
        return Dataset(
            [series.with_values(transform(series.values)) for series in self._series],
            name=self.name if name is None else name,
        )

    def without_series(self, index: int) -> "Dataset":
        """Return a copy with series ``index`` removed.

        Used by the "query outside of the dataset" methodology of §6.2.1
        (a random series is held out and queried against the rest).
        """
        if not 0 <= index < len(self):
            raise DataError(f"series index {index} out of range for N={len(self)}")
        remaining = [s for i, s in enumerate(self._series) if i != index]
        if not remaining:
            raise DataError("cannot remove the only series in a dataset")
        return Dataset(remaining, name=self.name)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Dataset":
        """Return a dataset restricted to the given series indices."""
        return Dataset(
            [self._series[i] for i in indices],
            name=self.name if name is None else name,
        )

    def to_matrix(self) -> np.ndarray:
        """Stack equal-length series into a 2-D ``(N, n)`` array."""
        if self.min_length != self.max_length:
            raise DataError("to_matrix requires all series to share one length")
        return np.stack([series.values for series in self._series])
