"""The :class:`TimeSeries` value object and subsequence identifiers.

A time series ``X = (x1, ..., xn)`` is a sequence of real values (paper
§2). Subsequences are addressed per Definition 1 of the paper: ``(Xp)^i_j``
is the subsequence of series ``Xp`` of length ``i`` starting at position
``j`` (0-based here).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import as_float_array


@dataclass(frozen=True, order=True)
class SubsequenceId:
    """Identifies a subsequence ``(Xp)^i_j`` inside a dataset.

    Attributes
    ----------
    series:
        Index ``p`` of the parent series within the dataset.
    start:
        0-based starting offset ``j`` within the parent series.
    length:
        Length ``i`` of the subsequence.
    """

    series: int
    start: int
    length: int

    def __str__(self) -> str:  # e.g. "(X3)^10_5"
        return f"(X{self.series})^{self.length}_{self.start}"

    def __reduce__(self):
        # Positional-args pickling: far smaller and faster than the
        # default dict-state protocol. Group results cross process
        # boundaries by the million in the sharded build.
        return (SubsequenceId, (self.series, self.start, self.length))

    @property
    def stop(self) -> int:
        """Exclusive end offset within the parent series."""
        return self.start + self.length


def _permanently_immutable(array: np.ndarray) -> bool:
    """Whether the array's buffer can *never* be written through NumPy.

    ``flags.writeable is False`` alone is not enough: the owner of a
    plain ndarray may flip the flag back on, and a read-only view's
    writable base stays mutable. The one buffer NumPy cannot re-enable
    writes on is a read-mode memory map, so alias only when every
    ndarray down the base chain is non-writeable and the chain
    terminates in a non-writeable ``np.memmap`` (e.g. slices of a v3
    index load). Everything else gets the defensive copy.
    """
    node = array
    terminal_is_memmap = False
    while isinstance(node, np.ndarray):
        if node.flags.writeable:
            # Covers r+/w+ memmaps anywhere up the chain too.
            return False
        terminal_is_memmap = isinstance(node, np.memmap)
        node = node.base
    return terminal_is_memmap


class TimeSeries:
    """An immutable, named 1-D sequence of real values.

    Parameters
    ----------
    values:
        Anything convertible to a 1-D float array; validated on entry.
    name:
        Optional human-readable label (ticker, patient id, ...).
    label:
        Optional class label (UCR datasets carry one per series).
    """

    __slots__ = ("_values", "name", "label")

    def __init__(self, values: Any, name: str = "", label: int | None = None) -> None:
        array = as_float_array(values, name="time series values")
        if _permanently_immutable(array):
            # Read-mode memmap slices (a v3 index load) are aliased
            # as-is: nothing can mutate them, and copying would defeat
            # the O(manifest) load contract.
            self._values = array
        else:
            # Copy before freezing: np.asarray may share the caller's
            # buffer (and a read-only *view* of a writable base can
            # still change under the caller's writes); setflags would
            # otherwise make the *caller's* array read-only.
            array = array.copy()
            array.setflags(write=False)
            self._values = array
        self.name = str(name)
        self.label = label

    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``float64`` array."""
        return self._values

    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index: int | slice) -> float | np.ndarray:
        return self._values[index]

    def __repr__(self) -> str:
        label = f", label={self.label}" if self.label is not None else ""
        name = f" {self.name!r}" if self.name else ""
        return f"<TimeSeries{name} n={len(self)}{label}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            len(self) == len(other)
            and bool(np.array_equal(self._values, other._values))
            and self.name == other.name
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.name, self.label, self._values.tobytes()))

    def subsequence(self, start: int, length: int) -> np.ndarray:
        """Return the values of subsequence ``(X)^length_start``.

        Raises :class:`~repro.exceptions.DataError` when the requested
        window does not fit inside the series.
        """
        if length < 1:
            raise DataError(f"subsequence length must be >= 1, got {length}")
        if start < 0 or start + length > len(self):
            raise DataError(
                f"subsequence [{start}, {start + length}) out of bounds "
                f"for series of length {len(self)}"
            )
        return self._values[start : start + length]

    def n_subsequences(self, length: int, start_step: int = 1) -> int:
        """Number of subsequences of ``length`` with the given start stride."""
        if length > len(self):
            return 0
        n_starts = len(self) - length + 1
        return (n_starts + start_step - 1) // start_step

    def with_values(self, values: Any) -> "TimeSeries":
        """Return a copy carrying new values but the same name/label."""
        return TimeSeries(values, name=self.name, label=self.label)
