"""File discovery, rule execution, suppression handling, reporting.

:func:`run_lint` is the library entry point (the CLI and the tests call
it); :func:`main` is the process entry point shared by ``onex lint``
and ``python -m repro.analysis``. The run is two-phase: every file is
parsed first, per-module rules stream over the modules, then the
project rules (the interprocedural families, DESIGN.md §14) run once
over the assembled :class:`~repro.analysis.registry.Project` with its
call graph. Exit-code contract, pinned by ``tests/test_analysis_cli.py``:

* ``0`` — no *new* diagnostics (suppressed and baselined findings are
  counted and reported, but don't fail the build);
* ``1`` — at least one non-baselined diagnostic;
* ``2`` — usage error (unknown path, unknown rule code, malformed
  baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    discover_baseline,
    load_baseline,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    ALL_TREES,
    Project,
    ProjectRule,
    Rule,
    all_rules,
    register_rule,
)
from repro.analysis.sarif import report_to_sarif
from repro.analysis.source import iter_python_files, parse_module

#: Engine-level code for files the parser rejects.
PARSE_FAILURE_CODE = "ONEX900"

#: The JSON report format version (checked by scripts/check_lint_report.py).
REPORT_VERSION = 2


@register_rule
class ParseFailure(Rule):
    """Catalog entry for ``ONEX900`` (emitted by the engine itself)."""

    code = PARSE_FAILURE_CODE
    name = "parse-failure"
    rationale = (
        "a file the checker cannot parse is a file no invariant is "
        "enforced on; fix the syntax error first"
    )
    trees = ALL_TREES

    def check(self, module):  # pragma: no cover - engine emits directly
        return ()


@dataclass
class LintReport:
    """Outcome of one lint run, JSON-serializable for the CI artifact."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    #: Findings matched by the baseline: reported, never build-failing.
    baselined: list[Diagnostic] = field(default_factory=list)
    #: The baseline entries in force (for the SARIF justifications).
    baseline_entries: list[BaselineEntry] = field(default_factory=list)
    #: Baseline entries that matched nothing — fixed findings whose
    #: entries should now be deleted.
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "files_checked": self.files_checked,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "baselined": [d.to_dict() for d in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "rules": {
                code: {"name": rule.name, "rationale": rule.rationale}
                for code, rule in all_rules().items()
            },
        }


def run_lint(
    paths: list[Path] | list[str],
    select: set[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run every registered rule over the Python files under ``paths``.

    ``select`` restricts reporting to the given codes (``ONEX900``
    parse failures always report: an unparsable file can't be checked
    for *any* invariant). Suppressed diagnostics land in
    ``report.suppressed``; baseline-matched ones in ``report.baselined``
    — neither vanishes.
    """
    rules = [rule_class() for rule_class in all_rules().values()]
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    report = LintReport()
    raw: list[Diagnostic] = []

    project = Project()
    for file_path in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        try:
            module = parse_module(file_path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            raw.append(
                Diagnostic(
                    path=str(file_path),
                    line=int(line),
                    col=0,
                    code=PARSE_FAILURE_CODE,
                    message=f"cannot parse file: {exc}",
                )
            )
            continue
        project.modules.append(module)

    by_path = {module.display_path: module for module in project.modules}

    def admit(diagnostic: Diagnostic) -> None:
        if (
            select is not None
            and diagnostic.code not in select
            and diagnostic.code != PARSE_FAILURE_CODE
        ):
            return
        module = by_path.get(diagnostic.path)
        if module is not None and module.suppressed(
            diagnostic.line, diagnostic.code
        ):
            report.suppressed.append(diagnostic)
        else:
            raw.append(diagnostic)

    for module in project.modules:
        for rule in module_rules:
            if not rule.applies_to(module):
                continue
            for diagnostic in rule.check(module):
                admit(diagnostic)
    for rule in project_rules:
        for diagnostic in rule.check_project(project):
            admit(diagnostic)

    if baseline is None:
        baseline = Baseline.empty()
    new, baselined, stale = baseline.partition(raw)
    report.diagnostics = sorted(new)
    report.baselined = sorted(baselined)
    report.baseline_entries = list(baseline.entries)
    report.stale_baseline = stale
    report.suppressed.sort()
    return report


def _default_paths() -> list[Path]:
    """The repro package plus the repo's sibling trees, when present.

    Installed as a package there is only ``src``; in a checkout the
    engine sits at ``src/repro/analysis/engine.py``, so the repo root is
    three levels up and ``tests`` / ``benchmarks`` / ``scripts`` join
    the default scan (per-tree rule scoping keeps e.g. the determinism
    family src-only there).
    """
    package_dir = Path(__file__).resolve().parents[1]
    paths = [package_dir]
    repo_root = package_dir.parents[1]
    if (repo_root / "src" / "repro").is_dir():
        for tree in ("tests", "benchmarks", "scripts"):
            candidate = repo_root / tree
            if candidate.is_dir():
                paths.append(candidate)
    return paths


def main(argv: list[str] | None = None, stdout: IO[str] | None = None) -> int:
    """Entry point behind ``onex lint`` and ``python -m repro.analysis``."""
    out = sys.stdout if stdout is None else stdout
    parser = argparse.ArgumentParser(
        prog="onex lint",
        description=(
            "AST-based invariant checker: kernel numeric purity "
            "(ONEX1xx), backend dispatch (ONEX2xx), lockset races "
            "(ONEX3xx), persistence atomicity (ONEX4xx), async safety "
            "(ONEX5xx), determinism (ONEX6xx), resource lifecycle "
            "(ONEX7xx). See DESIGN.md §11 and §14."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to check (default: the repro package "
            "plus the repo's tests/, benchmarks/ and scripts/ trees)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to report (default: all)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        dest="json_path",
        help="also write the machine-readable report to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        dest="sarif_path",
        help="also write a SARIF 2.1.0 log to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        dest="baseline_path",
        help=(
            "baseline of grandfathered findings (default: the nearest "
            "lint-baseline.json at or above the working directory)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding fails the build",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in all_rules().items():
            print(f"{code} {rule.name}: {rule.rationale}", file=out)
        return 0

    select: set[str] | None = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        known = set(all_rules())
        unknown = select - known
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline_path)
            if args.baseline_path
            else discover_baseline(Path.cwd())
        )
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    report = run_lint(paths, select=select, baseline=baseline)
    for diagnostic in report.diagnostics:
        print(diagnostic.render(), file=out)
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.diagnostics)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    print(summary, file=out)
    for entry in report.stale_baseline:
        print(
            f"warning: stale baseline entry {entry.code} {entry.path} "
            "matched nothing — delete it",
            file=out,
        )

    if args.json_path:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload, file=out)
        else:
            Path(args.json_path).write_text(payload + "\n", encoding="utf-8")
    if args.sarif_path:
        payload = json.dumps(
            report_to_sarif(report), indent=2, sort_keys=True
        )
        if args.sarif_path == "-":
            print(payload, file=out)
        else:
            Path(args.sarif_path).write_text(
                payload + "\n", encoding="utf-8"
            )
    return report.exit_code
