"""File discovery, rule execution, suppression handling, reporting.

:func:`run_lint` is the library entry point (the CLI and the tests call
it); :func:`main` is the process entry point shared by ``onex lint``
and ``python -m repro.analysis``. Exit-code contract, pinned by
``tests/test_analysis_cli.py``:

* ``0`` — no diagnostics (suppressed findings don't fail the build,
  but they are counted and reported);
* ``1`` — at least one diagnostic;
* ``2`` — usage error (unknown path, unknown rule code).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, all_rules, register_rule
from repro.analysis.source import iter_python_files, parse_module

#: Engine-level code for files the parser rejects.
PARSE_FAILURE_CODE = "ONEX900"


@register_rule
class ParseFailure(Rule):
    """Catalog entry for ``ONEX900`` (emitted by the engine itself)."""

    code = PARSE_FAILURE_CODE
    name = "parse-failure"
    rationale = (
        "a file the checker cannot parse is a file no invariant is "
        "enforced on; fix the syntax error first"
    )

    def check(self, module):  # pragma: no cover - engine emits directly
        return ()


@dataclass
class LintReport:
    """Outcome of one lint run, JSON-serializable for the CI artifact."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "rules": {
                code: {"name": rule.name, "rationale": rule.rationale}
                for code, rule in all_rules().items()
            },
        }


def run_lint(
    paths: list[Path] | list[str],
    select: set[str] | None = None,
) -> LintReport:
    """Run every registered rule over the Python files under ``paths``.

    ``select`` restricts reporting to the given codes (``ONEX900``
    parse failures always report: an unparsable file can't be checked
    for *any* invariant). Suppressed diagnostics land in
    ``report.suppressed`` rather than vanishing.
    """
    rules = [rule_class() for rule_class in all_rules().values()]
    report = LintReport()
    for file_path in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        try:
            module = parse_module(file_path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            report.diagnostics.append(
                Diagnostic(
                    path=str(file_path),
                    line=int(line),
                    col=0,
                    code=PARSE_FAILURE_CODE,
                    message=f"cannot parse file: {exc}",
                )
            )
            continue
        for rule in rules:
            for diagnostic in rule.check(module):
                if (
                    select is not None
                    and diagnostic.code not in select
                    and diagnostic.code != PARSE_FAILURE_CODE
                ):
                    continue
                if module.suppressed(diagnostic.line, diagnostic.code):
                    report.suppressed.append(diagnostic)
                else:
                    report.diagnostics.append(diagnostic)
    report.diagnostics.sort()
    report.suppressed.sort()
    return report


def _default_paths() -> list[Path]:
    """Scan the installed ``repro`` package tree by default."""
    return [Path(__file__).resolve().parents[1]]


def main(argv: list[str] | None = None, stdout: IO[str] | None = None) -> int:
    """Entry point behind ``onex lint`` and ``python -m repro.analysis``."""
    out = sys.stdout if stdout is None else stdout
    parser = argparse.ArgumentParser(
        prog="onex lint",
        description=(
            "AST-based invariant checker: kernel numeric purity "
            "(ONEX1xx), backend dispatch (ONEX2xx), lockset races "
            "(ONEX3xx), persistence atomicity (ONEX4xx). See "
            "DESIGN.md §11."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to report (default: all)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        dest="json_path",
        help="also write the machine-readable report to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in all_rules().items():
            print(f"{code} {rule.name}: {rule.rationale}", file=out)
        return 0

    select: set[str] | None = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        known = set(all_rules())
        unknown = select - known
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    report = run_lint(paths, select=select)
    for diagnostic in report.diagnostics:
        print(diagnostic.render(), file=out)
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.diagnostics)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    print(summary, file=out)

    if args.json_path:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload, file=out)
        else:
            Path(args.json_path).write_text(payload + "\n", encoding="utf-8")
    return report.exit_code
