"""The project-wide call-graph engine behind the interprocedural rules.

The per-module rule families (ONEX1xx/2xx/4xx) see one file at a time;
the concurrency and determinism invariants they cannot check are
*reachability* properties: a blocking call three helpers below an
``async def``, a guarded attribute touched by a helper whose lock
arrives two call frames up. This module builds one graph over every
parsed module of a lint run and gives rules the pieces they need:

* **Function index.** Every module-level function, class method, and
  named nested function becomes a :class:`FunctionInfo` keyed by a
  stable qualname (``repro.serve.cluster.router::WorkerHandle.start``).
* **Edge resolution.** Call sites resolve through four mechanisms:
  bare names (module functions, ``from``-imports, enclosing-scope
  nested functions — local definitions shadow imports, as at runtime),
  ``self.method()`` (same class first, then single-level bases named in
  the same module), dotted module access (``server.respond`` through an
  import alias), and ``Class.method`` chains. Unresolvable calls are
  kept as :class:`ExternalCall` records — the async-safety rules match
  their dotted names against blocking-API tables.
* **Call-site context.** Every edge and external call carries the
  lexically held ``with self.<lock>:`` set at the call site, so the
  lockset detector can run a fixed-point dataflow over the graph
  instead of the one-level caller scan it shipped with (DESIGN.md §14).

The graph is deliberately name-based and intra-project: no type
inference, no attribute tracking through containers (``self.jobs.x()``
stays external). That keeps resolution sound-for-what-it-resolves —
an edge in the graph is a call that can happen — while unresolved
calls stay visible to rules that want them.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.analysis.astutil import decorator_base_name, dotted_name
from repro.analysis.source import SourceModule

#: Methods where the instance is assumed not yet shared across threads.
CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def module_key(module: SourceModule) -> str:
    """Stable dotted key for one module (import-name when in-package).

    ``repro/serve/cluster/router.py`` keys as
    ``repro.serve.cluster.router`` so ``import``-statement resolution is
    a string match; files outside a ``repro`` package key by path.
    """
    if module.logical_parts:
        parts = list(module.logical_parts)
        last = parts[-1]
        if last == "__init__.py":
            parts = parts[:-1]
        elif last.endswith(".py"):
            parts[-1] = last[:-3]
        return ".".join(["repro", *parts])
    return module.display_path


@dataclass
class FunctionInfo:
    """One function/method in the project index."""

    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing class name for methods, else ``None``.
    class_name: str | None
    #: ``Class.method`` / ``func`` / ``outer.<locals>.inner``.
    local_name: str
    is_async: bool
    decorators: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_constructor(self) -> bool:
        return self.class_name is not None and self.name in CONSTRUCTORS


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: caller qualname -> callee qualname."""

    caller: str
    callee: str
    node: ast.Call
    #: ``with self.<name>:`` attributes lexically held at the site.
    held_locks: frozenset[str]


@dataclass(frozen=True)
class ExternalCall:
    """One unresolved call site, kept for name-table rules."""

    caller: str
    node: ast.Call
    #: Dotted callee name (``time.sleep``, ``self.jobs.submit``) or
    #: ``<attr>.name`` for calls on arbitrary expressions.
    name: str
    held_locks: frozenset[str]


@dataclass
class CallGraph:
    """The resolved project graph plus its unresolved remainder."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: list[CallEdge] = field(default_factory=list)
    external_calls: dict[str, list[ExternalCall]] = field(
        default_factory=dict
    )
    _out: dict[str, list[CallEdge]] = field(default_factory=dict)
    _in: dict[str, list[CallEdge]] = field(default_factory=dict)

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    def callees(self, qualname: str) -> list[CallEdge]:
        """Outgoing resolved edges of one function."""
        return self._out.get(qualname, [])

    def callers(self, qualname: str) -> list[CallEdge]:
        """Incoming resolved edges of one function."""
        return self._in.get(qualname, [])

    def externals(self, qualname: str) -> list[ExternalCall]:
        """Unresolved call sites inside one function."""
        return self.external_calls.get(qualname, [])

    def functions_of(self, module: SourceModule) -> list[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if info.module is module
        ]

    def reachable_from(
        self,
        starts: Iterable[str],
        follow: Callable[[CallEdge], bool] | None = None,
    ) -> set[str]:
        """Every function reachable from ``starts`` along resolved edges.

        ``follow`` filters edges (return ``False`` to prune); cycles are
        handled by the visited set. The result includes the starts.
        """
        seen: set[str] = set()
        work = deque(starts)
        while work:
            current = work.popleft()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.callees(current):
                if follow is not None and not follow(edge):
                    continue
                if edge.callee not in seen:
                    work.append(edge.callee)
        return seen


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
@dataclass
class _ModuleScope:
    """Name-resolution tables for one module."""

    key: str
    #: Bare name -> qualname of a module-level function.
    functions: dict[str, str] = field(default_factory=dict)
    #: Class name -> {method name -> qualname}.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Class name -> base-class names (as written).
    bases: dict[str, list[str]] = field(default_factory=dict)
    #: Local alias -> imported module key (``srv`` -> ``repro.serve.server``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: Local alias -> (module key, symbol) for ``from m import symbol``.
    symbol_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)


def _collect_imports(module: SourceModule, scope: _ModuleScope) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not alias.name.startswith("repro"):
                    continue
                if alias.asname is not None:
                    scope.module_aliases[alias.asname] = alias.name
                else:
                    # `import repro.serve.server` binds `repro`; dotted
                    # lookups walk the full name from that root.
                    scope.module_aliases.setdefault("repro", "repro")
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if node.level or not source.startswith("repro"):
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                # The imported symbol may itself be a module
                # (`from repro.serve import server`); record both
                # readings and let resolution try function-first.
                scope.symbol_aliases[bound] = (source, alias.name)
                scope.module_aliases.setdefault(
                    bound, f"{source}.{alias.name}"
                )


class _FunctionIndexer:
    """First pass: index every function of one module."""

    def __init__(self, module: SourceModule, graph: CallGraph) -> None:
        self.module = module
        self.graph = graph
        self.scope = _ModuleScope(key=module_key(module))

    def run(self) -> _ModuleScope:
        _collect_imports(self.module, self.scope)
        for statement in self.module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(statement, class_name=None, prefix="")
            elif isinstance(statement, ast.ClassDef):
                self._index_class(statement)
        return self.scope

    def _index_class(self, class_node: ast.ClassDef) -> None:
        methods: dict[str, str] = {}
        self.scope.classes[class_node.name] = methods
        self.scope.bases[class_node.name] = [
            name
            for base in class_node.bases
            if (name := dotted_name(base)) is not None
        ]
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._index_function(
                    statement,
                    class_name=class_node.name,
                    prefix=f"{class_node.name}.",
                )
                methods[statement.name] = info.qualname

    def _index_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        prefix: str,
    ) -> FunctionInfo:
        local_name = prefix + node.name
        qualname = f"{self.scope.key}::{local_name}"
        info = FunctionInfo(
            qualname=qualname,
            module=self.module,
            node=node,
            class_name=class_name,
            local_name=local_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            decorators=tuple(
                name
                for decorator in node.decorator_list
                if (name := decorator_base_name(decorator)) is not None
            ),
        )
        self.graph.functions[qualname] = info
        if class_name is None and prefix == "":
            self.scope.functions[node.name] = qualname
        return info


class _BodyWalker(ast.NodeVisitor):
    """Second pass: resolve the call sites of one function body.

    Tracks the lexically held ``with self.<attr>:`` set, attributes
    nested named functions to their own graph nodes, and resolves bare
    names through locals-first scoping (a nested ``def`` shadows a
    module function or import of the same name, as at runtime).
    """

    def __init__(
        self,
        graph: CallGraph,
        scope: _ModuleScope,
        info: FunctionInfo,
        local_functions: dict[str, str],
    ) -> None:
        self.graph = graph
        self.scope = scope
        self.info = info
        self.local_functions = local_functions
        self.held: tuple[str, ...] = ()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered = [
            item.context_expr.attr
            for item in node.items
            if isinstance(item.context_expr, ast.Attribute)
            and isinstance(item.context_expr.value, ast.Name)
            and item.context_expr.value.id == "self"
        ]
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held = self.held + tuple(entered)
        for statement in node.body:
            self.visit(statement)
        self.held = self.held[: len(self.held) - len(entered)]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_nested(node)

    def _walk_nested(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Index a nested function and walk it as its own graph node."""
        local_name = f"{self.info.local_name}.<locals>.{node.name}"
        qualname = f"{module_key(self.info.module)}::{local_name}"
        nested = FunctionInfo(
            qualname=qualname,
            module=self.info.module,
            node=node,
            class_name=self.info.class_name,
            local_name=local_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            decorators=tuple(
                name
                for decorator in node.decorator_list
                if (name := decorator_base_name(decorator)) is not None
            ),
        )
        self.graph.functions[qualname] = nested
        self.local_functions[node.name] = qualname
        walker = _BodyWalker(
            self.graph, self.scope, nested, dict(self.local_functions)
        )
        for statement in node.body:
            walker.visit(statement)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = self._resolve(node)
        held = frozenset(self.held)
        if callee is not None:
            self.graph.add_edge(
                CallEdge(
                    caller=self.info.qualname,
                    callee=callee,
                    node=node,
                    held_locks=held,
                )
            )
        else:
            name = dotted_name(node.func)
            if name is None and isinstance(node.func, ast.Attribute):
                name = f"<expr>.{node.func.attr}"
            if name is not None:
                self.graph.external_calls.setdefault(
                    self.info.qualname, []
                ).append(
                    ExternalCall(
                        caller=self.info.qualname,
                        node=node,
                        name=name,
                        held_locks=held,
                    )
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def _resolve(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id)
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.info.class_name is not None
            ):
                return self._resolve_method(
                    self.info.class_name, func.attr, depth=0
                )
            dotted = dotted_name(func)
            if dotted is not None:
                return self._resolve_dotted(dotted)
        return None

    def _resolve_bare(self, name: str) -> str | None:
        # Locals (nested defs) shadow module functions shadow imports —
        # the same order the interpreter applies.
        if name in self.local_functions:
            return self.local_functions[name]
        if name in self.scope.functions:
            return self.scope.functions[name]
        if name in self.scope.symbol_aliases:
            source, symbol = self.scope.symbol_aliases[name]
            return self._lookup(source, symbol)
        return None

    def _resolve_method(
        self, class_name: str, method: str, depth: int
    ) -> str | None:
        methods = self.scope.classes.get(class_name)
        if methods and method in methods:
            return methods[method]
        if depth >= 4:  # inheritance chains deeper than this are noise
            return None
        for base in self.scope.bases.get(class_name, []):
            found = self._resolve_method(base, method, depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        if not rest:
            return None
        # `Class.method(...)` on a same-module class (static/classmethod).
        class_methods = self.scope.classes.get(head)
        if class_methods is not None and "." not in rest:
            return class_methods.get(rest)
        source = self.scope.module_aliases.get(head)
        if source is None:
            return None
        # Walk the remaining parts: the longest prefix that is a known
        # module wins, the remainder must name a function/Class.method.
        parts = rest.split(".")
        for split in range(len(parts) - 1, -1, -1):
            candidate_module = ".".join([source, *parts[:split]])
            remainder = ".".join(parts[split:])
            found = self._lookup(candidate_module, remainder)
            if found is not None:
                return found
        return None

    def _lookup(self, module: str, symbol: str) -> str | None:
        qualname = f"{module}::{symbol}"
        if qualname in self.graph.functions:
            return qualname
        return None


def build_call_graph(modules: Iterable[SourceModule]) -> CallGraph:
    """Index every module, then resolve every call site."""
    graph = CallGraph()
    scopes: list[tuple[SourceModule, _ModuleScope]] = []
    for module in modules:
        indexer = _FunctionIndexer(module, graph)
        scopes.append((module, indexer.run()))
    for module, scope in scopes:
        for info in [
            candidate
            for candidate in graph.functions.values()
            if candidate.module is module and "<locals>" not in candidate.qualname
        ]:
            walker = _BodyWalker(graph, scope, info, {})
            for statement in info.node.body:
                walker.visit(statement)
    return graph
