"""SARIF 2.1.0 output for the lint report.

SARIF (Static Analysis Results Interchange Format, OASIS) is the
interchange format code-scanning UIs ingest — GitHub's security tab,
VS Code's SARIF viewer, etc. The mapping here is deliberately small and
spec-shaped (``tests/test_analysis_cli.py`` validates it against a
vendored subset of the 2.1.0 schema):

* every registered rule becomes a ``tool.driver.rules`` descriptor
  (``id`` = the ONEX code, rationale as ``fullDescription``);
* live diagnostics become ``results`` at level ``error``;
* in-source suppressions (``# onex: ignore[...]``) become results with
  a ``suppressions: [{"kind": "inSource"}]`` block;
* baselined findings become results with an ``"external"`` suppression
  carrying the written justification — visible to the viewer, not
  failing the run, exactly mirroring the JSON report's semantics.

Paths are emitted as forward-slash relative URIs when the file sits
under the current working directory, else as absolute ``file://`` URIs.
"""

from __future__ import annotations

from pathlib import Path, PurePosixPath

from repro.analysis.diagnostics import Diagnostic

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/onex/onex#static-analysis"


def _artifact_uri(path: str) -> str:
    """Relative forward-slash URI when possible, else ``file://``."""
    candidate = Path(path)
    try:
        relative = candidate.resolve().relative_to(Path.cwd().resolve())
        return str(PurePosixPath(*relative.parts))
    except ValueError:
        return candidate.resolve().as_uri()


def _result(
    diagnostic: Diagnostic, suppression: dict | None = None
) -> dict:
    result = {
        "ruleId": diagnostic.code,
        "level": "error",
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(diagnostic.path)
                    },
                    "region": {
                        "startLine": max(1, diagnostic.line),
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ],
    }
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def report_to_sarif(report) -> dict:
    """One :class:`~repro.analysis.engine.LintReport` as a SARIF log."""
    from repro.analysis.registry import all_rules

    rules = [
        {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for code, rule in all_rules().items()
    ]
    results = [_result(d) for d in report.diagnostics]
    results += [
        _result(d, suppression={"kind": "inSource"})
        for d in report.suppressed
    ]
    justifications = {
        (entry.code, entry.path): entry.justification
        for entry in getattr(report, "baseline_entries", [])
    }
    for diagnostic in report.baselined:
        suppression: dict = {"kind": "external"}
        for (code, path), justification in justifications.items():
            if code == diagnostic.code and diagnostic.path.replace(
                "\\", "/"
            ).endswith(path.replace("\\", "/")):
                suppression["justification"] = justification
                break
        results.append(_result(diagnostic, suppression=suppression))
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "onex-lint",
                        "informationUri": _INFO_URI,
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
