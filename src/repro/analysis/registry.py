"""The lint rule registry: one code, one rule, one registration point.

Mirrors the kernel-backend registry's shape (DESIGN.md §10): rules are
small classes registered under a stable code via :func:`register_rule`;
the engine iterates :func:`all_rules` so adding a rule family is one
module import away. Codes are grouped by family:

* ``ONEX1xx`` — kernel numeric purity;
* ``ONEX2xx`` — backend-dispatch enforcement;
* ``ONEX3xx`` — lockset race detection;
* ``ONEX4xx`` — persistence atomicity;
* ``ONEX9xx`` — engine-level findings (parse failures).
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import SourceModule

_CODE_RE = re.compile(r"^ONEX\d{3}$")


class Rule:
    """Base class: one invariant checked over one parsed module.

    Subclasses set ``code`` / ``name`` / ``rationale`` and implement
    :meth:`check`, yielding :class:`Diagnostic` instances. Rules are
    stateless across files — the engine instantiates each once per run
    and calls ``check`` per module.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: SourceModule, node, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` for this rule anchored at ``node``."""
        return Diagnostic(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_RULES: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (code must be new)."""
    code = rule_class.code
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code must match ONEX###, got {code!r}")
    if code in _RULES and _RULES[code] is not rule_class:
        raise ValueError(f"duplicate rule code {code}")
    _RULES[code] = rule_class
    return rule_class


def get_rule(code: str) -> type[Rule]:
    _ensure_loaded()
    try:
        return _RULES[code]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule code {code!r}; known: {known}") from None


def all_rules() -> dict[str, type[Rule]]:
    """Every registered rule, keyed by code, ascending."""
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def _ensure_loaded() -> None:
    # Importing the rules package runs every @register_rule decorator;
    # done lazily so registry/diagnostics stay import-cycle-free.
    from repro.analysis import rules  # noqa: F401
