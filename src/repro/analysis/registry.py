"""The lint rule registry: one code, one rule, one registration point.

Mirrors the kernel-backend registry's shape (DESIGN.md §10): rules are
small classes registered under a stable code via :func:`register_rule`;
the engine iterates :func:`all_rules` so adding a rule family is one
module import away. Codes are grouped by family:

* ``ONEX1xx`` — kernel numeric purity;
* ``ONEX2xx`` — backend-dispatch enforcement;
* ``ONEX3xx`` — lockset race detection (interprocedural);
* ``ONEX4xx`` — persistence atomicity;
* ``ONEX5xx`` — async safety (interprocedural);
* ``ONEX6xx`` — determinism (the bit-identity contract as a lint);
* ``ONEX7xx`` — resource lifecycle;
* ``ONEX9xx`` — engine-level findings (parse failures).

Two rule kinds share the registry: plain :class:`Rule` checks one
module at a time; :class:`ProjectRule` runs once per lint run over a
:class:`Project` (every parsed module plus the call graph), which is
how the interprocedural families see across files. Every rule also
declares which source *trees* it applies to (``src`` / ``tests`` /
``benchmarks`` / ``scripts`` / ``examples``) so e.g. the determinism
family stays src-only while lifecycle checks cover the whole repo.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import SourceModule

_CODE_RE = re.compile(r"^ONEX\d{3}$")

#: ``Rule.trees`` value meaning "every tree, whatever its name".
ALL_TREES = None


@dataclass
class Project:
    """One lint run's whole-project view for :class:`ProjectRule`."""

    modules: list[SourceModule] = field(default_factory=list)
    _graph: CallGraph | None = None

    @property
    def graph(self) -> CallGraph:
        """The project call graph, built lazily on first use."""
        if self._graph is None:
            self._graph = build_call_graph(self.modules)
        return self._graph

    def modules_in_tree(self, *trees: str) -> list[SourceModule]:
        return [m for m in self.modules if m.source_tree in trees]


class Rule:
    """Base class: one invariant checked over one parsed module.

    Subclasses set ``code`` / ``name`` / ``rationale`` and implement
    :meth:`check`, yielding :class:`Diagnostic` instances. Rules are
    stateless across files — the engine instantiates each once per run
    and calls ``check`` per module. ``trees`` scopes the rule to the
    named source trees (:data:`ALL_TREES` disables tree filtering).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: Source trees the rule runs on; default: first-party ``src`` only.
    trees: frozenset[str] | None = frozenset({"src"})

    def applies_to(self, module: SourceModule) -> bool:
        return self.trees is ALL_TREES or module.source_tree in self.trees

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: SourceModule, node, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` for this rule anchored at ``node``."""
        return Diagnostic(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole project.

    The engine calls :meth:`check_project` after every module parsed;
    implementations consult ``project.graph`` for interprocedural facts
    and are responsible for their own per-module tree scoping (use
    ``self.applies_to(module)`` when iterating ``project.modules``).
    """

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        raise NotImplementedError


_RULES: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (code must be new)."""
    code = rule_class.code
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code must match ONEX###, got {code!r}")
    if code in _RULES and _RULES[code] is not rule_class:
        raise ValueError(f"duplicate rule code {code}")
    _RULES[code] = rule_class
    return rule_class


def get_rule(code: str) -> type[Rule]:
    _ensure_loaded()
    try:
        return _RULES[code]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule code {code!r}; known: {known}") from None


def all_rules() -> dict[str, type[Rule]]:
    """Every registered rule, keyed by code, ascending."""
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def _ensure_loaded() -> None:
    # Importing the rules package runs every @register_rule decorator;
    # done lazily so registry/diagnostics stay import-cycle-free.
    from repro.analysis import rules  # noqa: F401
