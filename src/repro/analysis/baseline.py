"""The grandfathered-findings baseline (``lint-baseline.json``).

New rule families land against an existing tree; the baseline is how
that happens without either breaking CI on day one or silently hiding
real findings. The contract, pinned by ``tests/test_analysis_cli.py``:

* The file is checked in at the repo root and loaded by default, so
  local ``onex lint`` and CI agree on what is grandfathered.
* Every entry **must** carry a written ``justification`` — an entry
  without one is a usage error (exit 2), not a quiet exemption.
* A baselined finding is still *reported* (in the ``baselined`` section
  of the JSON report and as a suppressed SARIF result); it just does
  not fail the build. A new finding — anything not matched — does.
* Entries match on ``(code, path)`` where ``path`` is the module's
  logical path (``serve/cluster/router.py``) or a trailing path suffix,
  never on line numbers: baselines must survive unrelated edits.
* Entries that match nothing are listed as ``stale`` so a fixed finding
  prompts deleting its baseline entry rather than leaving a loophole.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: The default baseline filename, discovered at the repo root.
BASELINE_FILENAME = "lint-baseline.json"


class BaselineError(ValueError):
    """A malformed baseline file (engine maps this to exit code 2)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    code: str
    path: str
    justification: str

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code != self.code:
            return False
        candidate = diagnostic.path.replace("\\", "/")
        wanted = self.path.replace("\\", "/")
        return candidate == wanted or candidate.endswith("/" + wanted)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The parsed baseline plus its matching bookkeeping."""

    entries: list[BaselineEntry]
    source: str | None = None

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    def partition(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic], list[BaselineEntry]]:
        """Split diagnostics into (new, baselined); also the stale entries."""
        new: list[Diagnostic] = []
        baselined: list[Diagnostic] = []
        used: set[BaselineEntry] = set()
        for diagnostic in diagnostics:
            entry = next(
                (e for e in self.entries if e.matches(diagnostic)), None
            )
            if entry is None:
                new.append(diagnostic)
            else:
                baselined.append(diagnostic)
                used.add(entry)
        stale = [entry for entry in self.entries if entry not in used]
        return new, baselined, stale


def load_baseline(path: Path) -> Baseline:
    """Parse and validate one baseline file.

    Raises :class:`BaselineError` on structural problems — including a
    missing or empty ``justification``, which is the whole point: a
    grandfathered finding without a written reason is just a hidden one.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise BaselineError(
            f"baseline {path} must be an object with \"version\": 1"
        )
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path} needs an \"entries\" list")
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(
                f"baseline {path} entry {index} must be an object"
            )
        code = raw.get("code")
        entry_path = raw.get("path")
        justification = raw.get("justification")
        if not isinstance(code, str) or not code.startswith("ONEX"):
            raise BaselineError(
                f"baseline {path} entry {index}: \"code\" must be an "
                "ONEX rule code"
            )
        if not isinstance(entry_path, str) or not entry_path:
            raise BaselineError(
                f"baseline {path} entry {index}: \"path\" is required"
            )
        if not isinstance(justification, str) or not justification.strip():
            raise BaselineError(
                f"baseline {path} entry {index} ({code} {entry_path}): "
                "every baselined finding needs a written justification"
            )
        entries.append(
            BaselineEntry(
                code=code, path=entry_path, justification=justification
            )
        )
    return Baseline(entries=entries, source=str(path))


def discover_baseline(start: Path) -> Path | None:
    """The nearest ``lint-baseline.json`` at or above ``start``."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        path = candidate / BASELINE_FILENAME
        if path.is_file():
            return path
    return None
