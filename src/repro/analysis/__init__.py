"""``onex lint`` — the repo's own AST-based invariant checker suite.

Five PRs in, the correctness story rests on invariants that prose
(DESIGN.md) and after-the-fact tests defend: kernel float64 operation
order (§10), the serving layer's locking discipline (§9), the
``KernelBackend`` registry as the only kernel entry point, and atomic
index persistence (§8). This package enforces them *at lint time* — the
"push correctness left" discipline production engines apply — with a
self-contained, stdlib-only (``ast`` + ``tokenize``) framework:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record;
* :mod:`repro.analysis.source` — parsed per-file context (AST, comment
  directives: ``# onex: ignore[...]`` and ``# guarded-by: <lock>``);
* :mod:`repro.analysis.registry` — the rule registry (code → rule),
  per-tree scoping, and the two-phase ``Rule`` / ``ProjectRule`` split;
* :mod:`repro.analysis.callgraph` — the project-wide call graph the
  interprocedural rules share (name resolution, lock-context edges,
  reachability);
* :mod:`repro.analysis.rules` — the shipped rule families: numeric
  purity (ONEX1xx), backend dispatch (ONEX2xx), interprocedural lockset
  races (ONEX3xx), persistence atomicity (ONEX4xx), async safety
  (ONEX5xx), determinism (ONEX6xx), resource lifecycle (ONEX7xx);
* :mod:`repro.analysis.baseline` — the ``lint-baseline.json``
  grandfather list (justified entries only; stale entries reported);
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 serialisation for code
  scanning upload;
* :mod:`repro.analysis.engine` — file discovery, rule execution,
  suppression/baseline handling, text/JSON/SARIF reporting;
* ``python -m repro.analysis`` / ``onex lint`` — the CI entry points
  (exit 0 on a clean tree, 1 on any non-baselined diagnostic, 2 on
  usage errors).

See DESIGN.md §11 for the rule catalog and annotation conventions and
§14 for the call-graph engine, baseline workflow, and SARIF output.
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintReport, main, run_lint
from repro.analysis.registry import all_rules, get_rule, register_rule

__all__ = [
    "Diagnostic",
    "LintReport",
    "all_rules",
    "get_rule",
    "main",
    "register_rule",
    "run_lint",
]
