"""``onex lint`` — the repo's own AST-based invariant checker suite.

Five PRs in, the correctness story rests on invariants that prose
(DESIGN.md) and after-the-fact tests defend: kernel float64 operation
order (§10), the serving layer's locking discipline (§9), the
``KernelBackend`` registry as the only kernel entry point, and atomic
index persistence (§8). This package enforces them *at lint time* — the
"push correctness left" discipline production engines apply — with a
self-contained, stdlib-only (``ast`` + ``tokenize``) framework:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record;
* :mod:`repro.analysis.source` — parsed per-file context (AST, comment
  directives: ``# onex: ignore[...]`` and ``# guarded-by: <lock>``);
* :mod:`repro.analysis.registry` — the rule registry (code → rule);
* :mod:`repro.analysis.rules` — the four shipped rule families:
  numeric purity (ONEX1xx), backend dispatch (ONEX2xx), lockset races
  (ONEX3xx), persistence atomicity (ONEX4xx);
* :mod:`repro.analysis.engine` — file discovery, rule execution,
  suppression handling, text/JSON reporting;
* ``python -m repro.analysis`` / ``onex lint`` — the CI entry points
  (exit 0 on a clean tree, 1 on any diagnostic, 2 on usage errors).

See DESIGN.md §11 for the rule catalog and annotation conventions.
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintReport, main, run_lint
from repro.analysis.registry import all_rules, get_rule, register_rule

__all__ = [
    "Diagnostic",
    "LintReport",
    "all_rules",
    "get_rule",
    "main",
    "register_rule",
    "run_lint",
]
