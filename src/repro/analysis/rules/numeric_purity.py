"""ONEX1xx — kernel numeric purity.

The repo's backbone guarantee (DESIGN.md §10) is that every kernel
backend reproduces the numpy reference's **float64 operation order
exactly**, so swapping backends never changes a distance by even one
ulp. Four things silently break that contract, each caught here:

* ``ONEX101`` — float32 (or float16) literals/dtypes anywhere under
  ``distances/``: a single low-precision cast poisons bit-identity.
* ``ONEX102`` — ``fastmath=True`` on an ``njit`` kernel: licenses the
  compiler to reassociate float arithmetic, i.e. to change the
  accumulation order the contract pins.
* ``ONEX103`` — non-allowlisted Python builtins inside ``@njit``
  bodies: ``sorted``/``any``/``round``/... either fail to compile in
  nopython mode or hide an unspecified evaluation order; kernels stick
  to the arithmetic-and-iteration allowlist.
* ``ONEX104`` — vectorized reductions (``np.sum``, ``.dot()``,
  ``np.einsum``, ...) inside ``@njit`` bodies: numpy's pairwise
  summation and numba's lowering accumulate in different orders, so a
  JIT kernel must spell reductions as explicit sequential loops that
  mirror the reference.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterable, Iterator

from repro.analysis.astutil import (
    decorator_base_name,
    dotted_name,
    is_njit_decorated,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Low-precision float spellings banned under ``distances/``.
_LOW_PRECISION_ATTRS = frozenset({"float32", "float16", "half", "single"})
_LOW_PRECISION_STRINGS = frozenset(
    {"float32", "float16", "f4", "f2", "<f4", "<f2"}
)

#: Builtins a JIT kernel may call: iteration and scalar arithmetic only.
_NJIT_BUILTIN_ALLOWLIST = frozenset(
    {"range", "len", "abs", "min", "max", "int", "float", "bool",
     "enumerate", "zip", "divmod"}
)

#: Routines whose accumulation order the compiler chooses.
_REDUCTIONS = frozenset(
    {"sum", "nansum", "dot", "vdot", "inner", "matmul", "einsum",
     "mean", "nanmean", "prod", "cumsum", "trace"}
)


def _njit_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and is_njit_decorated(node):
            yield node


def _function_body_nodes(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Every node in the body (decorators and signature excluded)."""
    for statement in func.body:
        yield from ast.walk(statement)


@register_rule
class Float32InKernels(Rule):
    code = "ONEX101"
    name = "float32-in-kernels"
    rationale = (
        "distances/ kernels are float64-only; a low-precision dtype or "
        "cast breaks cross-backend bit-identity (DESIGN.md §10)"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if not module.in_package_dir("distances"):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _LOW_PRECISION_ATTRS
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"low-precision dtype `{node.attr}` in a kernel "
                    "module; kernels are float64-only",
                )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in _LOW_PRECISION_STRINGS
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"low-precision dtype string {node.value!r} in a "
                    "kernel module; kernels are float64-only",
                )


@register_rule
class FastmathInNjit(Rule):
    code = "ONEX102"
    name = "fastmath-in-njit"
    rationale = (
        "fastmath licenses reassociation, changing the float64 "
        "accumulation order the backend bit-identity contract pins"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                if decorator_base_name(decorator) not in ("njit", "jit"):
                    continue
                for keyword in decorator.keywords:
                    if keyword.arg != "fastmath":
                        continue
                    value = keyword.value
                    if (
                        isinstance(value, ast.Constant)
                        and value.value is False
                    ):
                        continue
                    yield self.diagnostic(
                        module,
                        keyword.value,
                        f"`fastmath` on jitted kernel `{node.name}`; "
                        "reassociation breaks bit-identity with the "
                        "numpy reference",
                    )


@register_rule
class BuiltinInNjit(Rule):
    code = "ONEX103"
    name = "builtin-in-njit"
    rationale = (
        "non-allowlisted builtins in nopython kernels either fail to "
        "compile or hide an unspecified evaluation order"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        for func in _njit_functions(module.tree):
            for node in _function_body_nodes(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                ):
                    continue
                name = node.func.id
                if (
                    name in _NJIT_BUILTIN_ALLOWLIST
                    or name in _REDUCTIONS  # ONEX104's finding, not ours
                    or not hasattr(builtins, name)
                ):
                    continue
                yield self.diagnostic(
                    module,
                    node,
                    f"builtin `{name}` inside @njit kernel "
                    f"`{func.name}`; allowed builtins: "
                    + ", ".join(sorted(_NJIT_BUILTIN_ALLOWLIST)),
                )


@register_rule
class ReductionInNjit(Rule):
    code = "ONEX104"
    name = "reduction-in-njit"
    rationale = (
        "vectorized reductions accumulate in a compiler-chosen order; "
        "JIT kernels must reduce sequentially like the reference path"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        for func in _njit_functions(module.tree):
            for node in _function_body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                base = name.rsplit(".", 1)[-1]
                if base in _REDUCTIONS:
                    yield self.diagnostic(
                        module,
                        node,
                        f"vectorized reduction `{name}` inside @njit "
                        f"kernel `{func.name}`; accumulation order is "
                        "unspecified — write the sequential loop the "
                        "reference path uses",
                    )
