"""ONEX5xx — async-safety rules for the serving tier.

The cluster router (DESIGN.md §13) is a single-threaded asyncio loop:
one blocking call anywhere in a coroutine's call tree stalls every
in-flight query behind it. That property is *reachability*, not
lexical — ``time.sleep`` three sync helpers below an ``async def`` is
exactly as fatal as one written inline — so ONEX501 walks the project
call graph (DESIGN.md §14) from every coroutine in ``serve/`` and
matches the unresolved call sites of everything reachable against a
table of known blocking APIs. ONEX502 is the dual hazard: ``await``
while holding a *threading* lock parks the coroutine mid-critical-
section, blocking every thread contending for the lock for as long as
the awaited IO takes (and deadlocking outright if the awaited work
needs the lock). ``asyncio`` locks are exempt — suspending while
holding one is their intended use.

The sanctioned escape hatch for blocking work is
``loop.run_in_executor(...)``: the callable is passed by reference,
never called on the loop, so the graph (correctly) draws no edge into
it and the rule stays quiet.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator

from repro.analysis.astutil import call_name, is_self_attribute
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Project, ProjectRule, Rule, register_rule
from repro.analysis.source import SourceModule

#: Dotted names of APIs that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Receiver-name fragments that make a ``.join()`` call read as
#: thread/process lifecycle (``worker.join()``) rather than ``str.join``
#: or ``os.path.join``.
_JOIN_RECEIVER_HINTS = ("thread", "worker", "proc")


def _blocking_reason(name: str) -> str | None:
    """Why a dotted external-call name is considered blocking."""
    if name in BLOCKING_CALLS:
        return f"`{name}` blocks the event loop"
    if "." not in name:
        return None
    method = name.rsplit(".", 1)[-1]
    if method == "result":
        return (
            f"`{name}` blocks the event loop "
            "(`.result()` waits synchronously; await the future instead)"
        )
    receiver = name.rsplit(".", 2)[-2].lower()
    if method == "join" and any(
        hint in receiver for hint in _JOIN_RECEIVER_HINTS
    ):
        return (
            f"`{name}` blocks the event loop "
            "(`.join()` waits for the thread synchronously)"
        )
    return None


@register_rule
class BlockingCallInCoroutine(ProjectRule):
    code = "ONEX501"
    name = "blocking-call-in-coroutine"
    rationale = (
        "the router is one asyncio loop: a blocking call anywhere in a "
        "coroutine's call tree (time.sleep, subprocess, sync IO, "
        "Future.result, Thread.join) stalls every in-flight query; "
        "push it through loop.run_in_executor instead (DESIGN.md §13)"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project.graph
        starts = [
            info.qualname
            for info in graph.functions.values()
            if info.is_async
            and self.applies_to(info.module)
            and info.module.in_package_dir("serve")
        ]
        if not starts:
            return
        # One BFS over resolved edges, remembering which coroutine first
        # reached each function so the finding can name its entry point.
        entry: dict[str, str] = {}
        work = deque((start, start) for start in starts)
        while work:
            current, via = work.popleft()
            if current in entry:
                continue
            entry[current] = via
            for edge in graph.callees(current):
                if edge.callee not in entry:
                    work.append((edge.callee, via))

        seen_sites: set[tuple[str, int, int]] = set()
        for qualname in entry:
            info = graph.functions.get(qualname)
            if info is None:
                continue
            for external in graph.externals(qualname):
                reason = _blocking_reason(external.name)
                if reason is None:
                    continue
                site = (
                    info.module.display_path,
                    external.node.lineno,
                    external.node.col_offset,
                )
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                origin = graph.functions[entry[qualname]]
                suffix = (
                    ""
                    if qualname == origin.qualname
                    else f" (reached via `{info.local_name}`)"
                )
                yield self.diagnostic(
                    info.module,
                    external.node,
                    f"{reason}; reachable from coroutine "
                    f"`{origin.local_name}`{suffix}",
                )


def _threading_lock_attrs(class_node: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned a ``threading`` lock in the class."""
    locks: set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        name = call_name(node.value)
        if name not in {
            "threading.Lock",
            "threading.RLock",
            "Lock",
            "RLock",
        }:
            continue
        for target in node.targets:
            if is_self_attribute(target):
                locks.add(target.attr)
    return locks


class _AwaitUnderLockVisitor(ast.NodeVisitor):
    """Find ``await`` lexically inside ``with self.<threading-lock>:``."""

    def __init__(self, lock_attrs: set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.held: list[str] = []
        self.findings: list[tuple[ast.Await, str]] = []

    def visit_With(self, node: ast.With) -> None:
        entered = [
            item.context_expr.attr
            for item in node.items
            if is_self_attribute(item.context_expr)
            and item.context_expr.attr in self.lock_attrs
        ]
        self.held.extend(entered)
        self.generic_visit(node)
        del self.held[len(self.held) - len(entered) :]

    # `async with self._lock:` is an asyncio lock by construction —
    # threading locks are not async context managers.

    def visit_Await(self, node: ast.Await) -> None:
        if self.held:
            self.findings.append((node, self.held[-1]))
        self.generic_visit(node)

    def _skip_nested(self, node: ast.AST) -> None:
        # A nested def's body runs later, outside this lock scope.
        return

    visit_FunctionDef = _skip_nested
    visit_AsyncFunctionDef = _skip_nested
    visit_Lambda = _skip_nested


@register_rule
class AwaitUnderThreadingLock(Rule):
    code = "ONEX502"
    name = "await-under-threading-lock"
    rationale = (
        "awaiting while holding a threading lock parks the coroutine "
        "mid-critical-section: every thread contending for the lock "
        "blocks for the duration of the awaited IO, and if the awaited "
        "work needs the lock the loop deadlocks; use asyncio.Lock for "
        "coroutine-side exclusion (DESIGN.md §13)"
    )

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not module.in_package_dir("serve"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = _threading_lock_attrs(node)
            if not lock_attrs:
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AsyncFunctionDef):
                    continue
                visitor = _AwaitUnderLockVisitor(lock_attrs)
                for inner in statement.body:
                    visitor.visit(inner)
                for await_node, lock in visitor.findings:
                    yield Diagnostic(
                        path=module.display_path,
                        line=await_node.lineno,
                        col=await_node.col_offset,
                        code=self.code,
                        message=(
                            f"`await` while holding threading lock "
                            f"`self.{lock}` in coroutine "
                            f"`{statement.name}`; threads contending "
                            "for the lock block for the whole await"
                        ),
                    )


_WAIT_FOR_NAMES = frozenset({"asyncio.wait_for", "wait_for"})


@register_rule
class ShardRpcWithoutDeadline(Rule):
    code = "ONEX504"
    name = "shard-rpc-without-deadline"
    rationale = (
        "an unbounded shard RPC waits forever on a dropped frame, a "
        "corrupt reply, or a hung worker — the failure modes the "
        "fault-injection harness exists to produce; every "
        "`.request(...)` in the cluster tier must be bounded by "
        "`asyncio.wait_for` carrying the per-replica timeout or the "
        "request's propagated deadline budget (DESIGN.md §15)"
    )

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not module.in_package_dir("serve", "cluster"):
            return
        # A `.request(...)` call is deadline-bounded iff it is the
        # direct awaitable argument of asyncio.wait_for — collect those
        # first, then flag every other shard-RPC call site.
        bounded: set[ast.Call] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) in _WAIT_FOR_NAMES
                and node.args
                and isinstance(node.args[0], ast.Call)
            ):
                bounded.add(node.args[0])
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr != "request"
                or node in bounded
            ):
                continue
            yield Diagnostic(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                code=self.code,
                message=(
                    "shard RPC `.request(...)` is not bounded by "
                    "`asyncio.wait_for`; a dropped or corrupt reply "
                    "strands this await forever — wrap it with the "
                    "per-replica timeout or the propagated budget"
                ),
            )
