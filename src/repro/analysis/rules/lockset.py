"""ONEX3xx — the interprocedural lockset race detector.

The serving layer's concurrency story (DESIGN.md §9) is a *locking
discipline*: every piece of shared mutable state has one documented
lock, and every access happens inside a ``with self._lock:`` block.
Tests can only catch the races they provoke; this rule checks the
discipline itself, statically, per class:

1. **Declaration.** An attribute's defining assignment carries a
   ``# guarded-by: _lock`` annotation (in ``__init__`` or as a
   dataclass field). The named lock must itself be an attribute of the
   class — a typo'd lock name is ``ONEX303``.
2. **Lockset inference.** Each method is walked with the set of held
   locks (entered via ``with self.<lock>:`` blocks, including multiple
   context managers). Constructors (``__init__``/``__post_init__``/
   ``__new__``) are exempt: the object is not yet shared.
3. **Lock-context propagation.** A fixed-point dataflow over the
   project call graph (DESIGN.md §14) computes, per method and lock,
   whether *every* path to the method holds the lock — transitively:
   ``A: with lock: B()``, ``B: C()`` makes ``C`` lock-inheriting even
   though no direct caller of ``C`` takes the lock lexically. The
   one-level scan this replaces could neither exempt that chain nor
   flag its dual.
4. **Verdict.** A read or write of a guarded attribute outside its
   lock is ``ONEX301`` — unless the method is always reached with the
   lock held. A helper reachable both *with* and *without* the lock
   (on any call chain) yields ``ONEX302`` at each unlocked call site:
   those sites race every locked path to the same state.

Deliberate lock-free fast paths (the double-checked payload caches)
carry ``# onex: ignore[ONEX301]`` with a reason, keeping every benign
race visible and audited.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.astutil import is_self_attribute
from repro.analysis.callgraph import CONSTRUCTORS, CallEdge, module_key
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    ALL_TREES,
    Project,
    ProjectRule,
    Rule,
    register_rule,
)
from repro.analysis.source import SourceModule


@dataclass
class _Access:
    node: ast.Attribute
    attr: str
    held: frozenset[str]
    is_write: bool


@dataclass
class _MethodFacts:
    name: str
    accesses: list[_Access] = field(default_factory=list)


class _AccessVisitor(ast.NodeVisitor):
    """Walk one method body tracking the lexically held lock set."""

    def __init__(self, guarded: dict[str, str], facts: _MethodFacts) -> None:
        self.guarded = guarded
        self.facts = facts
        self.held: tuple[str, ...] = ()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered = [
            item.context_expr.attr
            for item in node.items
            if is_self_attribute(item.context_expr)
        ]
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held = self.held + tuple(entered)
        for statement in node.body:
            self.visit(statement)
        self.held = self.held[: len(self.held) - len(entered)]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if is_self_attribute(node) and node.attr in self.guarded:
            self.facts.accesses.append(
                _Access(
                    node=node,
                    attr=node.attr,
                    held=frozenset(self.held),
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)


def _statement_span(node: ast.stmt) -> range:
    return range(node.lineno, (node.end_lineno or node.lineno) + 1)


def _self_assign_targets(statement: ast.stmt) -> Iterator[str]:
    """Attribute names a statement assigns on ``self`` (or class level)."""
    if isinstance(statement, ast.AnnAssign):
        targets = [statement.target]
    elif isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, ast.AugAssign):
        targets = [statement.target]
    else:
        return
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif is_self_attribute(target):
            yield target.attr


def _class_attribute_defs(
    class_node: ast.ClassDef,
) -> Iterator[tuple[ast.stmt, str]]:
    """Every ``(statement, attribute)`` definition pair of a class."""
    for statement in class_node.body:
        for attr in _self_assign_targets(statement):
            yield statement, attr
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(statement):
                if isinstance(inner, ast.stmt):
                    for attr in _self_assign_targets(inner):
                        yield inner, attr


def _enclosing_method(local_name: str) -> str:
    """``Cache.put.<locals>.retry`` -> ``Cache.put`` (identity otherwise)."""
    return local_name.split(".<locals>.", 1)[0]


@register_rule
class LocksetRace(ProjectRule):
    code = "ONEX301"
    name = "guarded-attribute-race"
    rationale = (
        "an attribute declared `# guarded-by: <lock>` may only be "
        "touched inside `with self.<lock>:` (or from a helper every "
        "path to which holds it — propagated transitively over the "
        "call graph); anything else is a data race waiting for a "
        "scheduler (DESIGN.md §9, §14)"
    )
    #: Annotations are opt-in, so the detector covers every tree.
    trees = ALL_TREES

    #: Companion codes emitted by the same analysis.
    HELPER_CODE = "ONEX302"
    UNKNOWN_LOCK_CODE = "ONEX303"

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        for module in project.modules:
            if not module.guarded_by:
                continue
            consumed: set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(
                        project, module, node, consumed
                    )
            for line in sorted(set(module.guarded_by) - consumed):
                yield Diagnostic(
                    path=module.display_path,
                    line=line,
                    col=0,
                    code=self.UNKNOWN_LOCK_CODE,
                    message=(
                        "`# guarded-by:` annotation is not attached to a "
                        "class attribute definition"
                    ),
                )

    # ------------------------------------------------------------------
    def _check_class(
        self,
        project: Project,
        module: SourceModule,
        class_node: ast.ClassDef,
        consumed: set[int],
    ) -> Iterator[Diagnostic]:
        defs = list(_class_attribute_defs(class_node))
        known_attrs = {attr for _, attr in defs}

        guarded: dict[str, str] = {}
        declaration_line: dict[str, int] = {}
        for line, lock in module.guarded_by.items():
            for statement, attr in defs:
                if line in _statement_span(statement):
                    consumed.add(line)
                    guarded[attr] = lock
                    declaration_line[attr] = line
        if not guarded:
            return

        for attr, lock in sorted(guarded.items()):
            if lock not in known_attrs:
                yield Diagnostic(
                    path=module.display_path,
                    line=declaration_line[attr],
                    col=0,
                    code=self.UNKNOWN_LOCK_CODE,
                    message=(
                        f"`{attr}` declared guarded-by `{lock}`, but "
                        f"`{lock}` is not an attribute of class "
                        f"`{class_node.name}`"
                    ),
                )

        graph = project.graph
        key = module_key(module)
        methods: dict[str, _MethodFacts] = {}
        qualnames: dict[str, str] = {}
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _MethodFacts(statement.name)
                visitor = _AccessVisitor(guarded, facts)
                for inner in statement.body:
                    visitor.visit(inner)
                methods[statement.name] = facts
                qualnames[statement.name] = (
                    f"{key}::{class_node.name}.{statement.name}"
                )

        # Intra-class call sites per method, from the project graph.
        # A site from a nested function is charged to its enclosing
        # method so lock context flows through closures too.
        sites: dict[str, list[tuple[CallEdge, str]]] = {
            name: [] for name in methods
        }
        for name, qualname in qualnames.items():
            for edge in graph.callers(qualname):
                caller = graph.functions.get(edge.caller)
                if caller is None or caller.module is not module:
                    continue
                enclosing = _enclosing_method(caller.local_name)
                caller_method = enclosing.rsplit(".", 1)[-1]
                if caller_method not in methods:
                    continue
                sites[name].append((edge, caller_method))

        locks = sorted(set(guarded.values()))
        # Greatest-fixed-point dataflow: a method's entry is treated as
        # lock-held only while every known call path supports it.
        entry_held: dict[tuple[str, str], bool] = {
            (name, lock): bool(sites[name])
            for name in methods
            for lock in locks
        }

        def covered(edge: CallEdge, caller_method: str, lock: str) -> bool:
            return (
                lock in edge.held_locks
                or caller_method in CONSTRUCTORS
                or entry_held[(caller_method, lock)]
            )

        changed = True
        while changed:
            changed = False
            for name in methods:
                for lock in locks:
                    if not entry_held[(name, lock)]:
                        continue
                    if not all(
                        covered(edge, caller_method, lock)
                        for edge, caller_method in sites[name]
                    ):
                        entry_held[(name, lock)] = False
                        changed = True

        for name, facts in sorted(methods.items()):
            if name in CONSTRUCTORS:
                continue
            unlocked = [
                access
                for access in facts.accesses
                if guarded[access.attr] not in access.held
            ]
            if not unlocked:
                continue
            needed_locks = {guarded[access.attr] for access in unlocked}
            for lock in sorted(needed_locks):
                if entry_held[(name, lock)]:
                    # Every path to this helper holds the lock
                    # (possibly inherited across several frames).
                    continue
                uncovered = [
                    edge
                    for edge, caller_method in sites[name]
                    if not covered(edge, caller_method, lock)
                ]
                if sites[name] and len(uncovered) < len(sites[name]):
                    # Mixed reachability: the helper is lock-requiring
                    # on some chains, so the unlocked chains are the
                    # defect — flag each offending call site.
                    for edge in uncovered:
                        yield Diagnostic(
                            path=module.display_path,
                            line=edge.node.lineno,
                            col=edge.node.col_offset,
                            code=self.HELPER_CODE,
                            message=(
                                f"helper `{name}` touches state guarded "
                                f"by `self.{lock}` and relies on its "
                                "callers holding it; this call path "
                                "does not"
                            ),
                        )
                    continue
                for access in unlocked:
                    if guarded[access.attr] != lock:
                        continue
                    verb = "written" if access.is_write else "read"
                    yield Diagnostic(
                        path=module.display_path,
                        line=access.node.lineno,
                        col=access.node.col_offset,
                        code=self.code,
                        message=(
                            f"`self.{access.attr}` is guarded by "
                            f"`self.{lock}` (declared at line "
                            f"{declaration_line[access.attr]}) but is "
                            f"{verb} here without holding it"
                        ),
                    )


@register_rule
class LocksetHelperCall(Rule):
    """Catalog entry for ``ONEX302`` (emitted by the ONEX301 analysis)."""

    code = "ONEX302"
    name = "unlocked-helper-call"
    rationale = (
        "a helper reachable with the lock held on one call chain and "
        "without it on another races itself; the unlocked chain is "
        "the defect"
    )
    trees = ALL_TREES

    def check(self, module):  # pragma: no cover - ONEX301 emits this code
        return ()


@register_rule
class UnknownLockAnnotation(Rule):
    """Catalog entry for ``ONEX303`` (emitted by the ONEX301 analysis)."""

    code = "ONEX303"
    name = "bad-guarded-by-annotation"
    rationale = (
        "a guarded-by annotation naming a nonexistent lock (or attached "
        "to nothing) enforces nothing; the declaration itself must stay "
        "sound"
    )
    trees = ALL_TREES

    def check(self, module):  # pragma: no cover - ONEX301 emits this code
        return ()
