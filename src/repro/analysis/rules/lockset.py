"""ONEX3xx — the lockset race detector.

The serving layer's concurrency story (DESIGN.md §9) is a *locking
discipline*: every piece of shared mutable state has one documented
lock, and every access happens inside a ``with self._lock:`` block.
Tests can only catch the races they provoke; this rule checks the
discipline itself, statically, per class:

1. **Declaration.** An attribute's defining assignment carries a
   ``# guarded-by: _lock`` annotation (in ``__init__`` or as a
   dataclass field). The named lock must itself be an attribute of the
   class — a typo'd lock name is ``ONEX303``.
2. **Lockset inference.** Each method is walked with the set of held
   locks (entered via ``with self.<lock>:`` blocks, including multiple
   context managers). Constructors (``__init__``/``__post_init__``/
   ``__new__``) are exempt: the object is not yet shared.
3. **Verdict.** A read or write of a guarded attribute outside its
   lock is ``ONEX301`` — unless the enclosing method is a *helper*
   whose every intra-class call site holds the lock (one level of
   call-graph propagation). A helper that most callers lock but one
   does not yields ``ONEX302`` at the offending call site.

Deliberate lock-free fast paths (the double-checked payload caches)
carry ``# onex: ignore[ONEX301]`` with a reason, keeping every benign
race visible and audited.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.astutil import is_self_attribute
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Methods where the instance is assumed not yet shared across threads.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class _Access:
    node: ast.Attribute
    attr: str
    held: frozenset[str]
    is_write: bool


@dataclass
class _CallSite:
    node: ast.Call
    callee: str
    held: frozenset[str]
    in_constructor: bool


@dataclass
class _MethodFacts:
    name: str
    accesses: list[_Access] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking the lexically held lock set."""

    def __init__(self, guarded: dict[str, str], facts: _MethodFacts) -> None:
        self.guarded = guarded
        self.facts = facts
        self.held: tuple[str, ...] = ()
        self.in_constructor = facts.name in _CONSTRUCTORS

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered = [
            item.context_expr.attr
            for item in node.items
            if is_self_attribute(item.context_expr)
        ]
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held = self.held + tuple(entered)
        for statement in node.body:
            self.visit(statement)
        self.held = self.held[: len(self.held) - len(entered)]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if is_self_attribute(node) and node.attr in self.guarded:
            self.facts.accesses.append(
                _Access(
                    node=node,
                    attr=node.attr,
                    held=frozenset(self.held),
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if is_self_attribute(node.func):
            self.facts.calls.append(
                _CallSite(
                    node=node,
                    callee=node.func.attr,
                    held=frozenset(self.held),
                    in_constructor=self.in_constructor,
                )
            )
        self.generic_visit(node)


def _statement_span(node: ast.stmt) -> range:
    return range(node.lineno, (node.end_lineno or node.lineno) + 1)


def _self_assign_targets(statement: ast.stmt) -> Iterator[str]:
    """Attribute names a statement assigns on ``self`` (or class level)."""
    if isinstance(statement, ast.AnnAssign):
        targets = [statement.target]
    elif isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, ast.AugAssign):
        targets = [statement.target]
    else:
        return
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif is_self_attribute(target):
            yield target.attr


def _class_attribute_defs(
    class_node: ast.ClassDef,
) -> Iterator[tuple[ast.stmt, str]]:
    """Every ``(statement, attribute)`` definition pair of a class."""
    for statement in class_node.body:
        for attr in _self_assign_targets(statement):
            yield statement, attr
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(statement):
                if isinstance(inner, ast.stmt):
                    for attr in _self_assign_targets(inner):
                        yield inner, attr


@register_rule
class LocksetRace(Rule):
    code = "ONEX301"
    name = "guarded-attribute-race"
    rationale = (
        "an attribute declared `# guarded-by: <lock>` may only be "
        "touched inside `with self.<lock>:` (or from a helper whose "
        "every caller holds it); anything else is a data race waiting "
        "for a scheduler (DESIGN.md §9)"
    )

    #: Companion codes emitted by the same analysis.
    HELPER_CODE = "ONEX302"
    UNKNOWN_LOCK_CODE = "ONEX303"

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if not module.guarded_by:
            return
        consumed: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, consumed)
        for line in sorted(set(module.guarded_by) - consumed):
            yield Diagnostic(
                path=module.display_path,
                line=line,
                col=0,
                code=self.UNKNOWN_LOCK_CODE,
                message=(
                    "`# guarded-by:` annotation is not attached to a "
                    "class attribute definition"
                ),
            )

    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: SourceModule,
        class_node: ast.ClassDef,
        consumed: set[int],
    ) -> Iterator[Diagnostic]:
        defs = list(_class_attribute_defs(class_node))
        known_attrs = {attr for _, attr in defs}

        guarded: dict[str, str] = {}
        declaration_line: dict[str, int] = {}
        for line, lock in module.guarded_by.items():
            for statement, attr in defs:
                if line in _statement_span(statement):
                    consumed.add(line)
                    guarded[attr] = lock
                    declaration_line[attr] = line
        if not guarded:
            return

        for attr, lock in sorted(guarded.items()):
            if lock not in known_attrs:
                yield Diagnostic(
                    path=module.display_path,
                    line=declaration_line[attr],
                    col=0,
                    code=self.UNKNOWN_LOCK_CODE,
                    message=(
                        f"`{attr}` declared guarded-by `{lock}`, but "
                        f"`{lock}` is not an attribute of class "
                        f"`{class_node.name}`"
                    ),
                )

        methods: dict[str, _MethodFacts] = {}
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _MethodFacts(statement.name)
                visitor = _MethodVisitor(guarded, facts)
                for inner in statement.body:
                    visitor.visit(inner)
                methods[statement.name] = facts

        call_sites: dict[str, list[_CallSite]] = {}
        for facts in methods.values():
            for site in facts.calls:
                call_sites.setdefault(site.callee, []).append(site)

        for name, facts in sorted(methods.items()):
            if name in _CONSTRUCTORS:
                continue
            unlocked = [
                access
                for access in facts.accesses
                if guarded[access.attr] not in access.held
            ]
            if not unlocked:
                continue
            needed_locks = {guarded[access.attr] for access in unlocked}
            sites = call_sites.get(name, [])
            for lock in sorted(needed_locks):
                covered = [
                    site
                    for site in sites
                    if lock in site.held or site.in_constructor
                ]
                if sites and len(covered) == len(sites):
                    # Helper pattern: every intra-class caller holds the
                    # lock, so the accesses inherit it (one level).
                    continue
                if covered:
                    # Mixed callers: the helper is lock-requiring, so
                    # the unlocked call sites are the defect.
                    for site in sites:
                        if lock in site.held or site.in_constructor:
                            continue
                        yield Diagnostic(
                            path=module.display_path,
                            line=site.node.lineno,
                            col=site.node.col_offset,
                            code=self.HELPER_CODE,
                            message=(
                                f"helper `{name}` touches state guarded "
                                f"by `self.{lock}` and relies on its "
                                "callers holding it; this call site "
                                "does not"
                            ),
                        )
                    continue
                for access in unlocked:
                    if guarded[access.attr] != lock:
                        continue
                    verb = "written" if access.is_write else "read"
                    yield self.diagnostic(
                        module,
                        access.node,
                        f"`self.{access.attr}` is guarded by "
                        f"`self.{lock}` (declared at line "
                        f"{declaration_line[access.attr]}) but is "
                        f"{verb} here without holding it",
                    )


@register_rule
class LocksetHelperCall(Rule):
    """Catalog entry for ``ONEX302`` (emitted by the ONEX301 analysis)."""

    code = "ONEX302"
    name = "unlocked-helper-call"
    rationale = (
        "a helper whose other callers hold the lock is lock-requiring; "
        "calling it without the lock races every locked caller"
    )

    def check(self, module):  # pragma: no cover - ONEX301 emits this code
        return ()


@register_rule
class UnknownLockAnnotation(Rule):
    """Catalog entry for ``ONEX303`` (emitted by the ONEX301 analysis)."""

    code = "ONEX303"
    name = "bad-guarded-by-annotation"
    rationale = (
        "a guarded-by annotation naming a nonexistent lock (or attached "
        "to nothing) enforces nothing; the declaration itself must stay "
        "sound"
    )

    def check(self, module):  # pragma: no cover - ONEX301 emits this code
        return ()
