"""ONEX2xx — backend-dispatch enforcement.

The kernel backend registry (:mod:`repro.distances.backend`, DESIGN.md
§10) is the *only* sanctioned entry point to refinement kernels: it
owns selection, fallback, and the bit-identity guarantee. A caller that
imports ``kernels_numba`` (or a private ``_kernel`` function) directly
hard-wires one implementation, skips the numpy fallback, and silently
exempts itself from the parity contract. Outside the ``distances/``
package itself:

* ``ONEX201`` — any import of ``repro.distances.kernels_numba``;
* ``ONEX202`` — importing or dereferencing a private (``_``-prefixed)
  symbol from any ``repro.distances`` module;
* ``ONEX203`` — dereferencing a backend's ``build_assign`` construction
  kernel anywhere but ``distances/`` or the construction engine
  (``core/grouping.py``). The fused build kernel skips the engine's
  vectorized path entirely; a caller that grabs it directly also skips
  the membership reconstruction and shared finalization that make the
  kernel's output bit-identical to the reference (ISSUE 7).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

_KERNEL_MODULE = "repro.distances.kernels_numba"
_DISTANCES_PREFIX = "repro.distances"


def _distances_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to ``repro.distances`` (sub)modules."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(_DISTANCES_PREFIX):
                    aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == _DISTANCES_PREFIX or module == "repro":
                for alias in node.names:
                    # `from repro.distances import dtw` style submodule
                    # binding; actual functions are caught by name below.
                    aliases.add(alias.asname or alias.name)
    return aliases


@register_rule
class KernelsNumbaImport(Rule):
    code = "ONEX201"
    name = "direct-kernels-numba-import"
    rationale = (
        "kernels_numba is an implementation detail of the backend "
        "registry; importing it bypasses selection, fallback, and the "
        "bit-identity contract (DESIGN.md §10)"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.in_package_dir("distances") or not module.logical_parts:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_KERNEL_MODULE):
                        yield self.diagnostic(
                            module,
                            node,
                            f"direct import of `{alias.name}`; go "
                            "through repro.distances.backend.get_backend()",
                        )
            elif isinstance(node, ast.ImportFrom):
                imported = node.module or ""
                if imported.startswith(_KERNEL_MODULE):
                    yield self.diagnostic(
                        module,
                        node,
                        f"direct import from `{imported}`; go through "
                        "repro.distances.backend.get_backend()",
                    )
                elif imported == _DISTANCES_PREFIX and any(
                    alias.name == "kernels_numba" for alias in node.names
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "direct import of `kernels_numba`; go through "
                        "repro.distances.backend.get_backend()",
                    )


@register_rule
class PrivateKernelAccess(Rule):
    code = "ONEX202"
    name = "private-kernel-access"
    rationale = (
        "private kernel functions skip the wrappers' validation and "
        "the registry's backend dispatch; only distances/ may touch them"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.in_package_dir("distances") or not module.logical_parts:
            return
        aliases = _distances_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                imported = node.module or ""
                if not imported.startswith(_DISTANCES_PREFIX):
                    continue
                for alias in node.names:
                    if alias.name.startswith("_"):
                        yield self.diagnostic(
                            module,
                            node,
                            f"private kernel symbol `{alias.name}` "
                            f"imported from `{imported}`; call the "
                            "public wrapper or the backend registry",
                        )
            elif isinstance(node, ast.Attribute) and node.attr.startswith(
                "_"
            ):
                owner = dotted_name(node.value)
                if owner is None:
                    continue
                if owner in aliases or owner.startswith(_DISTANCES_PREFIX):
                    yield self.diagnostic(
                        module,
                        node,
                        f"private kernel symbol `{owner}.{node.attr}` "
                        "dereferenced; call the public wrapper or the "
                        "backend registry",
                    )


@register_rule
class BuildKernelDispatch(Rule):
    code = "ONEX203"
    name = "build-kernel-dispatch"
    rationale = (
        "the fused build_assign kernel is dispatched by the construction "
        "engine, which owns the membership reconstruction and shared "
        "finalization behind its bit-identity contract; other callers "
        "must build through GroupBuilder (DESIGN.md §12)"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if (
            module.in_package_dir("distances")
            or module.is_module("core", "grouping.py")
            or not module.logical_parts
        ):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "build_assign"
            ):
                owner = dotted_name(node.value)
                owner = "<expr>" if owner is None else owner
                yield self.diagnostic(
                    module,
                    node,
                    f"construction kernel `{owner}.build_assign` "
                    "dereferenced outside the engine; build through "
                    "repro.core.grouping.GroupBuilder",
                )
