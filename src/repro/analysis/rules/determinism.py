"""ONEX6xx — the bit-identity contract as a lint (DESIGN.md §4, §14).

The repo's core promise is that two builds of the same index are
bit-identical and two deployments answer identically. The tier-1 suite
pins that for the paths it runs; these rules pin the *sources* of
nondeterminism the suite can only catch probabilistically, scoped to
the modules where ordering is load-bearing (``distances/``, ``core/``,
and the router's merge in ``serve/cluster/router.py``) and to first
party ``src`` only — tests and benchmarks iterate sets all the time,
legitimately.

* **ONEX601** — iterating a ``set``/``frozenset`` (literal, comp,
  constructor, set algebra, or a local consistently bound to one)
  in a ``for`` or comprehension: hash-order varies per process
  (``PYTHONHASHSEED``), so anything order-sensitive downstream drifts.
  ``sorted(...)`` around the set is the fix and the exemption.
* **ONEX602** — a value produced by an unseeded RNG or a wall-clock
  read flowing into a function's return value. Timing *telemetry* is
  fine and recognized three ways: an elapsed-time subtraction against
  a timing-named variable, a timing-named keyword argument, or a
  timing-named enclosing function.
* **ONEX603** — ``os.listdir`` / ``os.scandir`` / ``glob`` /
  ``Path.iterdir`` without ``sorted(...)``: directory order is
  filesystem-dependent, the classic cross-machine build divergence.

Membership tests (``x in s``) are order-insensitive and exempt by
construction — the rules look only at iteration positions.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.astutil import call_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Variable / keyword / function names that mark a value as timing
#: telemetry rather than index state.
_TIMING_NAME_RE = re.compile(
    r"(second|time|start|began|elapsed|latenc|duration|deadline|rtt|"
    r"timeout|timestamp|stamp|uptime|age|wall|perf|tic|toc)",
    re.IGNORECASE,
)

#: Unseeded / process-global RNG entry points.
_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.gauss",
        "np.random.random",
        "np.random.rand",
        "np.random.randn",
        "np.random.randint",
        "np.random.choice",
        "np.random.permutation",
        "np.random.shuffle",
        "np.random.uniform",
        "numpy.random.random",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.choice",
        "numpy.random.permutation",
        "numpy.random.shuffle",
        "numpy.random.uniform",
    }
)

#: Wall-clock reads.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


def _in_scope(module: SourceModule) -> bool:
    return (
        module.in_package_dir("distances")
        or module.in_package_dir("core")
        or module.is_module("serve", "cluster", "router.py")
    )


def _is_timing_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(_TIMING_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_TIMING_NAME_RE.search(node.attr))
    return False


def _nondeterministic_call(node: ast.Call) -> str | None:
    """The source name when ``node`` is an RNG/clock read, else ``None``."""
    name = call_name(node)
    if name is None:
        return None
    if name in _RANDOM_CALLS or name in _CLOCK_CALLS:
        return name
    # default_rng() with no seed argument is the unseeded generator.
    if name.rsplit(".", 1)[-1] == "default_rng" and not (
        node.args or node.keywords
    ):
        return name
    return None


# ----------------------------------------------------------------------
# ONEX601 — set iteration order
# ----------------------------------------------------------------------
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_OPERATORS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)


def _is_set_expr(node: ast.AST, set_vars: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in _SET_CONSTRUCTORS:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


def _set_bound_names(func: ast.AST) -> set[str]:
    """Locals *every* assignment of which is a set expression.

    Flow-insensitive on purpose, but conservative: one rebinding to a
    ``sorted(...)`` list (the sanctioned fix) clears the name.
    """
    assigned: dict[str, list[ast.AST]] = {}
    for node in ast.walk(func):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(value)
    # Two passes so `b = a` with `a` a set var counts.
    names: set[str] = set()
    for _ in range(2):
        names = {
            name
            for name, values in assigned.items()
            if values
            and all(_is_set_expr(value, names) for value in values)
        }
    return names


@register_rule
class UnorderedSetIteration(Rule):
    code = "ONEX601"
    name = "unordered-set-iteration"
    rationale = (
        "set iteration order varies with PYTHONHASHSEED and across "
        "processes; in build/merge code that order reaches the index "
        "bytes — wrap the set in sorted(...) (DESIGN.md §4)"
    )

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not _in_scope(module):
            return
        funcs = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Nested defs appear in their enclosing function's walk too;
        # report each iteration site once.
        seen: set[tuple[int, int]] = set()
        for func in funcs:
            set_vars = _set_bound_names(func)
            for node in ast.walk(func):
                iters: list[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters = [node.iter]
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    iters = [gen.iter for gen in node.generators]
                for candidate in iters:
                    site = (candidate.lineno, candidate.col_offset)
                    if site in seen:
                        continue
                    if _is_set_expr(candidate, set_vars):
                        seen.add(site)
                        yield Diagnostic(
                            path=module.display_path,
                            line=candidate.lineno,
                            col=candidate.col_offset,
                            code=self.code,
                            message=(
                                "iterating a set here feeds hash order "
                                "into order-sensitive code; wrap it in "
                                "sorted(...)"
                            ),
                        )


# ----------------------------------------------------------------------
# ONEX602 — RNG / clock values escaping through returns
# ----------------------------------------------------------------------
class _SourceFinder(ast.NodeVisitor):
    """Collect RNG/clock calls in an expression, minus timing idioms."""

    def __init__(self, tainted_names: set[str]) -> None:
        self.tainted_names = tainted_names
        self.found: list[tuple[ast.AST, str]] = []

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Sub) and (
            _is_timing_name(node.right) or _is_timing_name(node.left)
        ):
            # `time.perf_counter() - started`: elapsed-time telemetry.
            return
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg is not None and _TIMING_NAME_RE.search(node.arg):
            # `unpack_seconds=time.perf_counter() - t0` — telemetry.
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        source = _nondeterministic_call(node)
        if source is not None:
            self.found.append((node, source))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.tainted_names and not _is_timing_name(node):
            self.found.append((node, f"`{node.id}` (assigned from an RNG)"))


def _tainted_locals(func: ast.AST) -> set[str]:
    """Locals whose every binding contains an RNG source (not a clock:
    clock values bound to a local are nearly always timing telemetry)."""
    assigned: dict[str, list[bool]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        has_rng = any(
            isinstance(inner, ast.Call)
            and (name := _nondeterministic_call(inner)) is not None
            and name not in _CLOCK_CALLS
            for inner in ast.walk(node.value)
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(has_rng)
    return {
        name
        for name, flags in assigned.items()
        if flags and all(flags)
    }


@register_rule
class NondeterministicReturn(Rule):
    code = "ONEX602"
    name = "nondeterministic-return"
    rationale = (
        "an unseeded RNG draw or wall-clock read flowing into a return "
        "value makes the output differ per process, breaking the "
        "bit-identity contract; thread an explicit seeded Generator or "
        "mark timing telemetry with a timing name (DESIGN.md §4)"
    )

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not _in_scope(module):
            return
        seen: set[tuple[int, int]] = set()
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _TIMING_NAME_RE.search(func.name):
                continue
            tainted = _tainted_locals(func)
            returns = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Return) and node.value is not None
            ]
            for ret in returns:
                finder = _SourceFinder(tainted)
                finder.visit(ret.value)
                for node, source in finder.found:
                    site = (node.lineno, node.col_offset)
                    if site in seen:
                        continue
                    seen.add(site)
                    yield Diagnostic(
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=self.code,
                        message=(
                            f"nondeterministic value from {source} "
                            f"escapes through the return of "
                            f"`{func.name}`"
                        ),
                    )


# ----------------------------------------------------------------------
# ONEX603 — filesystem listing order
# ----------------------------------------------------------------------
_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _is_listing_call(node: ast.Call) -> str | None:
    name = call_name(node)
    if name in _LISTING_CALLS:
        return name
    if name is None and isinstance(node.func, ast.Attribute):
        method = node.func.attr
        if method in _LISTING_METHODS:
            return f"<expr>.{method}"
        return None
    if name is not None:
        method = name.rsplit(".", 1)[-1]
        if "." in name and method in _LISTING_METHODS:
            return name
    return None


class _ListingVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.sorted_depth = 0
        self.findings: list[tuple[ast.Call, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        listing = _is_listing_call(node)
        if listing is not None and self.sorted_depth == 0:
            self.findings.append((node, listing))
        if name == "sorted":
            self.sorted_depth += 1
            self.generic_visit(node)
            self.sorted_depth -= 1
        else:
            self.generic_visit(node)


@register_rule
class UnsortedDirectoryListing(Rule):
    code = "ONEX603"
    name = "unsorted-directory-listing"
    rationale = (
        "os.listdir / scandir / glob / Path.iterdir order is "
        "filesystem-dependent; unsorted listings make builds diverge "
        "across machines — wrap in sorted(...) (DESIGN.md §4)"
    )

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not _in_scope(module):
            return
        visitor = _ListingVisitor()
        visitor.visit(module.tree)
        for node, name in visitor.findings:
            yield Diagnostic(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                code=self.code,
                message=(
                    f"`{name}` returns entries in filesystem order; "
                    "wrap the listing in sorted(...) so downstream "
                    "work is machine-independent"
                ),
            )
