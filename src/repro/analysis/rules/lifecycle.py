"""ONEX7xx — resource-lifecycle rules (DESIGN.md §12, §14).

The parallel build's shared-memory result protocol and the serving
tier's pools are the two places a leaked OS resource outlives the
process that forgot it: an un-unlinked ``SharedMemory`` block squats in
``/dev/shm`` until reboot, an un-shutdown executor keeps worker
processes alive past the build. These rules check the shapes the repo
actually uses, across every tree (tests leak ``/dev/shm`` too):

* **ONEX701** — a ``SharedMemory`` bound to a local must have its
  ``close()`` inside a ``finally`` (an exception between map and close
  leaks the mapping), and a *created* (``create=True``) block must
  additionally reach ``unlink()`` somewhere in the function — on the
  success path for self-contained users, on the error path when
  ownership transfers by name (the shard-descriptor protocol).
* **ONEX702** — a ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` /
  ``multiprocessing.Pool`` must be ``with``-managed, or its holder
  (``self._pool`` / a local) must reach ``shutdown()`` / ``close()`` /
  ``terminate()`` in the same class or function.
* **ONEX703** — a handle opened by ``with open(...)`` / ``with
  mmap.mmap(...)`` must not escape the ``with`` (returned, or stored on
  ``self``): it is closed the moment the block exits, so every escape
  is a use-after-close. (``yield``-ing it is fine — the generator is
  suspended *inside* the block, handle live.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import call_name, is_self_attribute
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ALL_TREES, Rule, register_rule
from repro.analysis.source import SourceModule


def _call_basename(node: ast.Call) -> str | None:
    name = call_name(node)
    return None if name is None else name.rsplit(".", 1)[-1]


def _functions(module: SourceModule) -> Iterator[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _method_calls_on(func: ast.AST, receiver: str) -> set[str]:
    """Method names invoked as ``<receiver>.m(...)`` anywhere in ``func``."""
    calls: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == receiver
        ):
            calls.add(node.func.attr)
    return calls


def _finally_calls_on(func: ast.AST, receiver: str) -> set[str]:
    """Method names invoked on ``receiver`` inside any ``finally`` block."""
    calls: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for statement in node.finalbody:
            for inner in ast.walk(statement):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == receiver
                ):
                    calls.add(inner.func.attr)
    return calls


@register_rule
class SharedMemoryLifecycle(Rule):
    code = "ONEX701"
    name = "shared-memory-lifecycle"
    rationale = (
        "a SharedMemory block outlives the process: close() must sit "
        "in a finally (exceptions between map and close leak the "
        "mapping) and a created block must reach unlink() on some path "
        "or it squats in /dev/shm until reboot (DESIGN.md §12)"
    )
    trees = ALL_TREES

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        seen: set[tuple[int, int]] = set()
        for func in _functions(module):
            for node in ast.walk(func):
                if (
                    not isinstance(node, ast.Assign)
                    or not isinstance(node.value, ast.Call)
                    or _call_basename(node.value) != "SharedMemory"
                    or len(node.targets) != 1
                    or not isinstance(node.targets[0], ast.Name)
                ):
                    continue
                # Nested defs are walked by their enclosing function
                # too; charge each site to the innermost walk only.
                site = (node.lineno, node.col_offset)
                if site in seen or any(
                    node in set(ast.walk(inner))
                    for inner in ast.walk(func)
                    if inner is not func
                    and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ):
                    continue
                seen.add(site)
                var = node.targets[0].id
                creates = any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.value.keywords
                )
                all_calls = _method_calls_on(func, var)
                finally_calls = _finally_calls_on(func, var)
                if "close" not in all_calls:
                    yield self._finding(
                        module, node, f"`{var}` is never close()d"
                    )
                elif "close" not in finally_calls:
                    yield self._finding(
                        module,
                        node,
                        f"`{var}.close()` is not in a finally block; an "
                        "exception while the mapping is live leaks it",
                    )
                if creates and "unlink" not in all_calls:
                    yield self._finding(
                        module,
                        node,
                        f"`{var}` is created here but never unlink()ed "
                        "in this function; the block persists in "
                        "/dev/shm after the process exits",
                    )

    def _finding(
        self, module: SourceModule, node: ast.AST, detail: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            code=self.code,
            message=f"shared-memory lifecycle: {detail}",
        )


_POOL_CONSTRUCTORS = frozenset(
    {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
)
_POOL_SHUTDOWN_METHODS = frozenset({"shutdown", "close", "terminate"})


def _pool_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    base = name.rsplit(".", 1)[-1]
    if base not in _POOL_CONSTRUCTORS:
        return False
    # Bare `Pool` is too common a name; require the multiprocessing
    # spelling for it, executors match by their distinctive names.
    if base == "Pool" and name not in {
        "multiprocessing.Pool",
        "mp.Pool",
    }:
        return False
    return True


def _self_attr_shutdown(class_node: ast.ClassDef, attr: str) -> bool:
    for node in ast.walk(class_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_SHUTDOWN_METHODS
            and is_self_attribute(node.func.value, attr)
        ):
            return True
    return False


@register_rule
class ExecutorLifecycle(Rule):
    code = "ONEX702"
    name = "executor-lifecycle"
    rationale = (
        "an executor/pool that is never shut down keeps its workers "
        "alive past the work: use `with`, or pair the holder with an "
        "explicit shutdown()/close()/terminate() (DESIGN.md §12)"
    )
    trees = ALL_TREES

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        managed: set[ast.Call] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        managed.add(item.context_expr)

        classes = {
            node: None
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }

        seen: set[tuple[int, int]] = set()
        for func in _functions(module):
            owner_class = next(
                (
                    cls
                    for cls in classes
                    if any(stmt is func for stmt in cls.body)
                ),
                None,
            )
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign) or not _pool_call(
                    node.value
                ):
                    continue
                if node.value in managed:
                    continue
                site = (node.lineno, node.col_offset)
                if site in seen or any(
                    node in set(ast.walk(inner))
                    for inner in ast.walk(func)
                    if inner is not func
                    and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ):
                    continue
                seen.add(site)
                target = node.targets[0] if len(node.targets) == 1 else None
                if isinstance(target, ast.Name):
                    if _method_calls_on(func, target.id) & (
                        _POOL_SHUTDOWN_METHODS
                    ):
                        continue
                elif (
                    is_self_attribute(target)
                    and owner_class is not None
                    and _self_attr_shutdown(owner_class, target.attr)
                ):
                    continue
                yield Diagnostic(
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "executor/pool is created without a matching "
                        "shutdown; use `with ...:` or call "
                        "shutdown()/close()/terminate() on the holder"
                    ),
                )
            # `with ThreadPoolExecutor(...) as pool:` never reaches the
            # Assign branch above — the with-statement manages it.


_WITH_HANDLE_CALLS = frozenset({"open", "mmap.mmap", "mmap"})


@register_rule
class EscapingWithHandle(Rule):
    code = "ONEX703"
    name = "escaping-with-handle"
    rationale = (
        "a handle bound by `with open(...)`/`with mmap.mmap(...)` is "
        "closed when the block exits; returning it or storing it on "
        "self hands out a dead handle (DESIGN.md §12)"
    )
    trees = ALL_TREES

    def check(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                ctx = item.context_expr
                if not isinstance(ctx, ast.Call):
                    continue
                if call_name(ctx) not in _WITH_HANDLE_CALLS:
                    continue
                if not isinstance(item.optional_vars, ast.Name):
                    continue
                handle = item.optional_vars.id
                yield from self._escapes(module, node, handle)

    def _escapes(
        self,
        module: SourceModule,
        with_node: ast.With | ast.AsyncWith,
        handle: str,
    ) -> Iterator[Diagnostic]:
        # Only the *bare handle* escaping is a defect: `return
        # json.load(f)` reads while open and returns data, and `yield f`
        # suspends inside the block with the handle still live.
        def is_handle(expr: ast.AST | None) -> bool:
            if isinstance(expr, ast.Name) and expr.id == handle:
                return True
            if isinstance(expr, (ast.Tuple, ast.List)):
                return any(is_handle(element) for element in expr.elts)
            return False

        for statement in with_node.body:
            for node in ast.walk(statement):
                escaped: str | None = None
                if isinstance(node, ast.Return) and is_handle(node.value):
                    escaped = "returned"
                elif (
                    isinstance(node, ast.Assign)
                    and is_handle(node.value)
                    and any(
                        is_self_attribute(target) for target in node.targets
                    )
                ):
                    escaped = "stored on self"
                if escaped is not None:
                    yield Diagnostic(
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=self.code,
                        message=(
                            f"`{handle}` from the enclosing `with` is "
                            f"{escaped}; it is closed when the block "
                            "exits, so the receiver gets a dead handle"
                        ),
                    )
