"""ONEX4xx — persistence atomicity.

Index directories must never be observable half-written: the blessed
path (:mod:`repro.core.persistence`, DESIGN.md §8) stages arrays in a
temp directory beside the target and renames it into place. A raw
``open(path, "w")`` / ``np.save`` / ``shutil.copy`` / ``os.replace``
anywhere else in the persistence-adjacent packages (``core/``,
``extensions/``, ``serve/``) is a hand-rolled write path that skips
that guarantee, so ``ONEX401`` flags it. Scratch writes (e.g. the
sharded build's temp-dir mmap hand-off) carry an explicit
``# onex: ignore[ONEX401]`` with a reason — visible, audited, counted.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Packages whose modules may touch index state on disk.
_SCOPED_PACKAGES = ("core", "extensions", "serve")
#: The blessed implementation module, exempt by definition.
_BLESSED_MODULE = ("core", "persistence.py")

_NUMPY_WRITERS = frozenset({"save", "savez", "savez_compressed"})
_SHUTIL_WRITERS = frozenset(
    {"copy", "copy2", "copyfile", "copytree", "move"}
)
_OS_WRITERS = frozenset({"rename", "replace", "renames"})
_WRITE_MODE_CHARS = frozenset("wax+")


def _open_write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``-family call, if it writes."""
    mode_node: ast.AST | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if (
        isinstance(mode_node, ast.Constant)
        and isinstance(mode_node.value, str)
        and _WRITE_MODE_CHARS.intersection(mode_node.value)
    ):
        return mode_node.value
    return None


@register_rule
class RawPersistenceWrite(Rule):
    code = "ONEX401"
    name = "raw-persistence-write"
    rationale = (
        "index state must reach disk through core/persistence.py's "
        "atomic temp-dir+rename helpers; raw writes can leave a "
        "half-written directory visible to readers (DESIGN.md §8)"
    )

    def check(self, module: SourceModule) -> Iterable[Diagnostic]:
        if not any(
            module.in_package_dir(package) for package in _SCOPED_PACKAGES
        ):
            return
        if module.is_module(*_BLESSED_MODULE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            root, _, base = name.rpartition(".")
            if name == "open" or base == "open" and root in ("io", "os"):
                mode = _open_write_mode(node)
                if mode is not None:
                    yield self.diagnostic(
                        module,
                        node,
                        f"raw `open(..., {mode!r})` outside "
                        "core/persistence.py; use the atomic "
                        "temp-dir+rename helpers",
                    )
            elif base in _NUMPY_WRITERS and root in ("np", "numpy"):
                yield self.diagnostic(
                    module,
                    node,
                    f"raw `{name}` outside core/persistence.py; use "
                    "the atomic temp-dir+rename helpers",
                )
            elif base in _SHUTIL_WRITERS and root == "shutil":
                yield self.diagnostic(
                    module,
                    node,
                    f"`{name}` writes outside core/persistence.py; use "
                    "the atomic temp-dir+rename helpers",
                )
            elif base in _OS_WRITERS and root == "os":
                yield self.diagnostic(
                    module,
                    node,
                    f"`{name}` outside core/persistence.py; renames "
                    "belong to the blessed atomic-swap helpers",
                )
            elif base == "tofile":
                yield self.diagnostic(
                    module,
                    node,
                    "raw `.tofile()` outside core/persistence.py; use "
                    "the atomic temp-dir+rename helpers",
                )
