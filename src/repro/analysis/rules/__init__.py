"""The shipped rule families; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401
    atomicity,
    dispatch,
    lockset,
    numeric_purity,
)
