"""The shipped rule families; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401
    async_safety,
    atomicity,
    determinism,
    dispatch,
    lifecycle,
    lockset,
    numeric_purity,
)
