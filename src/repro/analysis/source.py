"""Per-file context shared by every lint rule.

A :class:`SourceModule` owns the parsed AST plus the two comment
conventions the checker understands, both collected with ``tokenize``
so string literals containing ``#`` can never confuse them:

``# onex: ignore[ONEX301]`` (or bare ``# onex: ignore``)
    Suppresses diagnostics of the listed codes (or all codes) on that
    physical line. The engine applies these after rules run, and the
    report counts suppressed findings so silent decay is visible.

``# guarded-by: _lock``
    Declares that the attribute assigned on that line must only be
    accessed while holding ``self._lock`` (see
    :mod:`repro.analysis.rules.lockset`).

Rules scope themselves by the module's *logical path* — its path parts
relative to the ``repro`` package root (``("distances", "dtw.py")``) —
so fixture trees under ``tmp/repro/...`` exercise the exact same
scoping as the real tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_IGNORE_RE = re.compile(
    r"#\s*onex:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>\w+)")

#: Sentinel stored in ``ignores`` for a bare ``# onex: ignore``.
IGNORE_ALL = "*"

#: Source-tree names rules can scope themselves by (``Rule.trees``).
#: ``src`` is any module inside a ``repro`` package; the rest are the
#: repo's sibling trees, recognized by directory name so fixture trees
#: under ``tmp/tests/...`` scope exactly like the real ones.
KNOWN_TREES = ("src", "tests", "benchmarks", "scripts", "examples")


def tree_for(path: Path, logical_parts: tuple[str, ...]) -> str:
    """Which source tree a file belongs to (``other`` when unknown)."""
    if logical_parts:
        return "src"
    for part in reversed(path.resolve().parts[:-1]):
        if part in KNOWN_TREES:
            return part
    return "other"


@dataclass
class SourceModule:
    """One parsed Python file plus its lint directives."""

    path: Path
    source: str
    tree: ast.Module
    #: Path parts below the ``repro`` package root, e.g.
    #: ``("distances", "dtw.py")``; empty when the file is not inside a
    #: ``repro`` package (rules that scope by location skip it).
    logical_parts: tuple[str, ...]
    #: line -> set of suppressed codes (:data:`IGNORE_ALL` for all).
    ignores: dict[int, set[str]] = field(default_factory=dict)
    #: line -> lock name from a ``# guarded-by:`` annotation.
    guarded_by: dict[int, str] = field(default_factory=dict)
    #: Which source tree the file sits in (see :data:`KNOWN_TREES`).
    source_tree: str = "src"

    @property
    def display_path(self) -> str:
        return str(self.path)

    @property
    def logical_posix(self) -> str:
        """Logical path as one slash-joined string (``distances/dtw.py``)."""
        return "/".join(self.logical_parts)

    def in_package_dir(self, *parts: str) -> bool:
        """Whether the module sits under ``repro/<parts...>/``."""
        return self.logical_parts[: len(parts)] == parts

    def is_module(self, *parts: str) -> bool:
        """Whether the module *is* ``repro/<parts...>`` exactly."""
        return self.logical_parts == parts

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.ignores.get(line)
        return codes is not None and (code in codes or IGNORE_ALL in codes)


def logical_parts_for(path: Path) -> tuple[str, ...]:
    """Path parts below the rightmost ``repro`` directory, if any."""
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1 :])
    return ()


def _collect_directives(
    source: str,
) -> tuple[dict[int, set[str]], dict[int, str]]:
    ignores: dict[int, set[str]] = {}
    guarded: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return ignores, guarded
    for line, text in comments:
        match = _IGNORE_RE.search(text)
        if match:
            spec = match.group("codes")
            if spec is None:
                ignores.setdefault(line, set()).add(IGNORE_ALL)
            else:
                for code in spec.split(","):
                    code = code.strip().upper()
                    if code:
                        ignores.setdefault(line, set()).add(code)
        match = _GUARDED_RE.search(text)
        if match:
            guarded[line] = match.group("lock")
    return ignores, guarded


def parse_module(path: Path, source: str | None = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises :class:`SyntaxError` on unparsable source; the engine turns
    that into an ``ONEX900`` diagnostic rather than crashing the run.
    """
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    ignores, guarded = _collect_directives(source)
    logical_parts = logical_parts_for(path)
    return SourceModule(
        path=path,
        source=source,
        tree=tree,
        logical_parts=logical_parts,
        ignores=ignores,
        guarded_by=guarded,
        source_tree=tree_for(path, logical_parts),
    )


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs walked), sorted."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)
