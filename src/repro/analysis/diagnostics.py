"""The diagnostic record every lint rule emits.

A :class:`Diagnostic` is deliberately flat and JSON-friendly: CI uploads
the machine-readable report as an artifact next to the benchmark JSON
results, and the fixture tests assert on ``(code, line)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule code anchored to a file position.

    Ordering is ``(path, line, col, code)`` so reports are stable and
    diffable across runs.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> dict:
        """JSON-friendly view (the CI artifact's element shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        """Human-readable ``path:line:col CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def __str__(self) -> str:
        return self.render()
