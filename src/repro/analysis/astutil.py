"""Small AST helpers shared by the rule families."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else ``None`` (e.g. ``f()()``)."""
    return dotted_name(node.func)


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when ``None``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def decorator_base_name(decorator: ast.AST) -> str | None:
    """Last path segment of a decorator: ``numba.njit(...)`` -> ``njit``."""
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    name = dotted_name(decorator)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def is_njit_decorated(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether a function carries an ``njit``/``jit`` decorator."""
    return any(
        decorator_base_name(decorator) in ("njit", "jit")
        for decorator in node.decorator_list
    )


def string_value(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
