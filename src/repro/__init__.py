"""ONEX - Online Exploration of Time Series (VLDB 2016) reproduction.

Public API quick tour::

    from repro import OnexIndex, make_dataset

    dataset = make_dataset("ItalyPower", n_series=30)
    index = OnexIndex.build(dataset, st=0.2)
    best = index.query(sample_sequence)[0]          # Q1 similarity
    clusters = index.seasonal(length=12)            # Q2 seasonal similarity
    ranges = index.recommend("S")                   # Q3 threshold guidance

See DESIGN.md for the system inventory (including the vectorized batch
kernel layer) and the tables under ``benchmarks/results/`` — produced
by running the ``benchmarks/`` suite — for the paper-versus-measured
results.
"""

from repro.core.onex import OnexIndex, default_length_grid
from repro.core.results import (
    BaseStats,
    Match,
    SeasonalGroup,
    SeasonalResult,
    ThresholdRecommendation,
)
from repro.core.spspace import SimilarityDegree
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.data.loader import load_ucr_file, save_ucr_file
from repro.data.synthetic import make_dataset
from repro.distances import (
    dtw,
    erp,
    euclidean,
    lcss_distance,
    normalized_dtw,
    normalized_euclidean,
    pdtw,
)
from repro.exceptions import OnexError
from repro.serve import OnexService

__version__ = "1.0.0"

__all__ = [
    "OnexIndex",
    "default_length_grid",
    "BaseStats",
    "Match",
    "SeasonalGroup",
    "SeasonalResult",
    "ThresholdRecommendation",
    "SimilarityDegree",
    "Dataset",
    "TimeSeries",
    "SubsequenceId",
    "load_ucr_file",
    "save_ucr_file",
    "make_dataset",
    "dtw",
    "normalized_dtw",
    "euclidean",
    "normalized_euclidean",
    "pdtw",
    "lcss_distance",
    "erp",
    "OnexError",
    "OnexService",
    "__version__",
]
