"""The Representative Space (paper Definition 9) and per-length buckets.

The R-Space collects, for every indexed length, the similarity groups,
their representatives, and the *Inter-Representative Distances* ``Dc``
(Definition 10). Each :class:`LengthBucket` also carries the Global Time
Index payload of §4.3: the group-id vector, the ``Dc`` matrix, the
sum-of-distances array sorted for the median-out search order of §5.3,
and (once the SP-Space pass ran) the local ``ST_half`` / ``ST_final``.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Iterator

import numpy as np

from repro.core.group import SimilarityGroup
from repro.distances.batch import EnvelopeStack, envelope_matrix
from repro.exceptions import IndexConstructionError, QueryError


@dataclass
class LengthBucket:
    """All groups of one subsequence length plus their GTI entry.

    When built over a columnar subsequence store, ``store_view`` holds
    the per-length :class:`~repro.data.store.LengthView` and groups carry
    ``member_rows`` index arrays into it, so member matrices are one
    fancy-index gather instead of per-member materialization.
    """

    #: Per-bucket byte budget for cached member-matrix stacks. Caching
    #: makes repeat traffic cheap, but an unbounded cache would slowly
    #: re-materialize the whole windowed subsequence set in RAM over a
    #: long-lived serving process — defeating the mmap-backed v3 design
    #: — so oldest-inserted stacks are evicted beyond this budget (the
    #: newest stack is always kept, whatever its size; hits stay
    #: lock-free, which is why eviction is insertion- not
    #: recency-ordered).
    MEMBER_MATRIX_CACHE_BYTES = 64 * 1024 * 1024

    length: int
    groups: list[SimilarityGroup]
    store_view: object = None  # LengthView | None
    rep_matrix: np.ndarray = field(init=False)
    dc: np.ndarray = field(init=False)  # normalized ED between representatives
    sum_order: np.ndarray = field(init=False)  # group indices sorted by Dc row sums
    dc_row_sums: np.ndarray = field(init=False)
    st_half: float | None = None
    st_final: float | None = None
    # Lazy batch-kernel payloads: representative envelope stacks per
    # band radius and stacked member matrices per group (built on first
    # use by the batch query path, then reused). Construction is
    # guarded by ``_payload_lock`` so concurrent queries hydrate each
    # payload exactly once and never observe a half-built entry.
    _rep_envelope_stacks: dict[int, EnvelopeStack] = field(
        init=False, repr=False, default_factory=dict  # guarded-by: _payload_lock
    )
    _member_matrices: "OrderedDict[int, np.ndarray]" = field(
        init=False, repr=False, default_factory=OrderedDict  # guarded-by: _payload_lock
    )
    _member_matrix_bytes: int = field(
        init=False, repr=False, default=0  # guarded-by: _payload_lock
    )
    _payload_lock: threading.Lock = field(
        init=False, repr=False, default_factory=threading.Lock
    )

    def __post_init__(self) -> None:
        if not self.groups:
            raise IndexConstructionError(f"length {self.length} has no groups")
        for group in self.groups:
            if not group.is_finalized:
                raise IndexConstructionError("LengthBucket requires finalized groups")
            if group.length != self.length:
                raise IndexConstructionError(
                    f"group of length {group.length} placed in bucket {self.length}"
                )
        self.rep_matrix = np.stack([group.representative for group in self.groups])
        self.dc = self._pairwise_normalized_ed(self.rep_matrix)
        self.dc_row_sums = self.dc.sum(axis=1)
        self.sum_order = np.argsort(self.dc_row_sums, kind="stable")

    @staticmethod
    def _pairwise_normalized_ed(reps: np.ndarray) -> np.ndarray:
        """Dc matrix: normalized ED between every pair of representatives."""
        g, length = reps.shape
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped against round-off.
        norms = np.einsum("ij,ij->i", reps, reps)
        squared = norms[:, None] + norms[None, :] - 2.0 * reps @ reps.T
        np.clip(squared, 0.0, None, out=squared)
        return np.sqrt(squared) / math.sqrt(length)

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_subsequences(self) -> int:
        return sum(group.count for group in self.groups)

    def median_out_order(self) -> Iterator[int]:
        """Group indices starting from the median Dc-row-sum, fanning out.

        This is the §5.3 representative search order: begin with the
        "median representative" of the sorted sums array, then alternate
        between its left and right neighbours until both ends are reached.
        """
        order = self.sum_order
        g = len(order)
        middle = g // 2
        yield int(order[middle])
        for offset in range(1, g):
            left = middle - offset
            right = middle + offset
            if left >= 0:
                yield int(order[left])
            if right < g:
                yield int(order[right])

    def group_of(self, index: int) -> SimilarityGroup:
        if not 0 <= index < len(self.groups):
            raise QueryError(
                f"group index {index} out of range for length {self.length}"
            )
        return self.groups[index]

    # ------------------------------------------------------------------
    # Batch-kernel payloads (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def representatives_matrix(self) -> np.ndarray:
        """Contiguous ``(n_groups, length)`` stack of representatives."""
        return self.rep_matrix

    def rep_envelope_stack(self, radius: int) -> EnvelopeStack:
        """Envelopes of every representative at ``radius``, built once.

        Backs the reversed LB_Keogh stage of the batch representative
        scan; cached per radius because different query lengths resolve
        to different band radii. Safe under concurrent queries: the
        stack is built exactly once, inside ``_payload_lock``.
        """
        radius = int(radius)
        # Deliberate lock-free fast path: a hit reads a fully-built,
        # never-mutated stack (GIL-atomic dict read).
        stack = self._rep_envelope_stacks.get(radius)  # onex: ignore[ONEX301]
        if stack is None:
            with self._payload_lock:
                stack = self._rep_envelope_stacks.get(radius)
                if stack is None:
                    stack = envelope_matrix(self.rep_matrix, radius)
                    self._rep_envelope_stacks[radius] = stack
        return stack

    def member_matrix(self, group_index: int, dataset) -> np.ndarray:
        """Stacked member subsequences of one group, in LSI order.

        Rows align with ``groups[group_index].member_ids``. For
        store-backed groups this is a single fancy-index into the
        columnar store's zero-copy window matrix; groups without store
        rows (hand-built or legacy archives) fall back to materializing
        from ``dataset`` (the normalized dataset this R-Space was built
        from) one member at a time. The stack is cached per bucket
        within a :data:`MEMBER_MATRIX_CACHE_BYTES` byte budget — the
        first query against a group pays the gather (and, for
        mmap-backed stores, the page-in), later queries and the batch
        executor reuse it — and construction happens at most once at a
        time under concurrent queries (``_payload_lock``). Hits are
        lock-free (concurrent refinements of different groups never
        serialize on a hit), so eviction beyond the budget is
        insertion-ordered rather than recency-ordered.
        """
        # Deliberate lock-free fast path (see the docstring): hits must
        # not serialize, and a hit reads a finished read-only array.
        matrix = self._member_matrices.get(group_index)  # onex: ignore[ONEX301]
        if matrix is not None:
            return matrix
        with self._payload_lock:
            matrix = self._member_matrices.get(group_index)
            if matrix is not None:
                return matrix
            group = self.group_of(group_index)
            if group.member_rows is not None and self.store_view is not None:
                matrix = self.store_view.values(group.member_rows)
            else:
                matrix = np.stack(
                    [dataset.subsequence(ssid) for ssid in group.member_ids]
                )
            matrix.setflags(write=False)
            self._member_matrices[group_index] = matrix
            self._member_matrix_bytes += matrix.nbytes
            while (
                self._member_matrix_bytes > self.MEMBER_MATRIX_CACHE_BYTES
                and len(self._member_matrices) > 1
            ):
                _, evicted = self._member_matrices.popitem(last=False)
                self._member_matrix_bytes -= evicted.nbytes
        return matrix


class RSpace:
    """Representative Space: one :class:`LengthBucket` per indexed length.

    Buckets are either materialized up front (``buckets``) or supplied
    as zero-argument ``loaders`` that hydrate on first access — the v3
    persistence format registers one loader per length so ``load`` is
    O(manifest) and a bucket's groups (and mmap pages) are only touched
    by the first query that needs that length.
    """

    def __init__(
        self,
        buckets: dict[int, LengthBucket],
        loaders: "dict[int, callable] | None" = None,
    ) -> None:
        loaders = dict(loaders or {})
        if not buckets and not loaders:
            raise IndexConstructionError("R-Space requires at least one length bucket")
        self._buckets = dict(sorted(buckets.items()))  # guarded-by: _buckets_lock
        self._loaders = loaders
        self._lengths = sorted(set(self._buckets) | set(loaders))
        # One hydration lock per lazily-loaded length: concurrent first
        # queries against the same length run the loader exactly once
        # (different lengths still hydrate in parallel). The bucket map
        # itself gets its own lock — two *different* lengths hydrating
        # concurrently hold different hydration locks, so without it
        # their `_buckets` inserts would race (benign under the GIL,
        # undefined without it).
        self._buckets_lock = threading.Lock()
        self._hydration_locks = {length: threading.Lock() for length in loaders}

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __contains__(self, length: int) -> bool:
        with self._buckets_lock:
            if length in self._buckets:
                return True
        return length in self._loaders

    def __iter__(self) -> Iterator[LengthBucket]:
        return (self.bucket(length) for length in self._lengths)

    def __len__(self) -> int:
        return len(self._lengths)

    @property
    def lengths(self) -> list[int]:
        """Indexed lengths, ascending."""
        return list(self._lengths)

    @property
    def hydrated_lengths(self) -> list[int]:
        """Lengths whose bucket is materialized (all, unless lazily loaded)."""
        with self._buckets_lock:
            hydrated = set(self._buckets)
        return [length for length in self._lengths if length in hydrated]

    def bucket(self, length: int) -> LengthBucket:
        """GTI lookup: the bucket of one length (constant time, §5.2).

        Lazily registered buckets hydrate here, once, on first access —
        also under concurrency: the per-length hydration lock makes the
        loader run exactly once, and every caller observes the same
        fully-constructed bucket object.
        """
        # Deliberate lock-free fast path: a hit reads a fully-built
        # bucket already published under the lock (GIL-atomic read).
        bucket = self._buckets.get(length)  # onex: ignore[ONEX301]
        if bucket is not None:
            return bucket
        loader = self._loaders.get(length)
        if loader is None:
            known = ", ".join(map(str, self._lengths))
            raise QueryError(
                f"length {length} is not indexed; indexed lengths: {known}"
            ) from None
        with self._hydration_locks[length]:
            with self._buckets_lock:
                bucket = self._buckets.get(length)
            if bucket is None:
                bucket = loader()
                with self._buckets_lock:
                    self._buckets[length] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return sum(bucket.n_groups for bucket in self)

    @property
    def n_representatives(self) -> int:
        # One representative per group (Def. 8), so the counts coincide;
        # kept separate because the paper reports "representatives".
        return self.n_groups

    @property
    def n_subsequences(self) -> int:
        return sum(bucket.n_subsequences for bucket in self)

    def search_length_order(self, query_length: int) -> list[int]:
        """Lengths in the §5.3 search order for a query of ``query_length``.

        Start at the query's own length (or the nearest indexed one),
        continue with decreasing lengths, then increasing ones.
        """
        return search_length_order(self._lengths, query_length)


def search_length_order(lengths: list[int], query_length: int) -> list[int]:
    """The §5.3 length sweep order as a pure function of the length grid.

    Shared by :meth:`RSpace.search_length_order` and the cluster router,
    which replays the sweep over scatter-gathered shard scans without an
    :class:`RSpace` instance — both must visit lengths in exactly this
    order for sharded answers to stay bit-identical (ties in the
    nearest-length probe resolve to the smaller length, matching
    ``min``'s first-wins behaviour).
    """
    lengths = sorted(int(length) for length in lengths)
    if query_length in lengths:
        start = lengths.index(query_length)
    else:
        start = min(
            range(len(lengths)), key=lambda i: abs(lengths[i] - query_length)
        )
    descending = [lengths[i] for i in range(start, -1, -1)]
    ascending = [lengths[i] for i in range(start + 1, len(lengths))]
    return descending + ascending
