"""The :class:`OnexIndex` facade: one object for the whole ONEX lifecycle.

``OnexIndex.build`` runs the one-time preprocessing step of the paper:
normalize the dataset, decompose it into subsequences of the configured
lengths, construct the similarity groups per length (Algorithm 1),
assemble the R-Space with its GTI payloads, and compute the SP-Space.
The resulting object answers the paper's three online query classes:

* :meth:`query` / :meth:`query_batch` / :meth:`within` — Class I
  similarity queries (Q1),
* :meth:`seasonal` — Class II seasonal similarity queries (Q2),
* :meth:`recommend` — Class III threshold recommendations (Q3),

plus :meth:`with_threshold` (Algorithm 2.C threshold adaptation without
rebuilding), :meth:`stats` (Table 4's accounting) and save/load. The
module inventory, including the vectorized batch-kernel layer the query
path runs on, is documented in ``DESIGN.md`` at the repository root.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Sequence

import numpy as np

from repro.core.grouping import ASSIGN_MODES, GroupBuilder
from repro.core.parallel import build_shards_parallel, resolve_n_jobs
from repro.core.query_processor import QueryProcessor
from repro.core.results import BaseStats, Match, SeasonalResult, ThresholdRecommendation
from repro.core.rspace import LengthBucket, RSpace
from repro.core.sizing import measure_rspace
from repro.core.spspace import SimilarityDegree, SPSpace
from repro.core.threshold import adapt_bucket
from repro.data.dataset import Dataset
from repro.data.normalize import min_max_normalize
from repro.data.store import SubsequenceStore
from repro.distances.backend import get_backend
from repro.distances.dtw import resolve_window
from repro.exceptions import QueryError, ThresholdError
from repro.utils.validation import as_float_array, check_lengths

_DEFAULT_N_LENGTHS = 8


def default_length_grid(dataset: Dataset, n_lengths: int = _DEFAULT_N_LENGTHS) -> list[int]:
    """A practical grid of subsequence lengths for a dataset.

    The paper indexes *all* lengths; for interactive rebuild times this
    default covers the range ``[max(4, n/8), n]`` with ``n_lengths``
    evenly spaced values (``n`` = shortest series). Pass
    ``lengths="all"`` to :meth:`OnexIndex.build` for the paper's full
    decomposition.
    """
    top = dataset.min_length
    bottom = max(4, top // 8)
    if top - bottom + 1 <= n_lengths:
        return list(range(bottom, top + 1))
    grid = np.linspace(bottom, top, n_lengths).round().astype(int)
    return sorted(set(int(value) for value in grid))


class OnexIndex:
    """A built ONEX base over one dataset. Use :meth:`build` to create one."""

    def __init__(
        self,
        dataset: Dataset,
        rspace: RSpace,
        spspace: SPSpace,
        st: float,
        window: int | float | None,
        start_step: int,
        value_range: tuple[float, float],
        build_seconds: float = 0.0,
        group_search_width: int | None = None,
        use_batch_kernels: bool = True,
        assign_mode: str = "sequential",
        build_profile: list[dict] | None = None,
        build_backend: str = "numpy",
    ) -> None:
        self.dataset = dataset  # normalized
        self.rspace = rspace
        self.spspace = spspace
        self.st = float(st)
        self.window = window
        self.start_step = int(start_step)
        self.value_range = (float(value_range[0]), float(value_range[1]))
        self.build_seconds = float(build_seconds)
        self.assign_mode = assign_mode
        # Per-length construction throughput: list of dicts with keys
        # length / n_subsequences / seconds / backend (shown by
        # ``onex info``).
        self.build_profile = list(build_profile or [])
        # Kernel backend that ran the construction assignment loops
        # ("numba" when the fused build kernel was dispatched).
        self.build_backend = str(build_backend)
        self.processor = QueryProcessor(
            rspace,
            dataset,
            st=self.st,
            window=window,
            group_search_width=group_search_width,
            use_batch_kernels=use_batch_kernels,
        )

    # ------------------------------------------------------------------
    # Offline construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: Dataset,
        st: float = 0.2,
        lengths: Sequence[int] | str | None = None,
        start_step: int = 1,
        window: int | float | None = 0.1,
        seed: int | None = 0,
        normalize: bool = True,
        group_search_width: int | None = None,
        grouping: str = "incremental",
        use_batch_kernels: bool = True,
        assign_mode: str = "sequential",
        n_jobs: int | None = None,
        progress: "callable | None" = None,
    ) -> "OnexIndex":
        """Run the one-time ONEX preprocessing step (§4.1).

        Parameters
        ----------
        dataset:
            Input time series collection.
        st:
            Similarity threshold on the normalized-distance scale
            (the paper's experiments use ~0.2).
        lengths:
            Subsequence lengths to index: an explicit list, the string
            ``"all"`` for every length from 2 to the shortest series
            (the paper's full decomposition), or ``None`` for the
            default grid of :func:`default_length_grid`.
        start_step:
            Stride over subsequence starting positions (1 = all).
        window:
            DTW band used online (fraction of length, absolute int, or
            ``None`` for unconstrained).
        seed:
            Seed for the construction-order shuffles.
        normalize:
            Apply the paper's dataset-global min-max normalization
            before indexing (§6.1). Disable only if the data is already
            on a common scale.
        group_search_width:
            Online in-group search width (``None`` = exhaustive in the
            selected group).
        grouping:
            Group-construction strategy: ``"incremental"`` (the paper's
            Algorithm 1, default) or ``"kmeans"`` (radius-constrained
            k-means; the tech report's alternative-clustering avenue —
            see :mod:`repro.core.grouping_kmeans`).
        use_batch_kernels:
            Answer queries through the vectorized batch distance
            kernels (default; see :mod:`repro.distances.batch`). The
            batch path is exact — disable only for the scalar reference
            path.
        assign_mode:
            Construction-engine assignment strategy:  ``"sequential"``
            (bit-identical to Algorithm 1, default) or ``"minibatch"``
            (chunked BLAS assignment for large builds; documented
            deviation — see :class:`~repro.core.grouping.GroupBuilder`).
        n_jobs:
            Worker processes for the construction step. ``None``/``1``
            builds in-process; larger values partition the length grid
            across a process pool whose shards window a shared mmap of
            the subsequence store (see :mod:`repro.core.parallel`);
            negative counts back from the core count (``-1`` = all).
            The produced index is **bit-identical** for every job count.
            Only the ``"incremental"`` grouping strategy shards.
        progress:
            Optional callable ``progress(length, n_subsequences,
            seconds)`` invoked after each length's groups are built
            (drives the CLI's per-length throughput line).
        """
        if st <= 0 or not math.isfinite(st):
            raise ThresholdError(st)
        # Validate the window spec now: it is only *used* online, and a
        # bad spec (e.g. the fraction 0.0) would otherwise surface as an
        # error on the first query against an already-built base.
        resolve_window(dataset.min_length, dataset.min_length, window)
        value_range = dataset.value_range
        if normalize:
            minimum, maximum = value_range
            dataset = dataset.map(
                lambda values: min_max_normalize(values, minimum, maximum)
            )
        if lengths is None:
            grid = default_length_grid(dataset)
        elif isinstance(lengths, str):
            if lengths.lower() != "all":
                raise QueryError(f"unknown lengths spec {lengths!r}; use 'all'")
            grid = dataset.default_lengths()
        else:
            grid = check_lengths(lengths, dataset.min_length)

        if assign_mode not in ASSIGN_MODES:
            raise QueryError(
                f"unknown assign_mode {assign_mode!r}; use one of {ASSIGN_MODES}"
            )
        if grouping == "kmeans":
            from repro.core.grouping_kmeans import build_groups_kmeans
        elif grouping != "incremental":
            raise QueryError(
                f"unknown grouping strategy {grouping!r}; "
                "use 'incremental' or 'kmeans'"
            )
        jobs = resolve_n_jobs(n_jobs)
        if jobs > 1 and grouping != "incremental":
            raise QueryError(
                "parallel construction (n_jobs > 1) requires "
                "grouping='incremental'"
            )
        rng = np.random.default_rng(seed)
        started = time.perf_counter()
        store = SubsequenceStore(dataset, start_step=start_step)
        buckets: dict[int, LengthBucket] = {}
        build_profile: list[dict] = []

        def record(length, groups, seconds, notify=True, backend="numpy"):
            """Shared per-length bookkeeping for every construction path."""
            view = store.view(length)
            buckets[length] = LengthBucket(
                length=length, groups=groups, store_view=view
            )
            build_profile.append(
                {
                    "length": length,
                    "n_subsequences": view.n_rows,
                    "seconds": seconds,
                    "backend": backend,
                }
            )
            if notify and progress is not None:
                progress(length, view.n_rows, seconds)

        if grouping == "kmeans":
            for length in grid:
                length_started = time.perf_counter()
                groups = build_groups_kmeans(
                    dataset,
                    length,
                    st,
                    rng,
                    start_step=start_step,
                    view=store.view(length),
                )
                record(length, groups, time.perf_counter() - length_started)
        elif jobs > 1:
            views = {length: store.view(length) for length in grid}
            # Pre-draw every length's visit permutation in grid order:
            # the rng consumption is exactly the sequential loop's, so
            # sharded builds make bit-identical decisions (see
            # repro.core.parallel).
            orders = {
                length: rng.permutation(views[length].n_rows)
                for length in grid
            }
            shards = build_shards_parallel(
                store,
                grid,
                orders,
                st=st,
                assign_mode=assign_mode,
                n_jobs=jobs,
                progress=progress,  # invoked as shards complete
                backend=get_backend().name,
            )
            for length in grid:
                record(
                    length,
                    shards[length].groups,
                    shards[length].seconds,
                    notify=False,
                    backend=shards[length].assign_backend,
                )
        else:
            for length in grid:
                length_started = time.perf_counter()
                builder = GroupBuilder(length, st, assign_mode=assign_mode)
                groups = builder.build(store.view(length), rng)
                record(
                    length,
                    groups,
                    time.perf_counter() - length_started,
                    backend=builder.last_assign_backend,
                )
        rspace = RSpace(buckets)
        spspace = SPSpace(rspace, st)
        build_seconds = time.perf_counter() - started
        build_backend = next(
            (
                entry["backend"]
                for entry in build_profile
                if entry["backend"] != "numpy"
            ),
            "numpy",
        )
        return cls(
            dataset=dataset,
            rspace=rspace,
            spspace=spspace,
            st=st,
            window=window,
            start_step=start_step,
            value_range=value_range,
            build_seconds=build_seconds,
            group_search_width=group_search_width,
            use_batch_kernels=use_batch_kernels,
            assign_mode=assign_mode,
            build_profile=build_profile,
            build_backend=build_backend,
        )

    # ------------------------------------------------------------------
    # Query normalization helper
    # ------------------------------------------------------------------
    def normalize_query(self, query: np.ndarray) -> np.ndarray:
        """Map a raw-scale query onto the index's normalized scale."""
        query = as_float_array(query, "query")
        minimum, maximum = self.value_range
        return min_max_normalize(query, minimum, maximum)

    # ------------------------------------------------------------------
    # Class I: similarity queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: np.ndarray,
        length: int | None = None,
        k: int = 1,
        normalized: bool = True,
        stop_at_half_st: bool = True,
    ) -> list[Match]:
        """Find the best match(es) for a sample sequence (Q1).

        ``length=None`` is ``Match = Any``; an integer is
        ``Match = Exact(length)``. Set ``normalized=False`` when the
        query is on the original (pre-normalization) scale.
        """
        query = as_float_array(query, "query")
        if not normalized:
            query = self.normalize_query(query)
        return self.processor.best_match(
            query, length=length, k=k, stop_at_half_st=stop_at_half_st
        )

    def query_batch(
        self,
        queries: Sequence[np.ndarray],
        length: int | None = None,
        k: int = 1,
        normalized: bool = True,
        stop_at_half_st: bool = True,
        grouped: bool = True,
        max_workers: int | None = None,
    ) -> list[list[Match]]:
        """Answer a batch of Q1 queries; one match list per query.

        Bit-identical to calling :meth:`query` once per element (same
        matches, same order), but executed as a real batch when
        ``grouped`` is set (the default, requires the batch-kernel
        path): queries are grouped by resolved length, each group's
        representative scan runs as stacked batch kernels over every
        (query, representative) pair at once, and the per-group
        refinements fan out across ``max_workers`` threads (see
        :mod:`repro.serve.batch`). ``grouped=False`` falls back to the
        sequential per-query loop, which still amortizes the lazily
        built bucket payloads across the batch.
        """
        if grouped and self.processor.use_batch_kernels:
            from repro.serve.batch import execute_batch

            return execute_batch(
                self,
                queries,
                length=length,
                k=k,
                normalized=normalized,
                stop_at_half_st=stop_at_half_st,
                max_workers=max_workers,
            )
        return [
            self.query(
                query,
                length=length,
                k=k,
                normalized=normalized,
                stop_at_half_st=stop_at_half_st,
            )
            for query in queries
        ]

    def within(
        self,
        query: np.ndarray,
        st: float | None = None,
        length: int | None = None,
        normalized: bool = True,
        refine: bool = True,
    ) -> list[Match]:
        """All subsequences guaranteed within ``st`` of the query (Q1 range form)."""
        query = as_float_array(query, "query")
        if not normalized:
            query = self.normalize_query(query)
        return self.processor.within_threshold(
            query, st=st, length=length, refine=refine
        )

    # ------------------------------------------------------------------
    # Class II: seasonal similarity
    # ------------------------------------------------------------------
    def seasonal(
        self, length: int, series: int | None = None, min_members: int = 2
    ) -> SeasonalResult:
        """Recurring similarity clusters at one length (Q2)."""
        return self.processor.seasonal(length, series=series, min_members=min_members)

    # ------------------------------------------------------------------
    # Class III: threshold recommendations
    # ------------------------------------------------------------------
    def recommend(
        self,
        degree: SimilarityDegree | str | None = None,
        length: int | None = None,
    ) -> list[ThresholdRecommendation]:
        """Threshold ranges for a similarity degree (Q3); all when ``None``."""
        if degree is None:
            return self.spspace.recommend_all(length=length)
        return [self.spspace.recommend(degree, length=length)]

    def degree_of(self, st: float, length: int | None = None) -> SimilarityDegree:
        """Classify a threshold value as Strict / Medium / Loose."""
        return self.spspace.degree_of(st, length=length)

    # ------------------------------------------------------------------
    # Threshold adaptation (Algorithm 2.C)
    # ------------------------------------------------------------------
    def with_threshold(self, st: float, seed: int | None = 0) -> "OnexIndex":
        """A new index at threshold ``st`` derived without a full rebuild.

        Reuses, splits or merges the precomputed groups per Algorithm
        2.C. The returned index shares this index's normalized dataset.
        """
        if st == self.st:
            return self
        rng = np.random.default_rng(seed)
        buckets = {
            bucket.length: adapt_bucket(bucket, self.dataset, self.st, st, rng)
            for bucket in self.rspace
        }
        rspace = RSpace(buckets)
        spspace = SPSpace(rspace, st)
        return OnexIndex(
            dataset=self.dataset,
            rspace=rspace,
            spspace=spspace,
            st=st,
            window=self.window,
            start_step=self.start_step,
            value_range=self.value_range,
            build_seconds=self.build_seconds,
            group_search_width=self.processor.group_search_width,
            use_batch_kernels=self.processor.use_batch_kernels,
            assign_mode=self.assign_mode,
            build_profile=self.build_profile,
            build_backend=self.build_backend,
        )

    # ------------------------------------------------------------------
    # Introspection and persistence
    # ------------------------------------------------------------------
    def stats(self) -> BaseStats:
        """Summary statistics (the columns of the paper's Table 4)."""
        breakdown = measure_rspace(self.rspace)
        return BaseStats(
            dataset=self.dataset.name,
            st=self.st,
            n_series=len(self.dataset),
            n_lengths=len(self.rspace),
            n_groups=self.rspace.n_groups,
            n_representatives=self.rspace.n_representatives,
            n_subsequences=self.rspace.n_subsequences,
            size_mb=breakdown.total_mb,
            gti_mb=breakdown.gti_mb,
            lsi_mb=breakdown.lsi_mb,
            store_mb=breakdown.store_mb,
            build_seconds=self.build_seconds,
        )

    def save(
        self, path: str | os.PathLike, version: int | None = None
    ) -> None:
        """Persist the index.

        ``version=None`` infers the format from the path: an ``.npz``
        suffix writes the legacy single-archive v2; anything else
        writes the memory-mappable v3 directory (raw ``.npy`` arrays
        plus ``manifest.json``). Both write temp-then-rename, so a
        reader never observes a partially written index (see
        :func:`repro.core.persistence.save_index` for the exact v3
        crash-window semantics).
        """
        from repro.core.persistence import save_index

        save_index(self, path, version=version)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "OnexIndex":
        """Load an index previously written by :meth:`save`.

        v3 directories open lazily: the manifest and mmap handles load
        now; each length bucket hydrates on first access.
        """
        from repro.core.persistence import load_index

        return load_index(path)

    def __repr__(self) -> str:
        return (
            f"<OnexIndex {self.dataset.name!r} ST={self.st} "
            f"lengths={self.rspace.lengths} groups={self.rspace.n_groups} "
            f"subsequences={self.rspace.n_subsequences}>"
        )
