"""The Similarity Parameter Space (paper §4.2, Definition 11).

For each length the SP-Space records the threshold values at which the
precomputed groups *merge* as the analyst loosens the similarity
threshold: ``ST_half`` (half the groups have merged away) and
``ST_final`` (every group has merged into one). Two groups merge for a
new threshold ``ST'`` when ``ST' >= ST + Dc`` (paper §4.2), so the merge
heights are exactly ``ST + Dc`` along a single-linkage sweep — computed
here with Kruskal's algorithm over the Dc matrix and a union-find.

The *global* ``ST_half`` / ``ST_final`` are the maxima of the local
values across lengths (dashed lines of Fig. 1), and the similarity
degrees are:

* Strict  (S): ``ST <= ST_half``
* Medium  (M): ``ST_half <= ST <= ST_final``
* Loose   (L): ``ST >= ST_final``
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.core.results import ThresholdRecommendation
from repro.core.rspace import LengthBucket, RSpace
from repro.exceptions import QueryError
from repro.utils.unionfind import UnionFind


class SimilarityDegree(str, enum.Enum):
    """The analyst-facing similarity vocabulary of §4.2."""

    STRICT = "S"
    MEDIUM = "M"
    LOOSE = "L"

    @classmethod
    def parse(cls, token: str) -> "SimilarityDegree":
        token = token.strip().upper()
        for degree in cls:
            if token in (degree.value, degree.name):
                return degree
        raise QueryError(
            f"unknown similarity degree {token!r}; expected S, M or L"
        )


def merge_heights(dc: np.ndarray, st: float) -> list[float]:
    """Thresholds at which successive group merges happen.

    Runs Kruskal over the pairwise Dc matrix: sorting candidate edges by
    ``Dc`` and unioning in order yields, for each of the ``g - 1``
    effective merges, the smallest ``ST' = ST + Dc`` triggering it.
    """
    g = dc.shape[0]
    if g <= 1:
        return []
    pairs = [(float(dc[i, j]), i, j) for i in range(g) for j in range(i + 1, g)]
    pairs.sort()
    uf = UnionFind(g)
    heights: list[float] = []
    for distance, i, j in pairs:
        if uf.union(i, j):
            heights.append(st + distance)
            if uf.n_components == 1:
                break
    return heights


def local_thresholds(bucket: LengthBucket, st: float) -> tuple[float, float]:
    """Local ``(ST_half, ST_final)`` for one length (Fig. 1's per-length dots).

    ``ST_half`` is the smallest threshold at which at most ``ceil(g/2)``
    groups remain; ``ST_final`` the smallest at which a single group
    remains. A single-group length has both equal to ``st`` (nothing can
    merge further).
    """
    g = bucket.n_groups
    heights = merge_heights(bucket.dc, st)
    if not heights:
        return st, st
    half_target = math.ceil(g / 2)
    merges_needed_for_half = g - half_target  # each merge removes one group
    if merges_needed_for_half <= 0:
        st_half = st
    else:
        st_half = heights[min(merges_needed_for_half, len(heights)) - 1]
    st_final = heights[-1]
    return st_half, st_final


class SPSpace:
    """Similarity Parameter Space over a whole R-Space."""

    def __init__(self, rspace: RSpace, st: float) -> None:
        self.st = float(st)
        self._local: dict[int, tuple[float, float]] = {}
        for bucket in rspace:
            st_half, st_final = local_thresholds(bucket, self.st)
            bucket.st_half = st_half
            bucket.st_final = st_final
            self._local[bucket.length] = (st_half, st_final)
        # Global critical thresholds: maxima of the local values (§4.2).
        self.st_half = max(pair[0] for pair in self._local.values())
        self.st_final = max(pair[1] for pair in self._local.values())

    @classmethod
    def restore(
        cls, st: float, local: dict[int, tuple[float, float]]
    ) -> "SPSpace":
        """Rebuild an SP-Space from persisted per-length thresholds.

        The v3 index manifest stores each length's ``(ST_half,
        ST_final)``, so loading skips the Kruskal sweep entirely (and,
        with lazily hydrated buckets, never touches the Dc matrices).
        The caller is responsible for stamping the thresholds onto
        buckets as they hydrate.
        """
        if not local:
            raise QueryError("cannot restore an SP-Space with no lengths")
        space = cls.__new__(cls)
        space.st = float(st)
        space._local = {
            int(length): (float(half), float(final))
            for length, (half, final) in sorted(local.items())
        }
        space.st_half = max(pair[0] for pair in space._local.values())
        space.st_final = max(pair[1] for pair in space._local.values())
        return space

    # ------------------------------------------------------------------
    def local(self, length: int) -> tuple[float, float]:
        """Local ``(ST_half, ST_final)`` for one length."""
        try:
            return self._local[length]
        except KeyError:
            known = ", ".join(map(str, self._local))
            raise QueryError(
                f"length {length} is not indexed; indexed lengths: {known}"
            ) from None

    @property
    def lengths(self) -> list[int]:
        return list(self._local)

    def degree_of(self, st: float, length: int | None = None) -> SimilarityDegree:
        """Classify a threshold value into S / M / L."""
        st_half, st_final = (
            (self.st_half, self.st_final) if length is None else self.local(length)
        )
        if st <= st_half:
            return SimilarityDegree.STRICT
        if st <= st_final:
            return SimilarityDegree.MEDIUM
        return SimilarityDegree.LOOSE

    def recommend(
        self,
        degree: SimilarityDegree | str,
        length: int | None = None,
    ) -> ThresholdRecommendation:
        """Parameter recommendation for a requested similarity degree (Q3).

        Returns the range of thresholds producing that degree; any value
        inside the range yields qualitatively the same grouping behaviour,
        saving the analyst trial-and-error runs (§5.1 use case).
        """
        if isinstance(degree, str):
            degree = SimilarityDegree.parse(degree)
        st_half, st_final = (
            (self.st_half, self.st_final) if length is None else self.local(length)
        )
        if degree is SimilarityDegree.STRICT:
            low, high = 0.0, st_half
        elif degree is SimilarityDegree.MEDIUM:
            low, high = st_half, st_final
        else:
            low, high = st_final, math.inf
        return ThresholdRecommendation(
            degree=degree.value, low=low, high=high, length=length
        )

    def recommend_all(
        self, length: int | None = None
    ) -> list[ThresholdRecommendation]:
        """Recommendations for every degree (Q3 with ``simDegree = NULL``)."""
        return [self.recommend(degree, length=length) for degree in SimilarityDegree]
