"""Saving and loading ONEX indexes.

The on-disk format is a single ``.npz`` archive holding flat NumPy
arrays plus a JSON manifest — no pickling, so archives are portable and
safe to load. Format version 2 layout:

* ``manifest`` — JSON string: format version, dataset name, threshold,
  window spec, series names/labels, assign mode, build profile.
* ``series_values`` / ``series_offsets`` — the normalized dataset as one
  concatenated value array with per-series offsets (the same flat array
  the in-memory :class:`~repro.data.store.SubsequenceStore` windows
  over).
* per length ``L``: ``L<u>_reps`` (group representative matrix),
  ``L<u>_member_rows`` (concatenated store row indices, ED-sorted
  within each group), ``L<u>_member_eds`` and ``L<u>_group_offsets``
  (prefix offsets delimiting groups).

Members are stored **columnar**: one row index into the per-length
store view instead of materialized ``(series, start)`` pairs, and
loading rebuilds store-backed groups with a vectorized gather — no
per-member value copies. Version-1 archives (explicit
``member_series`` / ``member_starts`` arrays) load transparently; their
groups are re-attached to the store by the inverse row lookup. Saves
fall back to the id encoding (``member_encoding: "ids"``) for the rare
index whose member ids do not address enumerable store rows.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.onex import OnexIndex
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace
from repro.data.dataset import Dataset
from repro.data.store import SubsequenceStore
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import DataError, PersistenceError

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _window_to_manifest(window: int | float | None) -> dict:
    if window is None:
        return {"kind": "none"}
    if isinstance(window, float):
        return {"kind": "fraction", "value": window}
    return {"kind": "radius", "value": int(window)}


def _window_from_manifest(spec: dict) -> int | float | None:
    kind = spec.get("kind")
    if kind == "none":
        return None
    if kind == "fraction":
        return float(spec["value"])
    if kind == "radius":
        return int(spec["value"])
    raise PersistenceError(f"unknown window spec {spec!r}")


def _bucket_member_rows(
    bucket: LengthBucket, store: SubsequenceStore
) -> np.ndarray | None:
    """Concatenated per-group store rows, or ``None`` if unaddressable."""
    view = store.view(bucket.length)
    per_group: list[np.ndarray] = []
    for group in bucket.groups:
        if group.member_rows is not None:
            per_group.append(np.asarray(group.member_rows, dtype=np.int64))
            continue
        try:
            per_group.append(
                view.rows_of(
                    np.array([ssid.series for ssid in group.member_ids]),
                    np.array([ssid.start for ssid in group.member_ids]),
                )
            )
        except DataError:
            return None
    return np.concatenate(per_group) if per_group else np.empty(0, dtype=np.int64)


def save_index(index: OnexIndex, path: str | os.PathLike) -> None:
    """Write ``index`` to ``path`` (``.npz`` appended if missing)."""
    path = os.fspath(path)
    arrays: dict[str, np.ndarray] = {}

    series_values = np.concatenate([s.values for s in index.dataset])
    series_offsets = np.cumsum([0] + [len(s) for s in index.dataset])
    arrays["series_values"] = series_values
    arrays["series_offsets"] = series_offsets.astype(np.int64)

    store = SubsequenceStore(index.dataset, start_step=index.start_step)
    lengths_meta = []
    for bucket in index.rspace:
        prefix = f"L{bucket.length}_"
        arrays[prefix + "reps"] = bucket.rep_matrix
        member_eds: list[np.ndarray] = []
        group_offsets = [0]
        envelope_radius = bucket.groups[0].envelope_radius
        total = 0
        for group in bucket.groups:
            member_eds.append(group.ed_to_rep)
            total += group.count
            group_offsets.append(total)
        member_rows = _bucket_member_rows(bucket, store)
        if member_rows is not None:
            encoding = "rows"
            arrays[prefix + "member_rows"] = member_rows
        else:
            # Fallback: ids that do not address enumerable store rows
            # (e.g. a foreign start_step) are written explicitly.
            encoding = "ids"
            arrays[prefix + "member_series"] = np.asarray(
                [s.series for g in bucket.groups for s in g.member_ids],
                dtype=np.int64,
            )
            arrays[prefix + "member_starts"] = np.asarray(
                [s.start for g in bucket.groups for s in g.member_ids],
                dtype=np.int64,
            )
        arrays[prefix + "member_eds"] = np.concatenate(member_eds)
        arrays[prefix + "group_offsets"] = np.asarray(group_offsets, dtype=np.int64)
        lengths_meta.append(
            {
                "length": bucket.length,
                "envelope_radius": envelope_radius,
                "member_encoding": encoding,
            }
        )

    manifest = {
        "format_version": _FORMAT_VERSION,
        "dataset_name": index.dataset.name,
        "st": index.st,
        "window": _window_to_manifest(index.window),
        "start_step": index.start_step,
        "value_range": list(index.value_range),
        "build_seconds": index.build_seconds,
        "group_search_width": index.processor.group_search_width,
        "use_batch_kernels": index.processor.use_batch_kernels,
        "assign_mode": index.assign_mode,
        "build_profile": index.build_profile,
        "series_names": [s.name for s in index.dataset],
        "series_labels": [s.label for s in index.dataset],
        "lengths": lengths_meta,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _load_member_columns(
    archive, entry: dict, length: int, store: SubsequenceStore
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Resolve ``(member_rows, member_series, member_starts)`` per length.

    v2 ``rows`` encoding reads the row column and derives ids from the
    store's id columns; v1 (and the ``ids`` fallback) reads explicit id
    arrays and re-attaches rows through the vectorized inverse lookup
    where possible.
    """
    prefix = f"L{length}_"
    view = store.view(length)
    if entry.get("member_encoding", "ids") == "rows":
        rows = archive[prefix + "member_rows"]
        return rows, view.series[rows], view.starts[rows]
    member_series = archive[prefix + "member_series"]
    member_starts = archive[prefix + "member_starts"]
    try:
        rows = view.rows_of(member_series, member_starts)
    except DataError:
        rows = None
    return rows, member_series, member_starts


def load_index(path: str | os.PathLike) -> OnexIndex:
    """Load an index written by :func:`save_index`."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise PersistenceError(f"cannot read index archive {path!r}: {exc}") from exc
    try:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
    except KeyError as exc:
        raise PersistenceError(f"{path!r} is not an ONEX index archive") from exc
    version = manifest.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise PersistenceError(
            f"unsupported index format version {version!r} "
            f"(readable: {_READABLE_VERSIONS})"
        )

    values = archive["series_values"]
    offsets = archive["series_offsets"]
    names = manifest["series_names"]
    labels = manifest["series_labels"]
    series = [
        TimeSeries(
            values[offsets[i] : offsets[i + 1]], name=names[i], label=labels[i]
        )
        for i in range(len(offsets) - 1)
    ]
    dataset = Dataset(series, name=manifest["dataset_name"])
    start_step = int(manifest["start_step"])
    store = SubsequenceStore(dataset, start_step=start_step)

    buckets: dict[int, LengthBucket] = {}
    for entry in manifest["lengths"]:
        length = int(entry["length"])
        radius = int(entry["envelope_radius"])
        prefix = f"L{length}_"
        reps = archive[prefix + "reps"]
        member_eds = archive[prefix + "member_eds"]
        group_offsets = archive[prefix + "group_offsets"]
        rows, member_series, member_starts = _load_member_columns(
            archive, entry, length, store
        )
        groups = []
        for g in range(len(group_offsets) - 1):
            start, stop = int(group_offsets[g]), int(group_offsets[g + 1])
            ids = [
                SubsequenceId(int(member_series[i]), int(member_starts[i]), length)
                for i in range(start, stop)
            ]
            groups.append(
                SimilarityGroup.restore(
                    length=length,
                    member_ids=ids,
                    ed_to_rep=member_eds[start:stop],
                    representative=reps[g],
                    envelope_radius=radius,
                    member_rows=None if rows is None else rows[start:stop],
                )
            )
        buckets[length] = LengthBucket(
            length=length,
            groups=groups,
            store_view=None if rows is None else store.view(length),
        )

    rspace = RSpace(buckets)
    spspace = SPSpace(rspace, float(manifest["st"]))
    width = manifest.get("group_search_width")
    return OnexIndex(
        dataset=dataset,
        rspace=rspace,
        spspace=spspace,
        st=float(manifest["st"]),
        window=_window_from_manifest(manifest["window"]),
        start_step=start_step,
        value_range=tuple(manifest["value_range"]),
        build_seconds=float(manifest.get("build_seconds", 0.0)),
        group_search_width=None if width is None else int(width),
        # Absent in pre-batch-kernel saves: default to the batch path.
        use_batch_kernels=bool(manifest.get("use_batch_kernels", True)),
        assign_mode=str(manifest.get("assign_mode", "sequential")),
        build_profile=manifest.get("build_profile") or [],
    )
