"""Saving and loading ONEX indexes.

The on-disk format is a single ``.npz`` archive holding flat NumPy
arrays plus a JSON manifest — no pickling, so archives are portable and
safe to load. Layout:

* ``manifest`` — JSON string: format version, dataset name, threshold,
  window spec, series names/labels, per-length group offsets.
* ``series_values`` / ``series_offsets`` — the normalized dataset as one
  concatenated value array with per-series offsets.
* per length ``L``: ``L<u>_reps`` (group representative matrix),
  ``L<u>_member_series`` / ``L<u>_member_starts`` / ``L<u>_member_eds``
  (concatenated member arrays, ED-sorted within each group) and
  ``L<u>_group_offsets`` (prefix offsets delimiting groups).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.onex import OnexIndex
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import PersistenceError

_FORMAT_VERSION = 1


def _window_to_manifest(window: int | float | None) -> dict:
    if window is None:
        return {"kind": "none"}
    if isinstance(window, float):
        return {"kind": "fraction", "value": window}
    return {"kind": "radius", "value": int(window)}


def _window_from_manifest(spec: dict) -> int | float | None:
    kind = spec.get("kind")
    if kind == "none":
        return None
    if kind == "fraction":
        return float(spec["value"])
    if kind == "radius":
        return int(spec["value"])
    raise PersistenceError(f"unknown window spec {spec!r}")


def save_index(index: OnexIndex, path: str | os.PathLike) -> None:
    """Write ``index`` to ``path`` (``.npz`` appended if missing)."""
    path = os.fspath(path)
    arrays: dict[str, np.ndarray] = {}

    series_values = np.concatenate([s.values for s in index.dataset])
    series_offsets = np.cumsum([0] + [len(s) for s in index.dataset])
    arrays["series_values"] = series_values
    arrays["series_offsets"] = series_offsets.astype(np.int64)

    lengths_meta = []
    for bucket in index.rspace:
        prefix = f"L{bucket.length}_"
        arrays[prefix + "reps"] = bucket.rep_matrix
        member_series: list[int] = []
        member_starts: list[int] = []
        member_eds: list[float] = []
        group_offsets = [0]
        envelope_radius = bucket.groups[0].rep_envelope.radius
        for group in bucket.groups:
            for ssid in group.member_ids:
                member_series.append(ssid.series)
                member_starts.append(ssid.start)
            member_eds.extend(group.ed_to_rep.tolist())
            group_offsets.append(len(member_series))
        arrays[prefix + "member_series"] = np.asarray(member_series, dtype=np.int64)
        arrays[prefix + "member_starts"] = np.asarray(member_starts, dtype=np.int64)
        arrays[prefix + "member_eds"] = np.asarray(member_eds, dtype=np.float64)
        arrays[prefix + "group_offsets"] = np.asarray(group_offsets, dtype=np.int64)
        lengths_meta.append(
            {"length": bucket.length, "envelope_radius": envelope_radius}
        )

    manifest = {
        "format_version": _FORMAT_VERSION,
        "dataset_name": index.dataset.name,
        "st": index.st,
        "window": _window_to_manifest(index.window),
        "start_step": index.start_step,
        "value_range": list(index.value_range),
        "build_seconds": index.build_seconds,
        "group_search_width": index.processor.group_search_width,
        "use_batch_kernels": index.processor.use_batch_kernels,
        "series_names": [s.name for s in index.dataset],
        "series_labels": [s.label for s in index.dataset],
        "lengths": lengths_meta,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_index(path: str | os.PathLike) -> OnexIndex:
    """Load an index written by :func:`save_index`."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise PersistenceError(f"cannot read index archive {path!r}: {exc}") from exc
    try:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
    except KeyError as exc:
        raise PersistenceError(f"{path!r} is not an ONEX index archive") from exc
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported index format version {version!r} (expected {_FORMAT_VERSION})"
        )

    values = archive["series_values"]
    offsets = archive["series_offsets"]
    names = manifest["series_names"]
    labels = manifest["series_labels"]
    series = [
        TimeSeries(
            values[offsets[i] : offsets[i + 1]], name=names[i], label=labels[i]
        )
        for i in range(len(offsets) - 1)
    ]
    dataset = Dataset(series, name=manifest["dataset_name"])

    buckets: dict[int, LengthBucket] = {}
    for entry in manifest["lengths"]:
        length = int(entry["length"])
        radius = int(entry["envelope_radius"])
        prefix = f"L{length}_"
        reps = archive[prefix + "reps"]
        member_series = archive[prefix + "member_series"]
        member_starts = archive[prefix + "member_starts"]
        member_eds = archive[prefix + "member_eds"]
        group_offsets = archive[prefix + "group_offsets"]
        groups = []
        for g in range(len(group_offsets) - 1):
            start, stop = int(group_offsets[g]), int(group_offsets[g + 1])
            ids = [
                SubsequenceId(int(member_series[i]), int(member_starts[i]), length)
                for i in range(start, stop)
            ]
            groups.append(
                SimilarityGroup.restore(
                    length=length,
                    member_ids=ids,
                    ed_to_rep=member_eds[start:stop],
                    representative=reps[g],
                    envelope_radius=radius,
                )
            )
        buckets[length] = LengthBucket(length=length, groups=groups)

    rspace = RSpace(buckets)
    spspace = SPSpace(rspace, float(manifest["st"]))
    width = manifest.get("group_search_width")
    return OnexIndex(
        dataset=dataset,
        rspace=rspace,
        spspace=spspace,
        st=float(manifest["st"]),
        window=_window_from_manifest(manifest["window"]),
        start_step=int(manifest["start_step"]),
        value_range=tuple(manifest["value_range"]),
        build_seconds=float(manifest.get("build_seconds", 0.0)),
        group_search_width=None if width is None else int(width),
        # Absent in pre-batch-kernel saves: default to the batch path.
        use_batch_kernels=bool(manifest.get("use_batch_kernels", True)),
    )
