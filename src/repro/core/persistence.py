"""Saving and loading ONEX indexes.

Two on-disk formats coexist; both hold flat NumPy arrays plus a JSON
manifest — no pickling, so saved indexes are portable and safe to load.

**Format v3 (default): a memory-mappable directory.** ``manifest.json``
sits next to one raw ``.npy`` file per array (``series_values``,
``series_offsets``, and per length ``L<u>_reps`` / ``L<u>_member_rows``
/ ``L<u>_member_eds`` / ``L<u>_group_offsets``). The directory is
written atomically: arrays land in a temp directory beside the target,
which is then renamed into place, so readers never observe a
half-written index. Loading opens every array with ``mmap_mode="r"``
and registers one *lazy loader* per length with the R-Space: ``load``
itself is O(manifest), and a bucket's groups (plus the mmap pages that
back them) only materialize when the first query touches that length.
The manifest also persists each length's ``(ST_half, ST_final)`` so the
SP-Space restores without re-running the Kruskal merge sweep.

**Format v2 (legacy): a single ``.npz`` archive** with the same arrays
plus a ``manifest`` entry, selected by saving to a path ending in
``.npz``. The archive is written to a temp file and ``os.replace``'d
into place (crash-safe). Version-1 archives (explicit
``member_series`` / ``member_starts`` arrays) load transparently.

Members are stored **columnar** in every version ≥ 2: one row index
into the per-length store view instead of materialized ``(series,
start)`` pairs; loading rebuilds store-backed groups with a vectorized
gather. Saves fall back to the id encoding (``member_encoding:
"ids"``) for the rare index whose member ids do not address enumerable
store rows.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.onex import OnexIndex
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace
from repro.data.dataset import Dataset
from repro.data.store import SubsequenceStore
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import DataError, PersistenceError

_FORMAT_VERSION = 3
_NPZ_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2, 3)
_MANIFEST_NAME = "manifest.json"


def _window_to_manifest(window: int | float | None) -> dict:
    if window is None:
        return {"kind": "none"}
    if isinstance(window, float):
        return {"kind": "fraction", "value": window}
    return {"kind": "radius", "value": int(window)}


def _window_from_manifest(spec: dict) -> int | float | None:
    kind = spec.get("kind")
    if kind == "none":
        return None
    if kind == "fraction":
        return float(spec["value"])
    if kind == "radius":
        return int(spec["value"])
    raise PersistenceError(f"unknown window spec {spec!r}")


def _bucket_member_rows(
    bucket: LengthBucket, store: SubsequenceStore
) -> np.ndarray | None:
    """Concatenated per-group store rows, or ``None`` if unaddressable."""
    view = store.view(bucket.length)
    per_group: list[np.ndarray] = []
    for group in bucket.groups:
        if group.member_rows is not None:
            per_group.append(np.asarray(group.member_rows, dtype=np.int64))
            continue
        try:
            per_group.append(
                view.rows_of(
                    np.array([ssid.series for ssid in group.member_ids]),
                    np.array([ssid.start for ssid in group.member_ids]),
                )
            )
        except DataError:
            return None
    return np.concatenate(per_group) if per_group else np.empty(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _collect_index(
    index: OnexIndex, version: int
) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten an index into ``(manifest, named arrays)``."""
    arrays: dict[str, np.ndarray] = {}

    series_values = np.concatenate([s.values for s in index.dataset])
    series_offsets = np.cumsum([0] + [len(s) for s in index.dataset])
    arrays["series_values"] = series_values
    arrays["series_offsets"] = series_offsets.astype(np.int64)

    store = SubsequenceStore(index.dataset, start_step=index.start_step)
    lengths_meta = []
    for bucket in index.rspace:
        prefix = f"L{bucket.length}_"
        arrays[prefix + "reps"] = bucket.rep_matrix
        member_eds: list[np.ndarray] = []
        group_offsets = [0]
        envelope_radius = bucket.groups[0].envelope_radius
        total = 0
        for group in bucket.groups:
            member_eds.append(group.ed_to_rep)
            total += group.count
            group_offsets.append(total)
        member_rows = _bucket_member_rows(bucket, store)
        if member_rows is not None:
            encoding = "rows"
            arrays[prefix + "member_rows"] = member_rows
        else:
            # Fallback: ids that do not address enumerable store rows
            # (e.g. a foreign start_step) are written explicitly.
            encoding = "ids"
            arrays[prefix + "member_series"] = np.asarray(
                [s.series for g in bucket.groups for s in g.member_ids],
                dtype=np.int64,
            )
            arrays[prefix + "member_starts"] = np.asarray(
                [s.start for g in bucket.groups for s in g.member_ids],
                dtype=np.int64,
            )
        arrays[prefix + "member_eds"] = np.concatenate(member_eds)
        arrays[prefix + "group_offsets"] = np.asarray(group_offsets, dtype=np.int64)
        st_half, st_final = index.spspace.local(bucket.length)
        lengths_meta.append(
            {
                "length": bucket.length,
                "envelope_radius": envelope_radius,
                "member_encoding": encoding,
                "st_half": st_half,
                "st_final": st_final,
                # Shard-map weight: the cluster tier partitions the
                # length grid so every shard carries a comparable share
                # of members (see repro.serve.cluster.shardmap).
                "n_subsequences": bucket.n_subsequences,
            }
        )

    manifest = {
        "format_version": version,
        "dataset_name": index.dataset.name,
        "st": index.st,
        "window": _window_to_manifest(index.window),
        "start_step": index.start_step,
        "value_range": list(index.value_range),
        "build_seconds": index.build_seconds,
        "group_search_width": index.processor.group_search_width,
        "use_batch_kernels": index.processor.use_batch_kernels,
        "assign_mode": index.assign_mode,
        "build_profile": index.build_profile,
        "build_backend": index.build_backend,
        "series_names": [s.name for s in index.dataset],
        "series_labels": [s.label for s in index.dataset],
        "lengths": lengths_meta,
        # The shard map is a pure function of (this spec, the per-length
        # weights above, the shard count), so persisting the spec pins
        # the partition every router computes from this manifest.
        "sharding": {
            "strategy": "contiguous-balanced",
            "version": 1,
        },
    }
    return manifest, arrays


def save_index(
    index: OnexIndex, path: str | os.PathLike, version: int | None = None
) -> None:
    """Write ``index`` to ``path``.

    ``version=None`` infers the format from the path: an ``.npz``
    suffix selects the legacy single-archive v2; any other path writes
    the memory-mappable v3 directory. Both writes go through a temp
    file/directory plus rename, so a reader never observes a partially
    written index; a hard kill inside the v3 two-rename swap can leave
    the *previous* index at ``<path>.old-<pid>`` (recoverable, swept by
    the next save) rather than at ``path``.
    """
    path = os.fspath(path)
    if version is None:
        version = _NPZ_FORMAT_VERSION if path.endswith(".npz") else _FORMAT_VERSION
    if version == _NPZ_FORMAT_VERSION:
        _save_npz(index, path)
    elif version == _FORMAT_VERSION:
        _save_v3(index, path)
    else:
        raise PersistenceError(
            f"cannot save index format version {version!r} "
            f"(writable: {(_NPZ_FORMAT_VERSION, _FORMAT_VERSION)})"
        )


def _save_npz(index: OnexIndex, path: str) -> None:
    """Atomic v2 save: temp ``.npz`` in the target directory + replace."""
    final = path if path.endswith(".npz") else path + ".npz"
    manifest, arrays = _collect_index(index, _NPZ_FORMAT_VERSION)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    directory = os.path.dirname(os.path.abspath(final)) or "."
    # The suffix must keep the ".npz" extension: np.savez would append
    # one otherwise and the rename source would not exist.
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(final) + ".", suffix=".tmp.npz"
    )
    os.close(fd)
    try:
        np.savez_compressed(tmp, **arrays)
        os.chmod(tmp, 0o666 & ~_current_umask())  # mkstemp creates 0600
        os.replace(tmp, final)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def _save_v3(index: OnexIndex, path: str) -> None:
    """Atomic v3 save: temp directory of ``.npy`` files + rename."""
    manifest, arrays = _collect_index(index, _FORMAT_VERSION)
    target = os.path.abspath(os.fspath(path))
    parent = os.path.dirname(target) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = tempfile.mkdtemp(dir=parent, prefix=".onex-save-")
    try:
        os.chmod(tmp, 0o777 & ~_current_umask())  # mkdtemp creates 0700
        for name, array in arrays.items():
            np.save(os.path.join(tmp, name + ".npy"), np.ascontiguousarray(array))
        with open(
            os.path.join(tmp, _MANIFEST_NAME), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle, indent=1)
        _replace_tree(tmp, target)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _replace_tree(tmp: str, target: str) -> None:
    """Rename ``tmp`` over ``target``, displacing whatever was there.

    Directories cannot be exchanged in one portable rename, so the swap
    is two renames: a reader never observes a partially written index,
    but a hard kill in the narrow window between them leaves the
    previous index recoverable at ``<target>.old-<pid>`` instead of at
    ``target`` (the next save sweeps leftovers whose owning process is
    gone — a live concurrent writer's in-flight backup is never
    touched). A concurrent writer re-creating ``target`` between the
    two renames is retried — simultaneous saves converge to
    last-writer-wins instead of erroring out.
    """
    _sweep_dead_backups(target)
    last_error: OSError | None = None
    for _ in range(8):
        backup = None
        if os.path.lexists(target):
            backup = target + f".old-{os.getpid()}"
            if os.path.lexists(backup):  # our own earlier attempt
                _remove_tree(backup)
            try:
                os.rename(target, backup)
            except FileNotFoundError:
                backup = None  # another writer moved it first
        try:
            os.rename(tmp, target)
        except OSError as exc:
            # A concurrent writer installed its index at `target` in the
            # window (non-empty directories cannot be replaced). Restore
            # our displaced copy if the slot is free, then try again.
            last_error = exc
            if backup is not None:
                with contextlib.suppress(OSError):
                    os.rename(backup, target)
            continue
        if backup is not None:
            _remove_tree(backup)
        return
    raise PersistenceError(
        f"could not install index at {target!r} after repeated attempts "
        f"(concurrent writers?): {last_error}"
    )


def _sweep_dead_backups(target: str) -> None:
    """Remove ``<target>.old-<pid>`` leftovers whose owner is gone.

    Backups belonging to a *live* process are another writer's
    in-flight rollback copy and must not be touched.
    """
    parent = os.path.dirname(target) or "."
    marker = os.path.basename(target) + ".old-"
    try:
        names = sorted(os.listdir(parent))
    except OSError:
        return
    for name in names:
        if not name.startswith(marker):
            continue
        suffix = name[len(marker) :]
        if not suffix.isdigit():
            continue
        pid = int(suffix)
        if pid == os.getpid() or not _pid_alive(pid):
            _remove_tree(os.path.join(parent, name))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _current_umask() -> int:
    """The process umask (there is no read-only accessor in os)."""
    mask = os.umask(0o022)
    os.umask(mask)
    return mask


def _remove_tree(path: str) -> None:
    if os.path.isdir(path) and not os.path.islink(path):
        shutil.rmtree(path, ignore_errors=True)
    else:
        os.remove(path)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _restore_groups(
    length: int,
    envelope_radius: int,
    reps: np.ndarray,
    member_eds: np.ndarray,
    group_offsets: np.ndarray,
    rows: np.ndarray | None,
    member_series: np.ndarray,
    member_starts: np.ndarray,
) -> list[SimilarityGroup]:
    """Rebuild finalized groups from the persisted per-length arrays."""
    groups = []
    for g in range(len(group_offsets) - 1):
        start, stop = int(group_offsets[g]), int(group_offsets[g + 1])
        ids = [
            SubsequenceId(int(member_series[i]), int(member_starts[i]), length)
            for i in range(start, stop)
        ]
        groups.append(
            SimilarityGroup.restore(
                length=length,
                member_ids=ids,
                ed_to_rep=member_eds[start:stop],
                representative=reps[g],
                envelope_radius=envelope_radius,
                member_rows=None if rows is None else rows[start:stop],
            )
        )
    return groups


def _build_index(
    manifest: dict,
    dataset: Dataset,
    rspace: RSpace,
    spspace: SPSpace,
    start_step: int,
) -> OnexIndex:
    width = manifest.get("group_search_width")
    return OnexIndex(
        dataset=dataset,
        rspace=rspace,
        spspace=spspace,
        st=float(manifest["st"]),
        window=_window_from_manifest(manifest["window"]),
        start_step=start_step,
        value_range=tuple(manifest["value_range"]),
        build_seconds=float(manifest.get("build_seconds", 0.0)),
        group_search_width=None if width is None else int(width),
        # Absent in pre-batch-kernel saves: default to the batch path.
        use_batch_kernels=bool(manifest.get("use_batch_kernels", True)),
        assign_mode=str(manifest.get("assign_mode", "sequential")),
        build_profile=manifest.get("build_profile") or [],
        # Absent in pre-build-kernel saves: the engine was numpy-only.
        build_backend=str(manifest.get("build_backend", "numpy")),
    )


def _dataset_from_arrays(
    manifest: dict, values: np.ndarray, offsets: np.ndarray
) -> Dataset:
    names = manifest["series_names"]
    labels = manifest["series_labels"]
    series = [
        TimeSeries(
            values[offsets[i] : offsets[i + 1]], name=names[i], label=labels[i]
        )
        for i in range(len(offsets) - 1)
    ]
    return Dataset(series, name=manifest["dataset_name"])


def load_index(path: str | os.PathLike) -> OnexIndex:
    """Load an index written by :func:`save_index` (any readable version).

    v3 directories open lazily (see the module docstring); v1/v2
    ``.npz`` archives decompress and hydrate eagerly as before.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return _load_v3(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    return _load_npz(path)


def _load_member_columns(
    archive, entry: dict, length: int, store: SubsequenceStore
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Resolve ``(member_rows, member_series, member_starts)`` per length.

    v2+ ``rows`` encoding reads the row column and derives ids from the
    store's id columns; v1 (and the ``ids`` fallback) reads explicit id
    arrays and re-attaches rows through the vectorized inverse lookup
    where possible.
    """
    prefix = f"L{length}_"
    view = store.view(length)
    if entry.get("member_encoding", "ids") == "rows":
        rows = archive[prefix + "member_rows"]
        return rows, view.series[rows], view.starts[rows]
    member_series = archive[prefix + "member_series"]
    member_starts = archive[prefix + "member_starts"]
    try:
        rows = view.rows_of(member_series, member_starts)
    except DataError:
        rows = None
    return rows, member_series, member_starts


def _load_npz(path: str) -> OnexIndex:
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise PersistenceError(f"cannot read index archive {path!r}: {exc}") from exc
    try:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
    except KeyError as exc:
        raise PersistenceError(f"{path!r} is not an ONEX index archive") from exc
    version = manifest.get("format_version")
    if version not in (1, 2):
        raise PersistenceError(
            f"unsupported index format version {version!r} "
            f"(readable: {_READABLE_VERSIONS}; version 3 is a directory)"
        )

    values = archive["series_values"]
    offsets = archive["series_offsets"]
    dataset = _dataset_from_arrays(manifest, values, offsets)
    start_step = int(manifest["start_step"])
    store = SubsequenceStore(dataset, start_step=start_step)

    buckets: dict[int, LengthBucket] = {}
    for entry in manifest["lengths"]:
        length = int(entry["length"])
        prefix = f"L{length}_"
        rows, member_series, member_starts = _load_member_columns(
            archive, entry, length, store
        )
        groups = _restore_groups(
            length,
            int(entry["envelope_radius"]),
            archive[prefix + "reps"],
            archive[prefix + "member_eds"],
            archive[prefix + "group_offsets"],
            rows,
            member_series,
            member_starts,
        )
        buckets[length] = LengthBucket(
            length=length,
            groups=groups,
            store_view=None if rows is None else store.view(length),
        )

    rspace = RSpace(buckets)
    spspace = SPSpace(rspace, float(manifest["st"]))
    return _build_index(manifest, dataset, rspace, spspace, start_step)


def _v3_required_files(manifest: dict) -> list[str]:
    required = ["series_values", "series_offsets"]
    for entry in manifest.get("lengths", []):
        prefix = f"L{int(entry['length'])}_"
        required += [prefix + "reps", prefix + "member_eds", prefix + "group_offsets"]
        if entry.get("member_encoding", "ids") == "rows":
            required.append(prefix + "member_rows")
        else:
            required += [prefix + "member_series", prefix + "member_starts"]
    return required


def read_manifest(path: str | os.PathLike) -> dict:
    """Read and sanity-check a v3 index directory's ``manifest.json``.

    The blessed read path for consumers that need the index *metadata*
    without hydrating any arrays — the cluster router computes its shard
    map and replays the §5.3 length sweep from exactly this dict.
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, _MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise PersistenceError(
            f"{path!r} is not an ONEX index directory (no {_MANIFEST_NAME})"
        ) from exc
    except (OSError, ValueError) as exc:
        raise PersistenceError(
            f"corrupted index manifest {manifest_path!r}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "lengths" not in manifest:
        raise PersistenceError(
            f"corrupted index manifest {manifest_path!r}: not an index manifest"
        )
    return manifest


def _load_v3(path: str) -> OnexIndex:
    manifest_path = os.path.join(path, _MANIFEST_NAME)
    manifest = read_manifest(path)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported index format version {version!r} "
            f"(readable: {_READABLE_VERSIONS}; versions 1-2 are .npz archives)"
        )
    missing_keys = [
        key
        for key in (
            "dataset_name",
            "st",
            "window",
            "start_step",
            "value_range",
            "series_names",
            "series_labels",
        )
        if key not in manifest
    ] + [
        f"lengths[{i}].{key}"
        for i, entry in enumerate(manifest["lengths"])
        for key in ("length", "envelope_radius", "st_half", "st_final")
        if key not in entry
    ]
    if missing_keys:
        raise PersistenceError(
            f"corrupted index manifest {manifest_path!r}: missing "
            f"{', '.join(missing_keys)}"
        )
    # Fail now, not at first query: a truncated copy should not produce a
    # working-looking index whose buckets explode on hydration.
    missing = [
        name
        for name in _v3_required_files(manifest)
        if not os.path.exists(os.path.join(path, name + ".npy"))
    ]
    if missing:
        raise PersistenceError(
            f"index directory {path!r} is truncated: missing "
            f"{', '.join(name + '.npy' for name in missing)}"
        )

    def _mmap(name: str) -> np.ndarray:
        try:
            return np.load(os.path.join(path, name + ".npy"), mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise PersistenceError(
                f"cannot map index array {name!r} in {path!r}: {exc}"
            ) from exc

    values = _mmap("series_values")
    offsets = _mmap("series_offsets")
    dataset = _dataset_from_arrays(manifest, values, offsets)
    start_step = int(manifest["start_step"])
    # The store windows directly over the on-disk mapping: subsequence
    # values are paged in on demand, never duplicated into RAM up front.
    store = SubsequenceStore.from_flat(
        values, np.diff(np.asarray(offsets)), start_step, dataset=dataset
    )

    local_thresholds: dict[int, tuple[float, float]] = {}
    loaders: dict[int, "callable"] = {}
    for entry in manifest["lengths"]:
        length = int(entry["length"])
        local_thresholds[length] = (
            float(entry["st_half"]),
            float(entry["st_final"]),
        )
        # Map every array NOW (cheap: a header read plus an mmap call,
        # no data pages) so the open mappings pin this directory
        # generation — an atomic re-save over the same path between
        # load and first query cannot mix arrays from two builds.
        prefix = f"L{length}_"
        arrays = {
            "reps": _mmap(prefix + "reps"),
            "member_eds": _mmap(prefix + "member_eds"),
            "group_offsets": _mmap(prefix + "group_offsets"),
        }
        if entry.get("member_encoding", "ids") == "rows":
            arrays["member_rows"] = _mmap(prefix + "member_rows")
        else:
            arrays["member_series"] = _mmap(prefix + "member_series")
            arrays["member_starts"] = _mmap(prefix + "member_starts")

        def _hydrate(
            length: int = length, entry: dict = entry, arrays: dict = arrays
        ) -> LengthBucket:
            view = store.view(length)
            if "member_rows" in arrays:
                rows = arrays["member_rows"]
                member_series = view.series[rows]
                member_starts = view.starts[rows]
            else:
                member_series = arrays["member_series"]
                member_starts = arrays["member_starts"]
                try:
                    rows = view.rows_of(member_series, member_starts)
                except DataError:
                    rows = None
            groups = _restore_groups(
                length,
                int(entry["envelope_radius"]),
                arrays["reps"],
                arrays["member_eds"],
                arrays["group_offsets"],
                rows,
                member_series,
                member_starts,
            )
            bucket = LengthBucket(
                length=length,
                groups=groups,
                store_view=None if rows is None else view,
            )
            bucket.st_half, bucket.st_final = local_thresholds[length]
            return bucket

        loaders[length] = _hydrate

    rspace = RSpace({}, loaders=loaders)
    spspace = SPSpace.restore(float(manifest["st"]), local_thresholds)
    return _build_index(manifest, dataset, rspace, spspace, start_step)
