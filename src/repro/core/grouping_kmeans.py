"""Alternative group construction: radius-constrained k-means.

The paper's tech report discusses alternative clustering methods for
the ONEX base. This module provides the natural candidate: Lloyd's
k-means over the subsequences of one length, grown (bisecting-style)
until every cluster satisfies Definition 8's radius requirement —
``ED(member, centroid) <= sqrt(L) * ST / 2``. The centroid *is* the
point-wise mean, so the result is a drop-in set of
:class:`~repro.core.group.SimilarityGroup` objects with exactly the
paper's representative semantics (Def. 7).

Compared with Algorithm 1's single-pass incremental grouping:

* pro — assignments are globally refined, so groups are rounder and the
  radius invariant holds *exactly* (no running-mean drift);
* con — several passes over the data per length, so construction is
  slower (quantified by ``benchmarks/bench_ablation_grouping.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.grouping import assign_to_nearest
from repro.data.dataset import Dataset
from repro.data.store import LengthView, SubsequenceStore
from repro.exceptions import IndexConstructionError, ThresholdError


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every point (shared assigner)."""
    return assign_to_nearest(points, centroids)[0]


def _lloyd(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Classic Lloyd iterations; returns (centroids, assignment)."""
    assignment = _assign(points, centroids)
    for _ in range(max_iter):
        updated = []
        for index in range(centroids.shape[0]):
            members = points[assignment == index]
            if members.shape[0] == 0:
                continue  # drop empty clusters
            updated.append(members.mean(axis=0))
        centroids = np.stack(updated)
        new_assignment = _assign(points, centroids)
        if np.array_equal(new_assignment, assignment) and centroids.shape[0] == len(
            updated
        ):
            assignment = new_assignment
            break
        assignment = new_assignment
    return centroids, assignment


def build_groups_kmeans(
    dataset: Dataset,
    length: int,
    st: float,
    rng: np.random.Generator,
    start_step: int = 1,
    envelope_radius: int | None = None,
    max_iter: int = 10,
    view: LengthView | None = None,
) -> list[SimilarityGroup]:
    """Radius-constrained k-means grouping for one subsequence length.

    Starts from a single cluster and repeatedly splits any cluster
    violating the ``sqrt(L) * ST / 2`` radius (seeding a new centroid at
    the violating cluster's farthest member) until Definition 8 holds
    for every group. Terminates because each round adds at least one
    centroid and ``k`` is bounded by the number of subsequences.
    """
    if st <= 0 or not math.isfinite(st):
        raise ThresholdError(st)
    if envelope_radius is None:
        envelope_radius = max(1, length // 10)

    if view is None:
        view = SubsequenceStore(dataset, start_step=start_step).view(length)
    if view.n_rows == 0:
        raise IndexConstructionError(
            f"dataset {dataset.name!r} has no subsequences of length {length}"
        )
    points = view.values()
    threshold = math.sqrt(length) * st / 2.0

    seed = int(rng.integers(0, points.shape[0]))
    centroids = points[seed : seed + 1].copy()
    assignment = np.zeros(points.shape[0], dtype=int)
    for _ in range(points.shape[0]):
        centroids, assignment = _lloyd(points, centroids, max_iter)
        distances = np.linalg.norm(points - centroids[assignment], axis=1)
        fresh: list[np.ndarray] = []
        for index in range(centroids.shape[0]):
            mask = assignment == index
            if not mask.any():
                continue
            cluster_distances = np.where(mask, distances, -np.inf)
            worst = int(np.argmax(cluster_distances))
            if cluster_distances[worst] > threshold:
                fresh.append(points[worst].copy())
        if not fresh:
            break
        centroids = np.vstack([centroids, np.stack(fresh)])
    else:  # pragma: no cover - the split loop is bounded by n
        raise IndexConstructionError("k-means radius enforcement did not converge")

    groups: list[SimilarityGroup] = []
    for index in range(centroids.shape[0]):
        member_rows = np.flatnonzero(assignment == index)
        if member_rows.size == 0:
            continue
        matrix = points[member_rows]
        groups.append(
            SimilarityGroup.from_members(
                length,
                view.ids(member_rows),
                matrix.sum(axis=0),
                matrix,
                envelope_radius,
                member_rows=member_rows.astype(np.int64),
            )
        )
    return groups
