"""Result value objects returned by the ONEX online query processor."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.timeseries import SubsequenceId


@dataclass(frozen=True)
class Match:
    """One answer to a similarity query (Q1).

    Attributes
    ----------
    ssid:
        Identity of the matched subsequence within the indexed dataset.
    values:
        The matched subsequence's (normalized) values.
    dtw:
        Raw DTW distance between query and match.
    dtw_normalized:
        ``DTW / 2n`` (paper Def. 6) — the value thresholds compare against.
    group:
        ``(length, group_index)`` of the ONEX group the match came from.
    """

    ssid: SubsequenceId
    values: np.ndarray
    dtw: float
    dtw_normalized: float
    group: tuple[int, int]

    def __lt__(self, other: "Match") -> bool:
        return self.dtw_normalized < other.dtw_normalized


@dataclass(frozen=True)
class SeasonalGroup:
    """One cluster of recurring similar subsequences (Q2).

    ``members`` lists the subsequence ids; they all share ``length`` and
    pairwise normalized ED within the index's similarity threshold
    (Lemma 1 of the paper).
    """

    length: int
    group_index: int
    members: tuple[SubsequenceId, ...]

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class SeasonalResult:
    """Answer to a seasonal similarity query: the qualifying clusters."""

    length: int
    series: int | None  # populated for the user-driven variant
    groups: tuple[SeasonalGroup, ...]

    @property
    def n_subsequences(self) -> int:
        """Total subsequences across all returned clusters."""
        return sum(len(group) for group in self.groups)

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)


@dataclass(frozen=True)
class ThresholdRecommendation:
    """Answer to a threshold recommendation query (Q3).

    A half-open range ``[low, high)`` of similarity thresholds that all
    produce the requested similarity degree. ``high`` may be ``inf`` for
    the Loose degree, which has no upper bound.
    """

    degree: str  # 'S', 'M' or 'L'
    low: float
    high: float
    length: int | None = None  # None = global recommendation

    def contains(self, st: float) -> bool:
        """Whether ``st`` falls inside the recommended range."""
        return self.low <= st < self.high or (
            math.isinf(self.high) and st >= self.low
        )


@dataclass(frozen=True)
class BaseStats:
    """Summary statistics of a built ONEX base (Table 4's columns)."""

    dataset: str
    st: float
    n_series: int
    n_lengths: int
    n_groups: int
    n_representatives: int
    n_subsequences: int
    size_mb: float
    gti_mb: float
    lsi_mb: float
    store_mb: float = field(default=0.0)
    build_seconds: float = field(default=0.0)

    def as_row(self) -> tuple:
        """Row for Table 4: representatives, subsequences, size in MB."""
        return (
            self.dataset,
            self.n_representatives,
            self.n_subsequences,
            round(self.size_mb, 2),
        )
