"""Process-parallel sharded construction: one worker shard per length.

ONEX construction (Algorithm 1 per indexed length) is embarrassingly
parallel across the length grid: each length's grouping reads only that
length's :class:`~repro.data.store.LengthView` and writes only its own
groups. This module partitions the grid across a
``ProcessPoolExecutor`` while keeping three hard guarantees:

* **No window pickling.** The parent dumps the store's flat value array
  to a temporary ``.npy`` file once; every worker reattaches through
  ``np.load(..., mmap_mode="r")`` and rebuilds an equivalent
  :class:`~repro.data.store.SubsequenceStore` with
  :meth:`~repro.data.store.SubsequenceStore.from_flat`, so the window
  matrices are OS-page-shared views of one file. Task payloads carry
  only a visit-order index array.
* **No result pickling** (the default ``shm`` transport, ISSUE 7).
  ``bench_parallel_build.py`` showed the sharded build *losing* to the
  sequential one because every shard's member-row arrays, sorted EDs
  and representative sums came back through the executor's pickle pipe.
  Workers now pack those arrays into one
  :class:`multiprocessing.shared_memory.SharedMemory` block per shard
  and return a scalar-only :class:`ShardDescriptor`; the parent
  attaches, copies the arrays out, unlinks the block, and rebuilds the
  groups with :meth:`~repro.core.group.SimilarityGroup.restore`. The
  payload ships each group's exact running member **sum** (not its
  representative), so the parent's ``sum / count`` division reproduces
  the worker's representative bit for bit. ``result_transport="pickle"``
  keeps the legacy path for comparison benchmarks and round-trip tests.
* **Bit-identical output.** The parent pre-draws every length's
  Fisher-Yates permutation from the build rng *in grid order* — exactly
  the draws the sequential loop would make — and ships each permutation
  to its shard. Given the same visit order the
  :class:`~repro.core.grouping.GroupBuilder` is deterministic (in both
  ``sequential`` and ``minibatch`` assign modes), so the produced groups
  match the ``n_jobs=1`` build bit for bit regardless of job count,
  shard completion order, or result transport.

Workers also inherit the parent's kernel-backend choice: the pool
initializer re-selects the resolved backend by name in each worker, so
``onex build --backend numba --jobs N`` runs the fused JIT assignment
kernel inside every shard.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.grouping import GroupBuilder
from repro.data.store import SubsequenceStore
from repro.exceptions import IndexConstructionError

#: Supported shard result transports (see the module docstring).
RESULT_TRANSPORTS = ("shm", "pickle")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` spec to a concrete worker count.

    ``None`` means sequential (1). Negative values count back from the
    machine: ``-1`` is every core, ``-2`` all but one, and so on.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise IndexConstructionError(
            "n_jobs must be >= 1, or negative to count back from the "
            "core count (-1 = all cores)"
        )
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


@dataclass
class ShardResult:
    """One length shard's finalized groups plus its build accounting.

    ``seconds`` is the worker's total shard wall time (view + assign +
    finalize), the quantity the build profile reports. The remaining
    timings split out the result-transport tax the shm transport was
    built to kill: ``pack_seconds`` is worker-side serialization (shm
    packing, or ``pickle.dumps`` when profiled on the legacy transport),
    ``unpack_seconds`` is parent-side reconstruction, and
    ``payload_bytes`` the serialized result size.
    """

    length: int
    groups: list[SimilarityGroup]
    n_rows: int
    seconds: float
    transport: str = "pickle"
    assign_backend: str = "numpy"
    assign_seconds: float = 0.0
    finalize_seconds: float = 0.0
    pack_seconds: float = 0.0
    unpack_seconds: float = 0.0
    payload_bytes: int = 0


@dataclass(frozen=True)
class ShardDescriptor:
    """Scalar-only handle to one shard's result in shared memory.

    This is the *entire* pickled payload of an shm-transport shard: the
    member rows, sorted EDs, running sums and counts all live in the
    named shared-memory block, laid out as described by
    :func:`_pack_shard`. ``tests/test_parallel_build.py`` asserts no
    field ever carries an ndarray.
    """

    length: int
    n_rows: int
    n_groups: int
    n_members: int
    envelope_radius: int
    shm_name: str
    seconds: float
    assign_backend: str
    assign_seconds: float
    finalize_seconds: float
    pack_seconds: float
    payload_bytes: int


# ----------------------------------------------------------------------
# Shared-memory result protocol
# ----------------------------------------------------------------------
def _untrack_shm(shm: shared_memory.SharedMemory) -> None:
    """Make the parent, not this process, own the block's lifetime.

    Python's ``resource_tracker`` registers every created segment for
    unlink-at-exit; the shm result protocol hands ownership to the
    parent (which unlinks after copying), so the worker must unregister
    or the tracker double-unlinks and warns at pool shutdown.
    ``track=False`` exists only from 3.13; this is the documented
    workaround for 3.11/3.12.
    """
    try:  # pragma: no cover - depends on platform tracker details
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - best-effort, tracker is advisory
        pass


def _shard_layout(
    n_groups: int, n_members: int, length: int
) -> tuple[list[tuple[int, np.dtype, tuple[int, ...]]], int]:
    """The (offset, dtype, shape) of each array in a shard block."""
    layout: list[tuple[int, np.dtype, tuple[int, ...]]] = []
    offset = 0
    for dtype, shape in (
        (np.dtype(np.int64), (n_groups + 1,)),  # member-row offsets
        (np.dtype(np.int64), (n_groups,)),  # member counts
        (np.dtype(np.float64), (n_groups, length)),  # running sums
        (np.dtype(np.float64), (n_members,)),  # sorted EDs, concatenated
        (np.dtype(np.int64), (n_members,)),  # member rows, concatenated
    ):
        layout.append((offset, dtype, shape))
        offset += dtype.itemsize * int(np.prod(shape))
    return layout, offset


def _pack_shard(
    groups: list[SimilarityGroup], length: int
) -> tuple[str, int]:
    """Write a shard's group arrays into a fresh shared-memory block.

    Returns ``(shm_name, payload_bytes)``. Layout per
    :func:`_shard_layout`; every group ships its exact running sum so
    the parent's ``sum / count`` reproduces the representative bit for
    bit. Member rows and EDs are concatenated in the groups' finalized
    ascending-ED order, which :func:`_restore_shard` preserves.
    """
    counts = np.array([len(g.member_ids) for g in groups], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    n_members = int(offsets[-1])
    layout, total = _shard_layout(len(groups), n_members, length)
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        _untrack_shm(shm)  # ONEX701: parent unlinks on the success path
        _fill_shard_block(shm, layout, groups, offsets, counts)
    except BaseException:
        # Nobody will ever receive this block's name — without the
        # unlink it would squat in /dev/shm until reboot.
        shm.unlink()
        raise
    finally:
        shm.close()
    return shm.name, total


def _fill_shard_block(
    shm: shared_memory.SharedMemory,
    layout: list[tuple[int, np.dtype, tuple[int, ...]]],
    groups: list[SimilarityGroup],
    offsets: np.ndarray,
    counts: np.ndarray,
) -> None:
    views = [
        np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        for offset, dtype, shape in layout
    ]
    off_view, count_view, sum_view, ed_view, row_view = views
    off_view[:] = offsets
    count_view[:] = counts
    for g, group in enumerate(groups):
        sum_view[g] = group.member_sum
        ed_view[offsets[g] : offsets[g + 1]] = group.ed_to_rep
        if group.member_rows is None:  # pragma: no cover - defensive
            raise IndexConstructionError(
                "shm shard transport needs store-backed groups "
                "(member_rows is None)"
            )
        row_view[offsets[g] : offsets[g + 1]] = group.member_rows
    del views, off_view, count_view, sum_view, ed_view, row_view


def _discard_descriptor(descriptor: ShardDescriptor) -> None:
    """Unlink a shard block that will never be restored.

    Used on the build's failure path: a shard that completed before a
    sibling raised has already transferred ownership of its block to
    the parent, so the parent must still unlink it or the segment
    outlives the build.
    """
    try:
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    except (FileNotFoundError, OSError):  # already restored or unlinked
        return
    try:
        shm.unlink()
    finally:
        shm.close()


def _restore_shard(
    descriptor: ShardDescriptor, store: SubsequenceStore
) -> ShardResult:
    """Rebuild a :class:`ShardResult` from its shared-memory block.

    Attaches, copies every array out, and unlinks the block (the parent
    owns its lifetime — see :func:`_untrack_shm`). Member ids are
    re-materialized from the parent's store rows, which address the
    same series/starts columns the worker's store held.
    """
    started = time.perf_counter()
    layout, _ = _shard_layout(
        descriptor.n_groups, descriptor.n_members, descriptor.length
    )
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        offsets, counts, sums, eds, rows = (
            np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset
            ).copy()
            for offset, dtype, shape in layout
        )
    finally:
        shm.close()
        shm.unlink()
    view = store.view(descriptor.length)
    groups: list[SimilarityGroup] = []
    for g in range(descriptor.n_groups):
        member_rows = rows[offsets[g] : offsets[g + 1]]
        groups.append(
            SimilarityGroup.restore(
                descriptor.length,
                view.ids(member_rows),
                eds[offsets[g] : offsets[g + 1]],
                sums[g] / counts[g],
                descriptor.envelope_radius,
                member_rows=member_rows,
                member_sum=sums[g],
            )
        )
    return ShardResult(
        length=descriptor.length,
        groups=groups,
        n_rows=descriptor.n_rows,
        seconds=descriptor.seconds,
        transport="shm",
        assign_backend=descriptor.assign_backend,
        assign_seconds=descriptor.assign_seconds,
        finalize_seconds=descriptor.finalize_seconds,
        pack_seconds=descriptor.pack_seconds,
        unpack_seconds=time.perf_counter() - started,
        payload_bytes=descriptor.payload_bytes,
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# One store per worker process, attached once by the pool initializer and
# reused by every shard the worker runs.
_WORKER_STORE: SubsequenceStore | None = None


def _init_worker(
    flat_path: str,
    series_lengths: np.ndarray,
    start_step: int,
    backend: str | None = None,
) -> None:
    global _WORKER_STORE
    values = np.load(flat_path, mmap_mode="r")
    _WORKER_STORE = SubsequenceStore.from_flat(
        values, series_lengths, start_step=start_step
    )
    if backend is not None:
        # Re-select the parent's resolved backend by name; in an
        # environment where it is unavailable this falls back to numpy
        # with a warning, same as everywhere else.
        from repro.distances.backend import set_backend

        set_backend(backend)


def _build_shard(
    length: int,
    order: np.ndarray,
    st: float,
    assign_mode: str,
    envelope_radius: int | None,
    result_transport: str = "pickle",
    profile_transport: bool = False,
) -> ShardResult | ShardDescriptor:
    if _WORKER_STORE is None:  # pragma: no cover - initializer always ran
        raise IndexConstructionError("worker store was never initialized")
    started = time.perf_counter()
    view = _WORKER_STORE.view(length)
    builder = GroupBuilder(
        length, st, assign_mode=assign_mode, envelope_radius=envelope_radius
    )
    groups = builder.build(view, order=order)
    seconds = time.perf_counter() - started
    if result_transport == "shm":
        pack_started = time.perf_counter()
        shm_name, payload_bytes = _pack_shard(groups, length)
        return ShardDescriptor(
            length=length,
            n_rows=view.n_rows,
            n_groups=len(groups),
            n_members=sum(len(g.member_ids) for g in groups),
            envelope_radius=builder.envelope_radius,
            shm_name=shm_name,
            seconds=seconds,
            assign_backend=builder.last_assign_backend,
            assign_seconds=builder.last_assign_seconds,
            finalize_seconds=builder.last_finalize_seconds,
            pack_seconds=time.perf_counter() - pack_started,
            payload_bytes=payload_bytes,
        )
    pack_seconds = 0.0
    payload_bytes = 0
    if profile_transport:
        # Measure the pickle tax explicitly (the executor re-pickles the
        # result on the way out; this doubles the cost, so it is opt-in
        # for the overhead benchmark only).
        pack_started = time.perf_counter()
        payload_bytes = len(
            pickle.dumps(groups, protocol=pickle.HIGHEST_PROTOCOL)
        )
        pack_seconds = time.perf_counter() - pack_started
    return ShardResult(
        length=length,
        groups=groups,
        n_rows=view.n_rows,
        seconds=seconds,
        transport="pickle",
        assign_backend=builder.last_assign_backend,
        assign_seconds=builder.last_assign_seconds,
        finalize_seconds=builder.last_finalize_seconds,
        pack_seconds=pack_seconds,
        payload_bytes=payload_bytes,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def build_shards_parallel(
    store: SubsequenceStore,
    grid: list[int],
    orders: dict[int, np.ndarray],
    st: float,
    assign_mode: str = "sequential",
    envelope_radius: int | None = None,
    n_jobs: int = 2,
    progress: "callable | None" = None,
    backend: str | None = None,
    result_transport: str = "shm",
    profile_transport: bool = False,
) -> dict[int, ShardResult]:
    """Build every length's groups across a process pool.

    ``orders`` maps each length to its pre-drawn visit permutation (see
    the module docstring for why the parent draws them). ``progress`` is
    invoked as shards *complete* (completion order is nondeterministic;
    the returned mapping is assembled per length and is not).
    ``backend`` names the kernel backend workers should select;
    ``result_transport`` picks how shard results come home (``"shm"``
    descriptors by default, ``"pickle"`` for the legacy path);
    ``profile_transport`` additionally measures the pickle tax on the
    legacy transport.
    """
    if not grid:
        raise IndexConstructionError("cannot build an empty length grid")
    if result_transport not in RESULT_TRANSPORTS:
        raise IndexConstructionError(
            f"unknown result_transport {result_transport!r}; "
            f"use one of {RESULT_TRANSPORTS}"
        )
    shard_dir = tempfile.mkdtemp(prefix="onex-shards-")
    flat_path = os.path.join(shard_dir, "flat_values.npy")
    results: dict[int, ShardResult] = {}
    try:
        # Scratch hand-off to the worker pool, not index state: the
        # array lives in a private temp dir and is deleted post-build.
        np.save(  # onex: ignore[ONEX401]
            flat_path, np.ascontiguousarray(store.flat_values)
        )
        max_workers = max(1, min(int(n_jobs), len(grid)))
        futures: dict = {}
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(
                    flat_path,
                    store.series_lengths,
                    store.start_step,
                    backend,
                ),
            ) as pool:
                futures = {
                    pool.submit(
                        _build_shard,
                        length,
                        orders[length],
                        st,
                        assign_mode,
                        envelope_radius,
                        result_transport,
                        profile_transport,
                    ): length
                    for length in grid
                }
                for future in as_completed(futures):
                    outcome = future.result()
                    if isinstance(outcome, ShardDescriptor):
                        shard = _restore_shard(outcome, store)
                    else:
                        shard = outcome
                    results[shard.length] = shard
                    if progress is not None:
                        progress(shard.length, shard.n_rows, shard.seconds)
        except BaseException:
            # The pool has shut down (the `with` exit waits), so every
            # future is settled. Shards that completed before the
            # failure handed their shm blocks to this process; reap
            # them or they leak (ONEX701's runtime dual).
            for future in futures:
                if not future.done() or future.cancelled():
                    continue  # pragma: no cover - settled post-shutdown
                if future.exception() is not None:
                    continue
                outcome = future.result()
                if (
                    isinstance(outcome, ShardDescriptor)
                    and outcome.length not in results
                ):
                    _discard_descriptor(outcome)
            raise
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)
    return results
