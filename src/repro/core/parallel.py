"""Process-parallel sharded construction: one worker shard per length.

ONEX construction (Algorithm 1 per indexed length) is embarrassingly
parallel across the length grid: each length's grouping reads only that
length's :class:`~repro.data.store.LengthView` and writes only its own
groups. This module partitions the grid across a
``ProcessPoolExecutor`` while keeping two hard guarantees:

* **No window pickling.** The parent dumps the store's flat value array
  to a temporary ``.npy`` file once; every worker reattaches through
  ``np.load(..., mmap_mode="r")`` and rebuilds an equivalent
  :class:`~repro.data.store.SubsequenceStore` with
  :meth:`~repro.data.store.SubsequenceStore.from_flat`, so the window
  matrices are OS-page-shared views of one file. Task payloads carry
  only a visit-order index array; results carry finalized
  :class:`~repro.core.group.SimilarityGroup` objects (representatives,
  sorted EDs, store row indices — never raw member matrices).
* **Bit-identical output.** The parent pre-draws every length's
  Fisher-Yates permutation from the build rng *in grid order* — exactly
  the draws the sequential loop would make — and ships each permutation
  to its shard. Given the same visit order the
  :class:`~repro.core.grouping.GroupBuilder` is deterministic (in both
  ``sequential`` and ``minibatch`` assign modes), so the produced groups
  match the ``n_jobs=1`` build bit for bit regardless of job count or
  shard completion order.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

import numpy as np

from repro.core.grouping import GroupBuilder
from repro.core.group import SimilarityGroup
from repro.data.store import SubsequenceStore
from repro.exceptions import IndexConstructionError


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` spec to a concrete worker count.

    ``None`` means sequential (1). Negative values count back from the
    machine: ``-1`` is every core, ``-2`` all but one, and so on.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise IndexConstructionError(
            "n_jobs must be >= 1, or negative to count back from the "
            "core count (-1 = all cores)"
        )
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


@dataclass
class ShardResult:
    """One length shard's finalized groups plus its build accounting."""

    length: int
    groups: list[SimilarityGroup]
    n_rows: int
    seconds: float


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# One store per worker process, attached once by the pool initializer and
# reused by every shard the worker runs.
_WORKER_STORE: SubsequenceStore | None = None


def _init_worker(
    flat_path: str, series_lengths: np.ndarray, start_step: int
) -> None:
    global _WORKER_STORE
    values = np.load(flat_path, mmap_mode="r")
    _WORKER_STORE = SubsequenceStore.from_flat(
        values, series_lengths, start_step=start_step
    )


def _build_shard(
    length: int,
    order: np.ndarray,
    st: float,
    assign_mode: str,
    envelope_radius: int | None,
) -> ShardResult:
    if _WORKER_STORE is None:  # pragma: no cover - initializer always ran
        raise IndexConstructionError("worker store was never initialized")
    started = time.perf_counter()
    view = _WORKER_STORE.view(length)
    builder = GroupBuilder(
        length, st, assign_mode=assign_mode, envelope_radius=envelope_radius
    )
    groups = builder.build(view, order=order)
    return ShardResult(
        length=length,
        groups=groups,
        n_rows=view.n_rows,
        seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def build_shards_parallel(
    store: SubsequenceStore,
    grid: list[int],
    orders: dict[int, np.ndarray],
    st: float,
    assign_mode: str = "sequential",
    envelope_radius: int | None = None,
    n_jobs: int = 2,
    progress: "callable | None" = None,
) -> dict[int, ShardResult]:
    """Build every length's groups across a process pool.

    ``orders`` maps each length to its pre-drawn visit permutation (see
    the module docstring for why the parent draws them). ``progress`` is
    invoked as shards *complete* (completion order is nondeterministic;
    the returned mapping is assembled per length and is not).
    """
    if not grid:
        raise IndexConstructionError("cannot build an empty length grid")
    shard_dir = tempfile.mkdtemp(prefix="onex-shards-")
    flat_path = os.path.join(shard_dir, "flat_values.npy")
    results: dict[int, ShardResult] = {}
    try:
        # Scratch hand-off to the worker pool, not index state: the
        # array lives in a private temp dir and is deleted post-build.
        np.save(  # onex: ignore[ONEX401]
            flat_path, np.ascontiguousarray(store.flat_values)
        )
        max_workers = max(1, min(int(n_jobs), len(grid)))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(flat_path, store.series_lengths, store.start_step),
        ) as pool:
            futures = {
                pool.submit(
                    _build_shard,
                    length,
                    orders[length],
                    st,
                    assign_mode,
                    envelope_radius,
                ): length
                for length in grid
            }
            for future in as_completed(futures):
                shard = future.result()
                results[shard.length] = shard
                if progress is not None:
                    progress(shard.length, shard.n_rows, shard.seconds)
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)
    return results
