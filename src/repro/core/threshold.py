"""Varying similarity thresholds without rebuilding — paper Algorithm 2.C.

Given a base built at threshold ``ST`` and an analyst-supplied ``ST'``:

* ``ST' = ST`` — the precomputed groups are reused as-is;
* ``ST' < ST`` — every group is *split*: its members are re-clustered
  with the smaller threshold using the original construction method;
* ``ST' > ST`` — group pairs whose inter-representative distance
  satisfies ``ST' - ST >= Dc`` are *merged*, cascading: after each merge
  the new representative (weighted point-wise mean) and its distances to
  the remaining groups are recomputed and further merges may trigger.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.grouping import regroup_members
from repro.core.rspace import LengthBucket
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.exceptions import ThresholdError


def _group_members(
    group: SimilarityGroup, bucket: LengthBucket, dataset: Dataset
) -> list[tuple[SubsequenceId, np.ndarray]]:
    """Materialize (id, values) pairs for every member of a group.

    Store-backed groups gather all member rows with one fancy-index;
    others fall back to per-member materialization from ``dataset``.
    """
    if group.member_rows is not None and bucket.store_view is not None:
        matrix = bucket.store_view.values(group.member_rows)
        return list(zip(group.member_ids, matrix, strict=True))
    return [(ssid, dataset.subsequence(ssid)) for ssid in group.member_ids]


def split_bucket(
    bucket: LengthBucket,
    dataset: Dataset,
    st_new: float,
    rng: np.random.Generator,
    envelope_radius: int | None = None,
) -> LengthBucket:
    """Algorithm 2.C case ``ST' < ST``: refine each group independently.

    Members similar at ``ST`` stay similar at the smaller ``ST'`` only
    within tighter clusters, so each precomputed group is re-clustered
    with the original methodology (§5.2 case 2); no candidate is lost
    because groups are split, never moved across group boundaries.
    """
    new_groups: list[SimilarityGroup] = []
    for group in bucket.groups:
        members = _group_members(group, bucket, dataset)
        new_groups.extend(
            regroup_members(
                members,
                bucket.length,
                st_new,
                rng,
                envelope_radius=envelope_radius,
                member_rows=(
                    group.member_rows if bucket.store_view is not None else None
                ),
            )
        )
    return LengthBucket(
        length=bucket.length, groups=new_groups, store_view=bucket.store_view
    )


def merge_bucket(
    bucket: LengthBucket,
    dataset: Dataset,
    st_old: float,
    st_new: float,
    envelope_radius: int | None = None,
) -> LengthBucket:
    """Algorithm 2.C case ``ST' > ST``: cascaded pairwise merging.

    Implements §5.2 case 3 faithfully: any pair with
    ``ST' - ST >= Dc`` merges (3.2a); after a merge the combined group's
    representative and its inter-representative distances are recomputed
    and the process repeats while the condition holds. Pairs with
    ``Dc > ST' - ST`` are returned unchanged (cases 3.1 / 3.2b).
    """
    margin = st_new - st_old
    if margin < 0:
        raise ThresholdError(st_new, reason=f"merge requires ST' >= ST ({st_old})")
    length = bucket.length
    if envelope_radius is None:
        envelope_radius = max(1, length // 10)

    # Working state: per cluster, the member ids, store rows (when every
    # source group is store-backed), running sum and count.
    store_backed = bucket.store_view is not None and all(
        group.member_rows is not None for group in bucket.groups
    )
    ids: list[list[SubsequenceId]] = []
    rows: list[np.ndarray] = []
    values: list[np.ndarray | None] = []  # materialized only off-store
    sums: list[np.ndarray] = []
    for group in bucket.groups:
        ids.append(list(group.member_ids))
        if store_backed:
            rows.append(group.member_rows)
            values.append(None)
        else:
            rows.append(np.empty(0, dtype=np.int64))
            values.append(
                np.stack([dataset.subsequence(ssid) for ssid in group.member_ids])
            )
        sums.append(group.representative * group.count)

    def normalized_rep_distance(a: int, b: int) -> float:
        rep_a = sums[a] / len(ids[a])
        rep_b = sums[b] / len(ids[b])
        return float(np.linalg.norm(rep_a - rep_b)) / math.sqrt(length)

    merged_something = True
    while merged_something and len(ids) > 1:
        merged_something = False
        n = len(ids)
        for a in range(n):
            for b in range(a + 1, n):
                if normalized_rep_distance(a, b) <= margin:
                    ids[a].extend(ids[b])
                    rows[a] = np.concatenate([rows[a], rows[b]])
                    if not store_backed:
                        values[a] = np.vstack([values[a], values[b]])
                    sums[a] = sums[a] + sums[b]
                    del ids[b], rows[b], values[b], sums[b]
                    merged_something = True
                    break
            if merged_something:
                break

    new_groups: list[SimilarityGroup] = []
    for cluster, cluster_rows, cluster_values, cluster_sum in zip(
        ids, rows, values, sums
    , strict=True):
        if store_backed:
            matrix = bucket.store_view.values(cluster_rows)
            member_rows = cluster_rows
        else:
            matrix = cluster_values
            member_rows = None
        new_groups.append(
            SimilarityGroup.from_members(
                length,
                cluster,
                cluster_sum,
                matrix,
                envelope_radius,
                member_rows=member_rows,
            )
        )
    return LengthBucket(
        length=length, groups=new_groups, store_view=bucket.store_view
    )


def adapt_bucket(
    bucket: LengthBucket,
    dataset: Dataset,
    st_old: float,
    st_new: float,
    rng: np.random.Generator,
    envelope_radius: int | None = None,
) -> LengthBucket:
    """Dispatch to reuse / split / merge per Algorithm 2.C."""
    if st_new <= 0 or not math.isfinite(st_new):
        raise ThresholdError(st_new)
    if st_new == st_old:
        return bucket
    if st_new < st_old:
        return split_bucket(
            bucket, dataset, st_new, rng, envelope_radius=envelope_radius
        )
    return merge_bucket(
        bucket, dataset, st_old, st_new, envelope_radius=envelope_radius
    )
