"""Index size accounting, following the paper's §6.3 breakdown.

The paper reports index sizes in MB, decomposed into the Global Time
Index (group-identifier vectors, inter-representative distance arrays
and the two critical thresholds per length) and the Local Sequence Index
(sequence references with their EDs, the representative vectors, and
the LB_Keogh envelopes). The byte model below mirrors that accounting
for the **store-backed layout**: groups reference members as row
indices into the per-length columnar store view (one 4-byte index per
member instead of a materialized ``(series, start)`` pair per group
copy), and the store's own id columns — the ``series`` / ``starts``
arrays each view carries once per length — are counted separately as
``store_columns``. Identifiers/indices are 4-byte integers, all
distances/values 8-byte floats. The window matrix itself is zero-copy
over the dataset's values and therefore free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rspace import RSpace

_INT = 4  # bytes per identifier / row index (int32, as a C++ impl would use)
_FLOAT = 8  # bytes per distance / sample value (double)
_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class SizeBreakdown:
    """Byte counts for each index component (paper §6.3's accounting)."""

    gti_group_ids: int
    gti_dc_matrix: int
    gti_sums: int
    gti_thresholds: int
    lsi_member_rows: int
    lsi_representatives: int
    lsi_envelopes: int
    store_columns: int

    @property
    def gti_bytes(self) -> int:
        return (
            self.gti_group_ids + self.gti_dc_matrix + self.gti_sums + self.gti_thresholds
        )

    @property
    def lsi_bytes(self) -> int:
        return self.lsi_member_rows + self.lsi_representatives + self.lsi_envelopes

    @property
    def store_bytes(self) -> int:
        return self.store_columns

    @property
    def total_bytes(self) -> int:
        return self.gti_bytes + self.lsi_bytes + self.store_bytes

    @property
    def gti_mb(self) -> float:
        return self.gti_bytes / _MB

    @property
    def lsi_mb(self) -> float:
        return self.lsi_bytes / _MB

    @property
    def store_mb(self) -> float:
        return self.store_bytes / _MB

    @property
    def total_mb(self) -> float:
        return self.total_bytes / _MB


def measure_rspace(rspace: RSpace) -> SizeBreakdown:
    """Compute the §6.3 size breakdown for a built R-Space.

    Per length ``i`` with ``g`` groups, GTI holds: the vector ``V_i(k)``
    of group identifiers (``g`` ints), the matrix ``D_i(k, j)`` of
    pairwise Dc values (``g^2`` floats), the sorted sums array
    ``S_i(k, sum_k)`` (``g`` id/float pairs), and ``ST_half``/``ST_final``
    (2 floats). Per group with ``m`` members of length ``L``, LSI holds:
    the array ``ED_k(m, ED_m)`` of member references — one store row
    index each — plus their ED (``m * (1 int + 1 float)``), the
    representative vector (``L`` floats) and its lower/upper envelope
    (``2L`` floats). Per length, the store contributes its id columns:
    ``rows * 2`` ints (series index and start offset per enumerated
    row); groups hold no member value copies — the window matrix is a
    zero-copy view over the dataset.
    """
    gti_group_ids = 0
    gti_dc = 0
    gti_sums = 0
    gti_thresholds = 0
    lsi_rows = 0
    lsi_reps = 0
    lsi_envelopes = 0
    store_columns = 0
    for bucket in rspace:
        g = bucket.n_groups
        gti_group_ids += g * _INT
        gti_dc += g * g * _FLOAT
        gti_sums += g * (_INT + _FLOAT)
        gti_thresholds += 2 * _FLOAT
        view = bucket.store_view
        n_rows = view.n_rows if view is not None else bucket.n_subsequences
        store_columns += n_rows * 2 * _INT
        for group in bucket.groups:
            lsi_rows += group.count * (_INT + _FLOAT)
            lsi_reps += group.length * _FLOAT
            lsi_envelopes += 2 * group.length * _FLOAT
    return SizeBreakdown(
        gti_group_ids=gti_group_ids,
        gti_dc_matrix=gti_dc,
        gti_sums=gti_sums,
        gti_thresholds=gti_thresholds,
        lsi_member_rows=lsi_rows,
        lsi_representatives=lsi_reps,
        lsi_envelopes=lsi_envelopes,
        store_columns=store_columns,
    )
